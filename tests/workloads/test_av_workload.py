"""Tests for the A/V player and typing workloads."""

import pytest

from repro.display import RecordingDriver, WindowServer
from repro.net import EventLoop
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip
from repro.workloads.interactive import TypingUnderLoadWorkload
from repro.workloads.video import AVPlayerApp


class AudioSpy:
    def __init__(self):
        self.chunks = []

    def submit_audio(self, ts, samples):
        self.chunks.append((ts, len(samples)))


class TestAVPlayer:
    def make(self, audio=True, **kw):
        loop = EventLoop()
        driver = RecordingDriver()
        ws = WindowServer(128, 96, driver=driver, clock=loop.clock)
        clip = SyntheticVideoClip(width=32, height=24, fps=20, duration=0.5)
        sink = AudioSpy() if audio else None
        player = AVPlayerApp(ws, loop, clip, audio_sink=sink, **kw)
        return loop, driver, ws, clip, sink, player

    def test_plays_all_frames_at_rate(self):
        loop, driver, ws, clip, sink, player = self.make()
        done = []
        player.start(on_done=lambda: done.append(loop.now))
        loop.run_until_idle(max_time=10)
        assert player.frames_put == clip.frame_count
        assert driver.names().count("video_put") == clip.frame_count
        assert done and abs(done[0] - clip.duration) < 0.1

    def test_stream_lifecycle(self):
        loop, driver, ws, clip, sink, player = self.make()
        player.start()
        loop.run_until_idle(max_time=10)
        names = driver.names()
        assert names.count("video_setup") == 1
        assert names.count("video_teardown") == 1
        assert ws.video_streams == {}

    def test_audio_in_step_with_video(self):
        loop, driver, ws, clip, sink, player = self.make()
        player.start()
        loop.run_until_idle(max_time=10)
        assert sink.chunks
        total = sum(n for _, n in sink.chunks)
        expected = player.audio_fmt.bytes_for(clip.duration)
        assert abs(total - expected) <= player.audio_fmt.frame_bytes * \
            clip.frame_count

    def test_max_frames_truncates(self):
        loop, driver, ws, clip, sink, player = self.make(max_frames=4)
        player.start()
        loop.run_until_idle(max_time=10)
        assert player.frames_put == 4
        assert player.ideal_duration == pytest.approx(4 / clip.fps)

    def test_fullscreen_dst(self):
        loop, driver, ws, clip, sink, player = self.make()
        assert player.dst_rect == Rect(0, 0, 128, 96)

    def test_double_start_rejected(self):
        loop, driver, ws, clip, sink, player = self.make()
        player.start()
        with pytest.raises(RuntimeError):
            player.start()


class TestTypingWorkload:
    def test_generates_keys_and_bulk(self):
        loop = EventLoop()
        ws = WindowServer(320, 240, clock=loop.clock)
        inputs = []
        workload = TypingUnderLoadWorkload(
            ws, loop, inject_input=lambda x, y: inputs.append((x, y)),
            keys=5, key_interval=0.05, image_interval=0.04, image_size=64)
        workload.start()
        loop.run_until_idle(max_time=5)
        assert len(inputs) == 5
        assert len(workload.records) == 5
        assert ws.op_counts.get("put_image", 0) > 3

    def test_echo_latency_recording(self):
        loop = EventLoop()
        ws = WindowServer(320, 240, clock=loop.clock)
        workload = TypingUnderLoadWorkload(
            ws, loop, inject_input=lambda x, y: None, keys=3)
        workload.start()
        loop.run_until_idle(max_time=5)
        workload.mark_echo_delivered(0, workload.records[0].key_time + 0.05)
        assert workload.latencies() == [pytest.approx(0.05)]
        # Marking twice keeps the first delivery time.
        workload.mark_echo_delivered(0, 99.0)
        assert workload.latencies() == [pytest.approx(0.05)]


class TestTerminalApp:
    def make(self):
        from repro.net import EventLoop
        from repro.workloads.terminal import TerminalApp

        loop = EventLoop()
        ws = WindowServer(200, 120, driver=RecordingDriver(),
                          clock=loop.clock)
        term = TerminalApp(ws, loop, Rect(0, 0, 200, 120))
        return loop, ws, term

    def test_lines_render_without_scroll_until_full(self):
        loop, ws, term = self.make()
        for i in range(term.rows):
            term.write_line(f"line {i}")
        assert ws.op_counts.get("copy_area", 0) == 0
        assert term.lines_written == term.rows

    def test_overflow_scrolls_with_copy(self):
        loop, ws, term = self.make()
        for i in range(term.rows + 3):
            term.write_line(f"line {i}")
        assert ws.op_counts["copy_area"] == 3

    def test_run_output_paced_on_loop(self):
        loop, ws, term = self.make()
        done = []
        term.run_output([f"l{i}" for i in range(5)], interval=0.1,
                        on_done=lambda: done.append(loop.now))
        loop.run_until_idle(max_time=5)
        assert term.lines_written == 5
        assert done and abs(done[0] - 0.5) < 0.11

    def test_too_short_region_rejected(self):
        from repro.net import EventLoop
        from repro.workloads.terminal import TerminalApp

        ws = WindowServer(100, 100)
        with pytest.raises(ValueError):
            TerminalApp(ws, EventLoop(), Rect(0, 0, 100, 8))

    def test_scroll_through_thinc_pixel_exact(self):
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP
        from repro.workloads.terminal import TerminalApp

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 200, 120)
        ws = WindowServer(200, 120, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        term = TerminalApp(ws, loop, Rect(10, 10, 180, 100))
        term.run_output([f"output line {i}" for i in range(20)],
                        interval=0.02)
        loop.run_until_idle(max_time=10)
        assert client.fb.same_as(ws.screen.fb)
