"""Tests for the web page-set generator and browser model."""

import numpy as np

from repro.display import RecordingDriver, WindowServer
from repro.workloads.web import (PAGE_COUNT, WebBrowserApp, make_page_set,
                                 render_element_pixels)


class TestPageSet:
    def test_default_count_matches_ibench(self):
        assert PAGE_COUNT == 54
        pages = make_page_set()
        assert len(pages) == 54

    def test_deterministic(self):
        a = make_page_set(count=6)
        b = make_page_set(count=6)
        for pa, pb in zip(a, b):
            assert pa.content_bytes == pb.content_bytes
            assert len(pa.elements) == len(pb.elements)

    def test_seed_changes_content(self):
        a = make_page_set(count=6, seed=1)
        b = make_page_set(count=6, seed=2)
        assert any(pa.content_bytes != pb.content_bytes
                   for pa, pb in zip(a, b))

    def test_mix_includes_image_heavy_pages(self):
        pages = make_page_set(count=18)
        heavy = [p for p in pages if p.image_heavy]
        assert 1 <= len(heavy) < len(pages) / 2

    def test_pages_have_text_and_images(self):
        pages = make_page_set(count=9)
        kinds = {e.kind for p in pages for e in p.elements}
        assert {"fill", "text"} <= kinds
        assert kinds & {"photo", "image"}

    def test_content_bytes_positive_and_plausible(self):
        for page in make_page_set(count=9):
            assert 600 <= page.content_bytes < 5_000_000

    def test_link_target_inside_page(self):
        for page in make_page_set(count=9):
            x, y = page.link_target
            assert 0 <= x < page.width
            assert 0 <= y < page.height

    def test_elements_render_pixels(self):
        pages = make_page_set(count=9)
        for page in pages:
            for element in page.elements:
                pixels = render_element_pixels(element)
                if element.kind in ("photo", "image"):
                    assert pixels is not None
                    assert pixels.shape == (element.rect.height,
                                            element.rect.width, 4)
                else:
                    assert pixels is None

    def test_photo_is_moderately_compressible(self):
        """Photo content must sit between flat and noise: predictive
        codecs ~0.45, plain DEFLATE ~0.6 of raw."""
        import zlib

        from repro.protocol import compression

        pages = make_page_set(count=9)
        element = next(e for p in pages for e in p.elements
                       if e.kind == "photo")
        pixels = render_element_pixels(element)
        rgb = np.ascontiguousarray(pixels[..., :3])
        png_ratio = len(compression.png_compress(rgb)) / rgb.nbytes
        z_ratio = len(zlib.compress(rgb.tobytes(), 6)) / rgb.nbytes
        assert 0.2 < png_ratio < 0.7
        assert png_ratio < z_ratio < 0.9


class TestBrowser:
    def test_render_is_double_buffered(self):
        driver = RecordingDriver()
        ws = WindowServer(256, 192, driver=driver)
        app = WebBrowserApp(ws, make_page_set(count=2, width=256,
                                              height=192))
        app.render_page(0)
        names = driver.names()
        # The page flip is one copy; everything else drew offscreen.
        assert "copy_area" in names
        onscreen_ops = [c for c in driver.calls
                        if c.name not in ("copy_area", "destroy_drawable")
                        and c.drawable_id == ws.screen.id]
        assert onscreen_ops == []
        assert app.pages_rendered == 1

    def test_render_changes_screen(self):
        ws = WindowServer(256, 192)
        app = WebBrowserApp(ws, make_page_set(count=2, width=256,
                                              height=192))
        before = ws.screen.fb.checksum()
        app.render_page(0)
        assert ws.screen.fb.checksum() != before

    def test_pixmap_freed_after_flip(self):
        ws = WindowServer(256, 192)
        app = WebBrowserApp(ws, make_page_set(count=2, width=256,
                                              height=192))
        app.render_page(0)
        assert ws.pixmaps == {}

    def test_processing_delay_scales_with_content(self):
        ws = WindowServer(256, 192)
        pages = make_page_set(count=9, width=256, height=192)
        app = WebBrowserApp(ws, pages)
        delays = [app.processing_delay(p) for p in pages]
        assert all(d > 0 for d in delays)
        assert max(delays) > min(delays)
