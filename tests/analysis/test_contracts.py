"""The THL2xx protocol-contract analyzer, proven on two trees.

A synthetic fixture tree exercises every rule with a positive (the
mutation the rule must flag) and a negative (the idiomatic fix it must
pass); copytree mutations of the *real* ``src/repro`` then prove each
rule fires on the production sources — deleting one handler, widening
one parser set, adding one unguarded decode field, adding one
unserialized SessionUnit attribute each produce exactly the expected
finding.  The baseline lifecycle and the CLI exit codes are covered at
the bottom.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.contracts import (Baseline, apply_baseline,
                                      check_clock_sweep, check_contracts,
                                      finding_key, load_baseline,
                                      render_contract_matrix)
from repro.analysis.facts import extract_facts
from repro.protocol.spec import PROTOCOL_SPEC

SRC = Path(repro.__file__).resolve().parent
REPO = SRC.parent.parent


# --- the synthetic fixture tree ----------------------------------------------

SPEC_SRC = """
from . import wire

PROTOCOL_SPEC = [
    MessageSpec("PING", 1, "c->s", "s", "p", wire.PingMessage),
    MessageSpec("PONG", 2, "s->c", "s", "p", wire.PongMessage),
    MessageSpec("XFER", 32, "s->s", "s", "p", wire.XferMessage),
]
UPLINK_TYPE_IDS = frozenset({1})
DOWNLINK_TYPE_IDS = frozenset({2})
FABRIC_TYPE_IDS = frozenset({32})
SERVER_ACCEPTS = UPLINK_TYPE_IDS
CLIENT_ACCEPTS = DOWNLINK_TYPE_IDS
FABRIC_ACCEPTS = FABRIC_TYPE_IDS
"""

WIRE_SRC = """
import struct

_PING, _PONG = 1, 2
_XFER = 32
_BODY = struct.Struct(">I")


class StreamParser:
    def __init__(self, max_frame=0, max_pending=0, allowed=None):
        self.allowed = allowed


class PingMessage:
    type_id = _PING


class PongMessage:
    type_id = _PONG

    @classmethod
    def decode_payload(cls, data):
        (n,) = _BODY.unpack_from(data)
        _need(data, n)
        return cls(data[_BODY.size:][:n])


class XferMessage:
    type_id = _XFER
"""

SESSION_SRC = """
from ..protocol.spec import SERVER_ACCEPTS
from ..protocol import wire

NOT_SERIALIZED = {
    "_parser": "rebuilt clean on thaw",
}


class SessionUnit:
    def __init__(self):
        self.viewport = (0, 0)
        self._parser = wire.StreamParser(allowed=SERVER_ACCEPTS)

    def handle(self, msg):
        if isinstance(msg, wire.PingMessage):
            return "pong"

    def freeze(self):
        return {"viewport": self.viewport}
"""

CLIENT_SRC = """
from ..protocol.spec import CLIENT_ACCEPTS
from ..protocol import wire


class THINCClient:
    def __init__(self):
        self.parser = wire.StreamParser(max_frame=1 << 16,
                                        allowed=CLIENT_ACCEPTS)

    def render(self, msg):
        if isinstance(msg, wire.PongMessage):
            return True
"""

COORD_SRC = """
from ..protocol.spec import FABRIC_ACCEPTS
from ..protocol import wire


class ShardCoordinator:
    def __init__(self):
        self._fabric = wire.StreamParser(allowed=FABRIC_ACCEPTS)

    def transfer_class(self):
        return wire.XferMessage
"""

CLEAN_TREE = {
    "protocol/spec.py": SPEC_SRC,
    "protocol/wire.py": WIRE_SRC,
    "core/session_unit.py": SESSION_SRC,
    "core/client.py": CLIENT_SRC,
    "cluster/coordinator.py": COORD_SRC,
}


def build_tree(tmp_path, overrides=None):
    """Write the synthetic fixture tree, with per-test file overrides
    keyed by tree-relative path."""
    root = tmp_path / "repro"
    files = dict(CLEAN_TREE)
    files.update(overrides or {})
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return root


def findings_of(root):
    return check_contracts(extract_facts(root))


def rules_of(root):
    return [f.rule for f in findings_of(root)]


class TestSyntheticClean:
    def test_clean_tree_has_no_findings(self, tmp_path):
        assert findings_of(build_tree(tmp_path)) == []


class TestTHL200:
    def test_flags_unregistered_type_id(self, tmp_path):
        root = build_tree(tmp_path, {"protocol/wire.py": WIRE_SRC + """

class RogueProbeMessage:
    type_id = 99
"""})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL200"]
        assert "RogueProbeMessage" in findings[0].message
        assert "99" in findings[0].message

    def test_flags_spec_drift(self, tmp_path):
        drifted = SPEC_SRC.replace(
            'MessageSpec("PONG", 2,', 'MessageSpec("PONG", 3,')
        root = build_tree(tmp_path, {"protocol/spec.py": drifted})
        findings = findings_of(root)
        assert any(f.rule == "THL200"
                   and "spec registers PONG as id 3" in f.message
                   and "declares 2" in f.message for f in findings)

    def test_flags_duplicate_registration(self, tmp_path):
        dup = SPEC_SRC.replace(
            "]\nUPLINK",
            '    MessageSpec("PING2", 1, "c->s", "s", "p",'
            " wire.PingMessage),\n]\nUPLINK")
        root = build_tree(tmp_path, {"protocol/spec.py": dup})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL200"]
        assert "registered twice" in findings[0].message

    def test_flags_missing_implementation(self, tmp_path):
        ghost = SPEC_SRC.replace("wire.XferMessage", "wire.GhostMessage")
        root = build_tree(tmp_path, {"protocol/spec.py": ghost})
        rules = [f.rule for f in findings_of(root)]
        # The ghost implementation plus the now-orphaned XferMessage id.
        assert "THL200" in rules
        assert any("GhostMessage" in f.message and "defines no type_id"
                   in f.message for f in findings_of(root))


class TestTHL201:
    def test_flags_parser_without_allowed_set(self, tmp_path):
        widened = CLIENT_SRC.replace(",\n"
                                     "                                        "
                                     "allowed=CLIENT_ACCEPTS", "")
        root = build_tree(tmp_path, {"core/client.py": widened})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL201"]
        assert "no allowed-id set" in findings[0].message
        assert "CLIENT_ACCEPTS" in findings[0].message

    def test_flags_widening_expression(self, tmp_path):
        widened = CLIENT_SRC.replace("allowed=CLIENT_ACCEPTS",
                                     "allowed=CLIENT_ACCEPTS | {32}")
        root = build_tree(tmp_path, {"core/client.py": widened})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL201"]
        assert "widening" in findings[0].message

    def test_flags_foreign_direction_dispatch(self, tmp_path):
        confused = CLIENT_SRC + """
    def smuggle(self, msg):
        if isinstance(msg, wire.XferMessage):
            return False
"""
        root = build_tree(tmp_path, {"core/client.py": confused})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL201"]
        assert "can never legitimately receive" in findings[0].message
        assert "XferMessage" in findings[0].message

    def test_accepts_raw_direction_set_name(self, tmp_path):
        # The un-aliased spec export is as good as the alias.
        raw = CLIENT_SRC.replace("CLIENT_ACCEPTS", "DOWNLINK_TYPE_IDS")
        assert findings_of(build_tree(tmp_path, {"core/client.py": raw})) == []


class TestTHL202:
    def test_flags_dead_wire_id(self, tmp_path):
        deaf = CLIENT_SRC.replace("""
    def render(self, msg):
        if isinstance(msg, wire.PongMessage):
            return True
""", "")
        root = build_tree(tmp_path, {"core/client.py": deaf})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL202"]
        assert "PONG" in findings[0].message
        assert "dead wire id" in findings[0].message

    def test_fabric_plain_reference_counts_as_handling(self, tmp_path):
        # The coordinator consumes fabric messages by construction and
        # log adoption, not isinstance fan-out; a plain reference in
        # the fabric scope suffices (the clean tree relies on it).
        assert findings_of(build_tree(tmp_path)) == []


class TestTHL203:
    def test_flags_unguarded_slice_bound(self, tmp_path):
        unguarded = WIRE_SRC.replace("        _need(data, n)\n", "")
        root = build_tree(tmp_path, {"protocol/wire.py": unguarded})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL203"]
        assert "'n'" in findings[0].message
        assert "PongMessage" in findings[0].message

    def test_limits_comparison_counts_as_guard(self, tmp_path):
        compared = WIRE_SRC.replace(
            "        _need(data, n)\n",
            "        if n > LIMITS.max_frame_bytes:\n"
            "            raise FrameTooLargeError(n)\n")
        assert findings_of(
            build_tree(tmp_path, {"protocol/wire.py": compared})) == []

    def test_compare_then_raise_counts_as_guard(self, tmp_path):
        # A range check with teeth needs no LIMITS mention:
        # ``if n >= len(TABLE): raise FieldRangeError`` guards n.
        checked = WIRE_SRC.replace(
            "        _need(data, n)\n",
            "        if n >= 4096:\n"
            "            raise FieldRangeError(n)\n")
        assert findings_of(
            build_tree(tmp_path, {"protocol/wire.py": checked})) == []

    def test_guard_through_one_helper_level(self, tmp_path):
        # Interprocedural step: the unpack and the guard live in a
        # module-level helper; the field is still recognised as bound.
        helper = WIRE_SRC.replace("""
    @classmethod
    def decode_payload(cls, data):
        (n,) = _BODY.unpack_from(data)
        _need(data, n)
        return cls(data[_BODY.size:][:n])
""", """
    @classmethod
    def decode_payload(cls, data):
        n = _head(data)
        return cls(data[_BODY.size:][:n])
""") + """

def _head(data):
    (n,) = _BODY.unpack_from(data)
    _need(data, n)
    return n
"""
        assert findings_of(
            build_tree(tmp_path, {"protocol/wire.py": helper})) == []


class TestTHL204:
    def test_flags_unserialized_attribute(self, tmp_path):
        drifted = SESSION_SRC.replace(
            "self.viewport = (0, 0)",
            "self.viewport = (0, 0)\n        self._scratch = []")
        root = build_tree(tmp_path, {"core/session_unit.py": drifted})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL204"]
        assert "_scratch" in findings[0].message
        assert "neither captured by freeze()" in findings[0].message

    def test_flags_stale_allowlist_entry(self, tmp_path):
        stale = SESSION_SRC.replace(
            '"_parser": "rebuilt clean on thaw",',
            '"_parser": "rebuilt clean on thaw",\n'
            '    "ghost": "never existed",')
        root = build_tree(tmp_path, {"core/session_unit.py": stale})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL204"]
        assert "never assigns" in findings[0].message

    def test_flags_allowlisted_but_frozen(self, tmp_path):
        both = SESSION_SRC.replace(
            '"_parser": "rebuilt clean on thaw",',
            '"_parser": "rebuilt clean on thaw",\n'
            '    "viewport": "already frozen",')
        root = build_tree(tmp_path, {"core/session_unit.py": both})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL204"]
        assert "freeze() captures" in findings[0].message

    def test_flags_missing_reason(self, tmp_path):
        bare = SESSION_SRC.replace('"rebuilt clean on thaw"', '""')
        root = build_tree(tmp_path, {"core/session_unit.py": bare})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL204"]
        assert "no reason string" in findings[0].message


class TestTHL205:
    def test_flags_wall_clock_call(self, tmp_path):
        ticking = COORD_SRC + """
import time


def _stamp():
    return time.time()
"""
        root = build_tree(tmp_path, {"cluster/coordinator.py": ticking})
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL205"]
        assert "time.time()" in findings[0].message

    def test_perf_counter_is_not_banned(self, tmp_path):
        measured = COORD_SRC + """
import time


def _wall_cost():
    return time.perf_counter()
"""
        root = build_tree(tmp_path, {"cluster/coordinator.py": measured})
        assert findings_of(root) == []

    def test_from_import_alias_is_tracked(self, tmp_path):
        aliased = COORD_SRC + """
from time import monotonic as _mono


def _stamp():
    return _mono()
"""
        root = build_tree(tmp_path, {"cluster/coordinator.py": aliased})
        assert rules_of(root) == ["THL205"]

    def test_clock_sweep_over_arbitrary_tree(self, tmp_path):
        tree = tmp_path / "swept"
        tree.mkdir()
        (tree / "ok.py").write_text(
            "import time\nCOST = time.perf_counter\n")
        (tree / "bad.py").write_text(
            "import time\n\n\ndef now():\n    return time.monotonic()\n")
        findings = check_clock_sweep(tree)
        assert [f.rule for f in findings] == ["THL205"]
        assert findings[0].path.endswith("bad.py")


# --- the real tree: clean, spec lock-step, seeded mutations ------------------

def mutate_real_tree(tmp_path, rel, old, new):
    """Copy src/repro and apply one targeted text mutation."""
    dst = tmp_path / "repro"
    shutil.copytree(SRC, dst,
                    ignore=shutil.ignore_patterns("__pycache__"))
    path = dst / rel
    text = path.read_text()
    assert old in text, f"mutation anchor vanished from {rel}: {old!r}"
    path.write_text(text.replace(old, new, 1))
    return dst


class TestRealTree:
    def test_production_tree_is_clean(self):
        assert findings_of(SRC) == []

    def test_ast_spec_matches_live_registry(self):
        """The analyzer never imports the tree it reads; this pins the
        AST-extracted registry to the live PROTOCOL_SPEC so the two
        cannot drift apart silently."""
        extracted = {(e.name, e.type_id, e.direction, e.implementation)
                     for e in extract_facts(SRC).spec}
        live = {(s.name, s.type_id, s.direction, s.implementation.__name__)
                for s in PROTOCOL_SPEC}
        assert extracted == live

    def test_matrix_covers_every_spec_id(self):
        matrix = render_contract_matrix(extract_facts(SRC))
        for spec in PROTOCOL_SPEC:
            assert f"| {spec.type_id} | `{spec.name}` |" in matrix
        assert "Ids 32–35 are `s->s` only" in matrix

    def test_committed_matrix_is_fresh(self):
        committed = (REPO / "docs" / "CONTRACTS.md").read_text()
        assert committed == render_contract_matrix(extract_facts(SRC))

    def test_committed_baseline_is_empty(self):
        data = json.loads((REPO / "analysis_baseline.json").read_text())
        assert data["findings"] == []
        assert data["suppression_budget"] == 0


class TestSeededMutations:
    """Each mutation of the production sources yields exactly the
    expected finding — the analyzer's teeth, proven end to end."""

    def test_deleting_a_handler_is_a_dead_wire_id(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "core/client.py",
            "        if isinstance(msg, wire.VideoTeardownMessage):\n"
            "            self.video_streams.pop(msg.stream_id, None)\n"
            "            self.video_quality.pop(msg.stream_id, None)\n"
            "            return\n",
            "")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL202"]
        assert "VTEARDOWN" in findings[0].message

    def test_widening_a_parser_set_is_a_direction_violation(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "core/session_unit.py",
            "allowed=SERVER_ACCEPTS)", "allowed=None)")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL201"]
        assert "SERVER_ACCEPTS" in findings[0].message

    def test_unguarded_decode_field_is_flagged(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "protocol/wire.py",
            "        (ts,) = _TIMESTAMP.unpack_from(data)\n"
            "        return cls(_finite(ts, \"AUDIO timestamp\"), "
            "data[_TIMESTAMP.size:])",
            "        (ts,) = _TIMESTAMP.unpack_from(data)\n"
            "        (nsamples,) = _TIMESTAMP.unpack_from(data)\n"
            "        return cls(_finite(ts, \"AUDIO timestamp\"), "
            "data[_TIMESTAMP.size:][:nsamples])")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL203"]
        assert "'nsamples'" in findings[0].message
        assert "AudioChunkMessage" in findings[0].message

    def test_unserialized_session_attribute_is_flagged(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "core/session_unit.py",
            "        self._pipe_tail = 0.0\n",
            "        self._pipe_tail = 0.0\n"
            "        self._migration_epoch = 0\n")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL204"]
        assert "_migration_epoch" in findings[0].message

    def test_unregistered_type_id_is_flagged(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "protocol/wire.py",
            "\nclass VideoSetupMessage:",
            "\nclass RogueProbeMessage:\n"
            "    type_id = 99\n\n\nclass VideoSetupMessage:")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL200"]
        assert "99" in findings[0].message

    def test_wall_clock_in_cluster_is_flagged(self, tmp_path):
        root = mutate_real_tree(
            tmp_path, "cluster/hashring.py",
            "from __future__ import annotations\n",
            "from __future__ import annotations\n\n"
            "import time\n\n_EPOCH = time.time()\n")
        findings = findings_of(root)
        assert [f.rule for f in findings] == ["THL205"]
        assert findings[0].path.endswith("cluster/hashring.py")


# --- the findings baseline ---------------------------------------------------

class TestBaseline:
    def _one_finding(self, tmp_path):
        root = build_tree(tmp_path, {"core/session_unit.py": SESSION_SRC.replace(
            "self.viewport = (0, 0)",
            "self.viewport = (0, 0)\n        self._scratch = []")})
        (finding,) = findings_of(root)
        return root, finding

    def test_new_finding_fails(self, tmp_path):
        root, finding = self._one_finding(tmp_path)
        result = apply_baseline([finding], Baseline(0, frozenset()), root)
        assert result.new == (finding,)
        assert not result.ok

    def test_baselined_finding_passes_within_budget(self, tmp_path):
        root, finding = self._one_finding(tmp_path)
        key = finding_key(finding, root)
        result = apply_baseline([finding], Baseline(1, frozenset({key})),
                                root)
        assert result.ok
        assert result.accepted == (finding,)

    def test_budget_of_zero_rejects_accepted_findings(self, tmp_path):
        root, finding = self._one_finding(tmp_path)
        key = finding_key(finding, root)
        result = apply_baseline([finding], Baseline(0, frozenset({key})),
                                root)
        assert result.over_budget == 1
        assert not result.ok

    def test_fixed_finding_flags_stale_entry(self, tmp_path):
        root = build_tree(tmp_path)  # clean: the "fix" has shipped
        key = "THL204|core/session_unit.py|whatever"
        result = apply_baseline([], Baseline(1, frozenset({key})), root)
        assert result.stale == (key,)
        assert not result.ok

    def test_key_is_line_independent(self, tmp_path):
        root, finding = self._one_finding(tmp_path)
        key = finding_key(finding, root)
        assert str(finding.line) not in key.split("|")
        assert key.startswith("THL204|core/session_unit.py|")

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "nope.json")
        assert baseline.budget == 0 and baseline.keys == frozenset()


# --- the CLI ------------------------------------------------------------------

class TestContractsCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = build_tree(tmp_path)
        assert analysis_main(["--contracts", str(root)]) == 0

    def test_new_finding_exits_one(self, tmp_path, capsys):
        root = build_tree(tmp_path, {"core/session_unit.py": SESSION_SRC.replace(
            "self.viewport = (0, 0)",
            "self.viewport = (0, 0)\n        self._scratch = []")})
        assert analysis_main(["--contracts", str(root)]) == 1
        assert "THL204" in capsys.readouterr().out

    def test_baselined_finding_exits_zero(self, tmp_path, capsys):
        root = build_tree(tmp_path, {"core/session_unit.py": SESSION_SRC.replace(
            "self.viewport = (0, 0)",
            "self.viewport = (0, 0)\n        self._scratch = []")})
        (finding,) = findings_of(root)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1, "suppression_budget": 1,
            "findings": [finding_key(finding, root)]}))
        assert analysis_main(["--contracts", str(root),
                              "--baseline", str(baseline)]) == 0
        assert "baseline:" in capsys.readouterr().out

    def test_stale_baseline_entry_exits_one(self, tmp_path, capsys):
        root = build_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1, "suppression_budget": 1,
            "findings": ["THL204|core/session_unit.py|long gone"]}))
        assert analysis_main(["--contracts", str(root),
                              "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert analysis_main(["--contracts",
                              str(tmp_path / "missing")]) == 2

    def test_matrix_roundtrip(self, tmp_path, capsys):
        root = build_tree(tmp_path)
        out = tmp_path / "CONTRACTS.md"
        assert analysis_main(["--contracts", str(root),
                              "--matrix-out", str(out)]) == 0
        assert analysis_main(["--contracts", str(root),
                              "--matrix-check", str(out)]) == 0

    def test_stale_matrix_exits_one(self, tmp_path, capsys):
        root = build_tree(tmp_path)
        out = tmp_path / "CONTRACTS.md"
        out.write_text("# stale\n")
        assert analysis_main(["--contracts", str(root),
                              "--matrix-check", str(out)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_sweep_flag_extends_thl205(self, tmp_path, capsys):
        root = build_tree(tmp_path)
        swept = tmp_path / "bench"
        swept.mkdir()
        (swept / "ticker.py").write_text(
            "import time\n\n\ndef now():\n    return time.monotonic()\n")
        assert analysis_main(["--contracts", str(root),
                              "--sweep", str(swept)]) == 1
        assert "THL205" in capsys.readouterr().out

    def test_repo_default_invocation_is_clean(self, capsys):
        # The committed tree + committed baseline + committed matrix,
        # exactly as `make analyze` and CI run it.
        assert analysis_main(["--contracts"]) == 0
