"""Fixture tests for every thinclint rule: a snippet each rule must
flag, and the idiomatic fix it must pass."""

import textwrap
from pathlib import Path

from repro.analysis.lint import (find_suppressions, lint_source,
                                 module_name_for)

# An arbitrary module outside the display and protocol packages.
MOD = "repro.workloads.fixture"


def rules_of(src, module=MOD, **kw):
    return [f.rule for f in lint_source(textwrap.dedent(src), module, **kw)]


class TestCommandContract:
    def test_flags_missing_overwrite_semantics(self):
        src = """
        class PatternCommand(Command):
            kind = "pattern"
        """
        findings = lint_source(textwrap.dedent(src), "repro.protocol.fixture")
        assert [f.rule for f in findings] == ["THL001"]
        assert "overwrite_class" in findings[0].message

    def test_passes_full_contract(self):
        src = """
        class PatternCommand(Command):
            kind = "pattern"
            type_id = 99
            overwrite_class = OverwriteClass.COMPLETE
            def translated(self, dx, dy): ...
            def clipped(self, rects): ...
            def encode(self): ...
            def decode(cls, payload): ...
            def apply(self, fb): ...
        """
        assert rules_of(src, "repro.protocol.fixture") == []

    def test_ignores_unrelated_classes(self):
        assert rules_of("class Helper:\n    pass\n") == []


class TestFramebufferWrite:
    def test_flags_direct_data_store(self):
        assert rules_of("fb.data[0, 0] = 255\n") == ["THL002"]

    def test_flags_augmented_data_store(self):
        assert rules_of("fb.data[y, x] += 1\n") == ["THL002"]

    def test_flags_private_view_call(self):
        assert rules_of("block = fb._view(rect)\n") == ["THL002"]

    def test_allows_reads(self):
        assert rules_of("value = fb.data[0, 0]\n") == []

    def test_allows_writes_inside_display(self):
        src = "fb.data[0, 0] = 255\n"
        assert rules_of(src, "repro.display.fixture") == []


class TestHeadDrain:
    def test_flags_list_pop_zero(self):
        assert rules_of("queue.pop(0)\n") == ["THL003"]

    def test_flags_del_head(self):
        assert rules_of("del queue[0]\n") == ["THL003"]

    def test_allows_dict_pop_with_default(self):
        assert rules_of("mapping.pop(0, None)\n") == []

    def test_allows_tail_pop(self):
        assert rules_of("queue.pop()\n") == []


class TestWireConstant:
    def test_flags_hardcoded_size(self):
        assert rules_of("FRAME_OVERHEAD = 13\n") == ["THL004"]

    def test_flags_literal_arithmetic(self):
        assert rules_of("MSG_HEADER_BYTES = 1 + 4 + 8\n") == ["THL004"]

    def test_allows_derived_size(self):
        assert rules_of("FRAME_OVERHEAD = wire.FRAME_OVERHEAD\n") == []

    def test_allows_definitions_inside_protocol(self):
        src = "FRAME_OVERHEAD = 13\n"
        assert rules_of(src, "repro.protocol.fixture") == []

    def test_ignores_unrelated_constants(self):
        assert rules_of("MAX_WINDOWS = 64\n") == []


class TestMutableDefault:
    def test_flags_list_literal(self):
        assert rules_of("def f(items=[]): ...\n") == ["THL005"]

    def test_flags_mutable_constructor(self):
        assert rules_of("def f(area=Region()): ...\n") == ["THL005"]

    def test_flags_lambda_default(self):
        assert rules_of("f = lambda items={}: items\n") == ["THL005"]

    def test_allows_none_default(self):
        assert rules_of("def f(items=None): ...\n") == []

    def test_allows_immutable_default(self):
        assert rules_of("def f(n=4, name='x'): ...\n") == []


class TestBareExcept:
    def test_flags_bare_except(self):
        src = """
        try:
            work()
        except:
            pass
        """
        assert rules_of(src) == ["THL006"]

    def test_allows_named_except(self):
        src = """
        try:
            work()
        except ValueError:
            pass
        """
        assert rules_of(src) == []


class TestSuppressions:
    def test_skip_comment_suppresses_all_rules(self):
        src = "queue.pop(0)  # thinclint: skip\n"
        assert rules_of(src) == []

    def test_targeted_skip_suppresses_only_named_rule(self):
        src = "queue.pop(0)  # thinclint: skip=THL004\n"
        assert rules_of(src) == ["THL003"]
        assert rules_of("queue.pop(0)  # thinclint: skip=THL003\n") == []

    def test_suppressions_can_be_ignored(self):
        src = "queue.pop(0)  # thinclint: skip\n"
        assert rules_of(src, honor_suppressions=False) == ["THL003"]

    def test_find_suppressions_reports_markers(self):
        src = ("a = 1  # thinclint: skip\n"
               "b = 2\n"
               "c = 3  # thinclint: skip=THL003,THL004\n")
        assert find_suppressions(src) == [
            (1, None), (3, ["THL003", "THL004"])]


class TestModuleNames:
    def test_strips_leading_source_dirs(self):
        path = Path("src/repro/core/server.py")
        assert module_name_for(path) == "repro.core.server"

    def test_keeps_package_init(self):
        path = Path("src/repro/bench/__init__.py")
        assert module_name_for(path) == "repro.bench.__init__"
