"""The runtime queue sanitizer: catches real corruption, tolerates
every legal mutation, and the replay invariant it guards actually
holds under random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import sanitizer
from repro.analysis.sanitizer import SanitizerError, sanitized_queue
from repro.display import Framebuffer
from repro.protocol import (BitmapCommand, CompositeCommand, CopyCommand,
                            PFillCommand, RawCommand, SFillCommand)
from repro.region import Rect, Region

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
W, H = 64, 48


def raw(rect, seed=0):
    rng = np.random.default_rng(seed)
    return RawCommand(rect, rng.integers(0, 256, (rect.height, rect.width, 4),
                                         dtype=np.uint8), False)


class TestCatchesCorruption:
    def test_missing_eviction_of_partial_command(self):
        q = sanitized_queue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8)))
        q._evict_under = lambda opaque, newcomer: None  # break eviction
        with pytest.raises(SanitizerError, match="stale"):
            q.add(SFillCommand(Rect(0, 0, 8, 8), RED))

    def test_missing_eviction_of_buried_complete_command(self):
        q = sanitized_queue(merge=False)
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        q._evict_under = lambda opaque, newcomer: None
        with pytest.raises(SanitizerError, match="buried"):
            q.add(raw(Rect(0, 0, 8, 8)))

    def test_corrupted_opaque_cover(self):
        q = sanitized_queue(merge=False)
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        q._opaque_cover = Region()  # lose the bookkeeping
        with pytest.raises(SanitizerError, match="opaque cover"):
            q._sanitizer.check(q, "test")

    def test_transparent_blend_without_taint_record(self):
        q = sanitized_queue(merge=False)
        mask = np.ones((4, 4), dtype=bool)
        cmd = BitmapCommand(Rect(0, 0, 4, 4), mask, RED, None)
        cmd.seq = 0
        q._commands.append(cmd)  # sneak past add()'s taint bookkeeping
        with pytest.raises(SanitizerError, match="taint"):
            q._sanitizer.after_add(q, cmd, Region())

    def test_broken_arrival_order(self):
        q = sanitized_queue(merge=False)
        q.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        q.add(SFillCommand(Rect(8, 0, 4, 4), GREEN))
        q._commands.reverse()  # corrupt the ordering
        with pytest.raises(SanitizerError, match="arrival order"):
            q._sanitizer.check(q, "test")

    def test_replacement_must_be_a_remainder(self):
        q = sanitized_queue(merge=False)
        cmd = q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        with pytest.raises(SanitizerError, match="remainder"):
            q.replace(cmd, SFillCommand(Rect(20, 20, 8, 8), GREEN))

    def test_pipe_tail_must_not_go_backwards(self):
        class Session:
            pass

        was = sanitizer.enabled()
        sanitizer.enable()
        try:
            session = Session()
            sanitizer.check_pipe_tail(session, 1.0)
            sanitizer.check_pipe_tail(session, 2.5)  # forward: fine
            with pytest.raises(SanitizerError, match="backwards"):
                sanitizer.check_pipe_tail(session, 1.5)
        finally:
            if not was:
                sanitizer.disable()


class TestToleratesLegalMutations:
    def test_valid_replacement_passes(self):
        q = sanitized_queue(merge=False)
        cmd = q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        q.replace(cmd, SFillCommand(Rect(0, 4, 8, 4), RED))
        assert len(q) == 1

    def test_cumulative_covers_legally_leave_complete_queued(self):
        # Two partial covers together bury the fill; eviction only owes
        # a drop when a *single* newcomer covers it. Replay still draws
        # the newer content over the fill, so this must not alarm.
        q = sanitized_queue(merge=False)
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        q.add(raw(Rect(0, 0, 8, 4), 1))
        q.add(raw(Rect(0, 4, 8, 4), 2))
        assert len(q) == 3

    def test_copy_pin_survives_delivery_of_the_copy(self):
        q = sanitized_queue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8), 1))
        copy = q.add(CopyCommand(0, 0, Rect(16, 0, 8, 8)))
        # The fill overlaps the COPY's source: the raw survives, pinned.
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        assert any(c.kind == "raw" for c in q)
        # Delivering the COPY must not retroactively flag the stale raw.
        q.remove(copy)

    def test_transparent_merge_across_mask_gap(self):
        # Merged glyph runs widen a transparent dest across zero-bit gap
        # columns that draw nothing; replay stays faithful there.
        q = sanitized_queue(merge=True)
        q.add(SFillCommand(Rect(0, 0, 32, 8), RED))
        mask = np.ones((8, 4), dtype=bool)
        q.add(BitmapCommand(Rect(0, 0, 4, 8), mask, GREEN, None))
        q.add(BitmapCommand(Rect(8, 0, 4, 8), mask, GREEN, None))

    def test_clear_resets_history(self):
        q = sanitized_queue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8)))
        q.add(CopyCommand(0, 0, Rect(16, 0, 8, 8)))
        q.clear()
        assert len(q) == 0
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))


def build_command(kind, rect, seed, cover):
    """A deterministic command of the given kind; COPY falls back to a
    fill when its source is not yet described (mirroring the RAW
    fallback the translation layer guarantees)."""
    rng = np.random.default_rng(seed)
    if kind == 0:
        color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
        return SFillCommand(rect, color)
    if kind == 1:
        return raw(rect, seed)
    if kind == 2:
        tile = rng.integers(0, 256, (4, 4, 4), dtype=np.uint8)
        return PFillCommand(rect, tile)
    if kind == 3:
        mask = rng.integers(0, 2, (rect.height, rect.width)).astype(bool)
        return BitmapCommand(rect, mask, RED, GREEN)
    if kind == 4:
        mask = rng.integers(0, 2, (rect.height, rect.width)).astype(bool)
        return BitmapCommand(rect, mask, RED, None)
    if kind == 5:
        pixels = rng.integers(0, 256, (rect.height, rect.width, 4),
                              dtype=np.uint8)
        return CompositeCommand(rect, pixels)
    src = Rect(rect.x // 2, rect.y // 2, rect.width, rect.height)
    if cover.contains_rect(src):
        return CopyCommand(src.x, src.y, rect)
    color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
    return SFillCommand(rect, color)


STEPS = st.lists(
    st.tuples(st.integers(0, 6),          # command kind (6 = COPY)
              st.integers(0, W - 9), st.integers(0, H - 9),
              st.integers(1, 8), st.integers(1, 8),
              st.integers(0, 999),        # pixel/mask seed
              st.integers(0, 19)),        # 18 = clear, 19 = drain
    max_size=40)


class TestReplayFidelityProperty:
    """A sanitized queue under random add/evict/clip/merge/drain keeps
    the Section 4 invariant: replaying the queue onto the delivered
    base reproduces the true screen wherever the queue claims to
    describe it (opaque cover minus taint)."""

    @staticmethod
    def assert_faithful(q, base, reference):
        fb = base.clone()
        for cmd in q:
            cmd.apply(fb)
        described = q.opaque_cover.subtract(q.tainted)
        for r in described:
            assert np.array_equal(fb.read_pixels(r),
                                  reference.read_pixels(r))

    @given(STEPS, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_random_mutations_stay_replayable(self, steps, merge):
        q = sanitized_queue(merge=merge)
        reference = Framebuffer(W, H)   # the true screen contents
        base = Framebuffer(W, H)        # content already delivered
        for kind, x, y, w, h, seed, op in steps:
            if op == 19 and len(q):
                for cmd in q.drain():   # model delivery to the client
                    cmd.apply(base)
                continue
            if op == 18:
                q.clear()               # model a zoom/resize discard
                base = reference.clone()
                continue
            cmd = build_command(kind, Rect(x, y, w, h), seed,
                                q.opaque_cover)
            cmd.apply(reference)
            q.add(cmd)
            self.assert_faithful(q, base, reference)
        self.assert_faithful(q, base, reference)
