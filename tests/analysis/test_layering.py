"""Tests for the import-layering checker and the layer map itself."""

from pathlib import Path

import pytest

from repro.analysis import run_all
from repro.analysis.layering import check_module_source
from repro.analysis.layermap import (LAYER_RANKS, TOPLEVEL_RANK,
                                     import_allowed, rank_of)

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def violations(src, module):
    return check_module_source(src, module, path=f"{module}.py")


class TestLayerMap:
    def test_region_is_the_bottom(self):
        assert rank_of("region") == min(LAYER_RANKS.values())

    def test_analysis_is_the_top(self):
        assert rank_of("analysis") == max(LAYER_RANKS.values())
        assert rank_of("analysis") > TOPLEVEL_RANK

    def test_unknown_package_is_an_error_not_a_pass(self):
        with pytest.raises(KeyError):
            rank_of("plugins")

    def test_downward_imports_allowed(self):
        assert import_allowed("core", "region")
        assert import_allowed("core", "net")
        assert import_allowed("bench", "baselines")
        assert import_allowed(None, "bench")  # top-level entry points

    def test_upward_and_peer_imports_forbidden(self):
        assert not import_allowed("region", "core")
        assert not import_allowed("protocol", "core")
        assert not import_allowed("net", "video")  # peers
        assert not import_allowed("protocol", "display")  # peers
        assert not import_allowed(None, "analysis")

    def test_same_package_always_allowed(self):
        assert import_allowed("core", "core")


class TestChecker:
    def test_flags_upward_absolute_import(self):
        out = violations("from repro.core import CommandQueue\n",
                         "repro.region.fixture")
        assert [f.rule for f in out] == ["THL100"]
        assert "strictly downward" in out[0].message

    def test_flags_upward_relative_import(self):
        out = violations("from ..core import server\n",
                         "repro.region.fixture")
        assert [f.rule for f in out] == ["THL100"]

    def test_flags_peer_import_with_peer_message(self):
        out = violations("from repro.display import WindowServer\n",
                         "repro.protocol.fixture")
        assert [f.rule for f in out] == ["THL100"]
        assert "peer layers" in out[0].message

    def test_flags_plain_import_statement(self):
        out = violations("import repro.bench\n", "repro.display.fixture")
        assert [f.rule for f in out] == ["THL100"]

    def test_flags_subpackage_from_root_import(self):
        out = violations("from repro import bench\n", "repro.display.fixture")
        assert [f.rule for f in out] == ["THL100"]

    def test_allows_downward_imports(self):
        assert violations("from ..region import Rect\n",
                          "repro.display.fixture") == []
        assert violations("from repro.protocol import wire\n",
                          "repro.core.fixture") == []

    def test_allows_intra_package_imports(self):
        assert violations("from . import geometry\n",
                          "repro.region.fixture") == []

    def test_package_init_resolves_against_itself(self):
        # A nested module shadowing a top-level package name (bench has
        # its own analysis.py) must resolve to the sibling, not the
        # top-level repro.analysis package.
        assert violations("from .analysis import smoothness\n",
                          "repro.bench.__init__") == []

    def test_ignores_stdlib_and_third_party(self):
        src = "import os\nimport numpy as np\nfrom pathlib import Path\n"
        assert violations(src, "repro.region.fixture") == []


class TestRealTree:
    def test_source_tree_is_finding_free(self):
        # The acceptance gate: lint + layering over src/repro is clean.
        assert run_all(SRC_ROOT) == []
