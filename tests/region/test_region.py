"""Unit and property tests for the Region algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.region import Rect, Region

coords = st.integers(min_value=0, max_value=24)
sizes = st.integers(min_value=1, max_value=12)
small_rects = st.builds(Rect, coords, coords, sizes, sizes)
regions = st.lists(small_rects, max_size=5).map(Region)


def pixel_set(region: Region):
    pts = set()
    for r in region:
        pts.update(r.pixels())
    return pts


class TestConstruction:
    def test_empty(self):
        region = Region.empty()
        assert region.is_empty
        assert region.area == 0
        assert not region
        assert len(region) == 0

    def test_from_rect(self):
        region = Region.from_rect(Rect(1, 1, 4, 4))
        assert region.area == 16
        assert region.bounds == Rect(1, 1, 4, 4)

    def test_from_empty_rect(self):
        assert Region.from_rect(Rect(0, 0, 0, 0)).is_empty

    def test_copy_is_independent(self):
        a = Region.from_rect(Rect(0, 0, 4, 4))
        b = a.copy()
        b.add(Rect(10, 10, 2, 2))
        assert a.area == 16
        assert b.area == 20


class TestInvariants:
    def test_add_overlapping_keeps_rects_disjoint(self):
        region = Region()
        region.add(Rect(0, 0, 10, 10))
        region.add(Rect(5, 5, 10, 10))
        rects = list(region)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)
        assert region.area == 100 + 100 - 25

    def test_add_contained_rect_is_noop(self):
        region = Region.from_rect(Rect(0, 0, 10, 10))
        region.add(Rect(2, 2, 3, 3))
        assert region.area == 100

    def test_subtract_rect(self):
        region = Region.from_rect(Rect(0, 0, 10, 10))
        region.subtract_rect(Rect(0, 0, 10, 5))
        assert region.area == 50
        assert not region.contains_point(0, 0)
        assert region.contains_point(0, 5)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Region())


class TestQueries:
    def test_contains_rect_spanning_two_parts(self):
        region = Region([Rect(0, 0, 5, 10), Rect(5, 0, 5, 10)])
        assert region.contains_rect(Rect(3, 3, 4, 4))

    def test_contains_rect_with_gap(self):
        region = Region([Rect(0, 0, 4, 10), Rect(6, 0, 4, 10)])
        assert not region.contains_rect(Rect(3, 3, 4, 4))

    def test_overlaps(self):
        a = Region.from_rect(Rect(0, 0, 4, 4))
        b = Region.from_rect(Rect(3, 3, 4, 4))
        c = Region.from_rect(Rect(10, 10, 2, 2))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_bounds_multi(self):
        region = Region([Rect(2, 3, 2, 2), Rect(8, 1, 2, 2)])
        assert region.bounds == Rect.from_corners(2, 1, 10, 5)


class TestAlgebraProperties:
    @given(regions, regions)
    @settings(max_examples=60, deadline=None)
    def test_union_is_pixel_union(self, a, b):
        assert pixel_set(a.union(b)) == pixel_set(a) | pixel_set(b)

    @given(regions, regions)
    @settings(max_examples=60, deadline=None)
    def test_subtract_is_pixel_difference(self, a, b):
        assert pixel_set(a.subtract(b)) == pixel_set(a) - pixel_set(b)

    @given(regions, regions)
    @settings(max_examples=60, deadline=None)
    def test_intersect_is_pixel_intersection(self, a, b):
        assert pixel_set(a.intersect(b)) == pixel_set(a) & pixel_set(b)

    @given(regions)
    @settings(max_examples=60, deadline=None)
    def test_rects_always_disjoint(self, region):
        rects = list(region)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    @given(regions, regions)
    @settings(max_examples=60, deadline=None)
    def test_equality_is_representation_independent(self, a, b):
        same = pixel_set(a) == pixel_set(b)
        assert (a == b) == same

    @given(regions, st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=60, deadline=None)
    def test_translate(self, region, dx, dy):
        moved = region.translate(dx, dy)
        assert pixel_set(moved) == {(x + dx, y + dy)
                                    for x, y in pixel_set(region)}
