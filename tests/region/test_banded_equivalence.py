"""Property suite: the banded Region is pixel-equivalent to NaiveRegion.

``repro.region.region.Region`` (sorted y-bands of disjoint x-spans) and
``repro.region.naive.NaiveRegion`` (the pre-PR3 list-of-disjoint-rects
reference) must describe identical pixel sets under any sequence of
operations.  Hypothesis drives both implementations through the same
random op sequences and compares every observable: pixel membership,
area, bounds, emptiness, and the contains/overlaps predicates.

A second group of properties checks the banded representation's own
canonical-form invariants — the structural guarantees that make
``Region.__eq__`` a pixel-set equality and keep every op O(n+m).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.region import NaiveRegion, Rect, Region

_MAX = 48  # coordinate bound; keeps exact pixel-set comparison cheap


def rects(max_coord=_MAX, max_side=16):
    return st.builds(
        Rect,
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(1, max_side),
        st.integers(1, max_side),
    )


# Each op is (name, payload); applied identically to both implementations.
def ops():
    rect_ops = st.tuples(
        st.sampled_from(["add", "subtract_rect", "intersect_rect"]), rects())
    translate_ops = st.tuples(
        st.just("translate"),
        st.tuples(st.integers(-8, 8), st.integers(-8, 8)))
    region_ops = st.tuples(
        st.sampled_from(["union", "subtract", "intersect"]),
        st.lists(rects(), min_size=0, max_size=4))
    return st.lists(st.one_of(rect_ops, translate_ops, region_ops),
                    min_size=0, max_size=12)


def apply_ops(impl, sequence):
    region = impl()
    for name, payload in sequence:
        if name in ("add", "subtract_rect"):
            getattr(region, name)(payload)
        elif name == "intersect_rect":
            region = region.intersect_rect(payload)
        elif name == "translate":
            region = region.translate(*payload)
        else:
            other = impl()
            for rect in payload:
                other.add(rect)
            region = getattr(region, name)(other)
    return region


def pixels(region):
    out = set()
    for rect in region:
        for y in range(rect.y, rect.y2):
            for x in range(rect.x, rect.x2):
                out.add((x, y))
    return out


def assert_canonical(region):
    """The banded form's structural invariants (see region.py)."""
    bands = region._bands
    prev = None
    for y1, y2, spans in bands:
        assert y1 < y2, f"degenerate band {y1}..{y2}"
        assert spans, "empty span tuple stored in a band"
        px2 = None
        for x1, x2 in spans:
            assert x1 < x2, f"degenerate span {x1}..{x2}"
            if px2 is not None:
                # Strictly increasing with a gap: adjacent spans must
                # have been coalesced into one maximal span.
                assert px2 < x1, f"uncoalesced/overlapping spans at {y1}"
            px2 = x2
        if prev is not None:
            py1, py2, pspans = prev
            assert py2 <= y1, "bands overlap vertically"
            if py2 == y1:
                # Vertically adjacent bands with identical spans must
                # have been merged into one taller band.
                assert pspans != spans, "uncoalesced adjacent bands"
        prev = (y1, y2, spans)


class TestPixelEquivalence:
    @given(ops())
    @settings(max_examples=150, deadline=None)
    def test_op_sequences_agree(self, sequence):
        banded = apply_ops(Region, sequence)
        naive = apply_ops(NaiveRegion, sequence)
        assert pixels(banded) == pixels(naive)
        assert banded.area == naive.area
        assert banded.is_empty == naive.is_empty
        assert bool(banded) == bool(naive)
        if not banded.is_empty:
            assert banded.bounds == naive.bounds
        assert_canonical(banded)

    @given(ops(), rects(), st.tuples(st.integers(0, _MAX),
                                     st.integers(0, _MAX)))
    @settings(max_examples=150, deadline=None)
    def test_predicates_agree(self, sequence, probe, point):
        banded = apply_ops(Region, sequence)
        naive = apply_ops(NaiveRegion, sequence)
        assert banded.contains_point(*point) == naive.contains_point(*point)
        assert banded.contains_rect(probe) == naive.contains_rect(probe)
        assert banded.overlaps_rect(probe) == naive.overlaps_rect(probe)
        assert (banded.overlaps(Region.from_rect(probe))
                == naive.overlaps(NaiveRegion.from_rect(probe)))

    @given(st.lists(rects(), min_size=0, max_size=10), ops())
    @settings(max_examples=100, deadline=None)
    def test_pairwise_ops_agree(self, base_rects, sequence):
        banded_a = apply_ops(Region, sequence)
        naive_a = apply_ops(NaiveRegion, sequence)
        banded_b = Region()
        naive_b = NaiveRegion()
        for rect in base_rects:
            banded_b.add(rect)
            naive_b.add(rect)
        for name in ("union", "subtract", "intersect"):
            got = getattr(banded_a, name)(banded_b)
            want = getattr(naive_a, name)(naive_b)
            assert pixels(got) == pixels(want), name
            assert_canonical(got)
        assert banded_a.overlaps(banded_b) == naive_a.overlaps(naive_b)


class TestCanonicalForm:
    @given(st.lists(rects(), min_size=0, max_size=12),
           st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_insertion_order_is_irrelevant(self, rect_list, rng):
        ordered = Region()
        for rect in rect_list:
            ordered.add(rect)
        shuffled_rects = list(rect_list)
        rng.shuffle(shuffled_rects)
        shuffled = Region()
        for rect in shuffled_rects:
            shuffled.add(rect)
        # Canonical form makes structural equality a pixel-set equality,
        # so any insertion order yields the identical representation.
        assert ordered == shuffled
        assert ordered._bands == shuffled._bands

    @given(ops())
    @settings(max_examples=100, deadline=None)
    def test_every_result_is_canonical(self, sequence):
        region = apply_ops(Region, sequence)
        assert_canonical(region)
        rebuilt = Region()
        for rect in region:
            rebuilt.add(rect)
        assert rebuilt == region

    def test_equality_ignores_construction_path(self):
        a = Region.from_rect(Rect(0, 0, 10, 10))
        b = Region()
        for rect in (Rect(0, 0, 5, 10), Rect(5, 0, 5, 5), Rect(5, 5, 5, 5)):
            b.add(rect)
        assert a == b
        assert a._bands == b._bands
        assert len(a._bands) == 1
