"""Unit and property tests for Rect."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.region import EMPTY_RECT, Rect

rect_coords = st.integers(min_value=-50, max_value=50)
rect_sizes = st.integers(min_value=-5, max_value=30)


def rects():
    return st.builds(Rect, rect_coords, rect_coords, rect_sizes, rect_sizes)


def nonempty_rects():
    sizes = st.integers(min_value=1, max_value=30)
    return st.builds(Rect, rect_coords, rect_coords, sizes, sizes)


class TestBasics:
    def test_corners(self):
        r = Rect(2, 3, 10, 20)
        assert (r.x2, r.y2) == (12, 23)
        assert r.area == 200
        assert not r.empty

    def test_degenerate_normalises_to_canonical_empty(self):
        assert Rect(5, 5, 0, 10) == EMPTY_RECT
        assert Rect(5, 5, 10, -3) == EMPTY_RECT
        assert Rect(5, 5, 0, 0).area == 0

    def test_from_corners(self):
        assert Rect.from_corners(1, 2, 4, 6) == Rect(1, 2, 3, 4)
        assert Rect.from_corners(4, 2, 1, 6).empty

    def test_bool(self):
        assert Rect(0, 0, 1, 1)
        assert not EMPTY_RECT

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert r.contains_point(3, 3)
        assert not r.contains_point(4, 0)
        assert not r.contains_point(0, 4)
        assert not r.contains_point(-1, 0)

    def test_as_tuple_and_pixels(self):
        r = Rect(1, 1, 2, 2)
        assert r.as_tuple() == (1, 1, 2, 2)
        assert set(r.pixels()) == {(1, 1), (2, 1), (1, 2), (2, 2)}


class TestSetOps:
    def test_intersect_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersect(b) == Rect(5, 5, 5, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Rect(0, 0, 4, 4).intersect(Rect(10, 10, 4, 4)).empty

    def test_intersect_touching_edges_is_empty(self):
        assert Rect(0, 0, 4, 4).intersect(Rect(4, 0, 4, 4)).empty

    def test_union_bounds(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(8, 8, 2, 2)
        assert a.union_bounds(b) == Rect(0, 0, 10, 10)
        assert a.union_bounds(EMPTY_RECT) == a
        assert EMPTY_RECT.union_bounds(b) == b

    def test_subtract_hole_in_middle(self):
        outer = Rect(0, 0, 10, 10)
        hole = Rect(3, 3, 4, 4)
        pieces = outer.subtract(hole)
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == outer.area - hole.area
        for p in pieces:
            assert not p.overlaps(hole)
            assert outer.contains(p)

    def test_subtract_no_overlap_returns_self(self):
        r = Rect(0, 0, 4, 4)
        assert r.subtract(Rect(10, 10, 2, 2)) == [r]

    def test_subtract_full_cover_returns_nothing(self):
        assert Rect(2, 2, 3, 3).subtract(Rect(0, 0, 10, 10)) == []

    def test_contains_empty_in_everything(self):
        assert Rect(0, 0, 1, 1).contains(EMPTY_RECT)
        assert EMPTY_RECT.contains(EMPTY_RECT)
        assert not EMPTY_RECT.contains(Rect(0, 0, 1, 1))


class TestTransforms:
    def test_translate(self):
        assert Rect(1, 2, 3, 4).translate(10, -2) == Rect(11, 0, 3, 4)
        assert EMPTY_RECT.translate(5, 5).empty

    def test_scale_covers_source(self):
        r = Rect(3, 3, 5, 5)
        s = r.scale(0.5, 0.5)
        # Outward rounding: every scaled source pixel lands inside.
        assert s.x <= math.floor(3 * 0.5)
        assert s.x2 >= math.ceil(8 * 0.5)

    def test_scale_identity(self):
        r = Rect(3, 4, 5, 6)
        assert r.scale(1.0, 1.0) == r

    def test_clip_to(self):
        r = Rect(-5, -5, 20, 20)
        assert r.clip_to(Rect(0, 0, 10, 10)) == Rect(0, 0, 10, 10)


class TestProperties:
    @given(rects(), rects())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        c = a.intersect(b)
        assert a.contains(c) and b.contains(c)

    @given(rects())
    def test_self_intersection_identity(self, a):
        assert a.intersect(a) == a

    @given(nonempty_rects(), rects())
    def test_subtract_partition(self, a, b):
        """subtract() pieces are disjoint and tile exactly a - b."""
        pieces = a.subtract(b)
        assert sum(p.area for p in pieces) == a.area - a.intersect(b).area
        for i, p in enumerate(pieces):
            assert not p.overlaps(b)
            assert a.contains(p)
            for q in pieces[i + 1 :]:
                assert not p.overlaps(q)

    @given(rects(), rects())
    def test_overlap_iff_positive_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b).area > 0)

    @given(rects(), rects())
    def test_union_bounds_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains(a) and u.contains(b)

    @given(nonempty_rects(), st.integers(-20, 20), st.integers(-20, 20))
    def test_translate_roundtrip(self, a, dx, dy):
        assert a.translate(dx, dy).translate(-dx, -dy) == a
