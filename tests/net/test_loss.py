"""Tests for the wireless loss model."""

import pytest

from repro.net import Connection, EventLoop, LinkParams


def run_transfer(link, nbytes=200_000):
    loop = EventLoop()
    conn = Connection(loop, link)
    got = []
    conn.connect(lambda d: got.append((loop.now, d)), lambda d: None)
    remaining = nbytes
    payload = bytes(range(256))

    def feed():
        nonlocal remaining
        while remaining > 0:
            room = conn.down.writable_bytes()
            if room < 256:
                loop.schedule(0.002, feed)
                return
            chunk = (payload * 4)[: min(1024, remaining)]
            conn.down.write(chunk)
            remaining -= len(chunk)

    loop.schedule(0, feed)
    loop.run_until_idle()
    return got, conn


BASE = LinkParams("wifi", bandwidth_bps=24e6, rtt=0.01)


class TestLossModel:
    def test_lossless_by_default(self):
        got, conn = run_transfer(BASE)
        assert conn.down.segments_lost == 0

    def test_all_bytes_still_delivered(self):
        lossy = BASE.with_loss(0.05)
        got, conn = run_transfer(lossy)
        assert sum(len(d) for _, d in got) == 200_000
        assert conn.down.segments_lost > 0

    def test_delivery_stays_in_order(self):
        """Retransmissions must not reorder the byte stream."""
        lossy = BASE.with_loss(0.05)
        got, conn = run_transfer(lossy)
        stream = b"".join(d for _, d in got)
        expected = (bytes(range(256)) * 4 * 800)[:200_000]
        assert stream == expected
        times = [t for t, _ in got]
        assert times == sorted(times)

    def test_loss_slows_completion(self):
        clean, _ = run_transfer(BASE)
        lossy, _ = run_transfer(BASE.with_loss(0.05))
        assert lossy[-1][0] > clean[-1][0]

    def test_loss_deterministic(self):
        a, conn_a = run_transfer(BASE.with_loss(0.05))
        b, conn_b = run_transfer(BASE.with_loss(0.05))
        assert conn_a.down.segments_lost == conn_b.down.segments_lost
        assert [t for t, _ in a] == [t for t, _ in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            BASE.with_loss(1.5)
        with pytest.raises(ValueError):
            BASE.with_loss(-0.1)
