"""The fault-injection layer: plans, faulty endpoints, determinism.

Everything here is about the *transport* behaving believably and
reproducibly under injected faults — the session-level recovery story
lives in tests/core/test_resilience.py.
"""

import random
import zlib

import pytest

from repro.net import Connection, EventLoop, LinkParams
from repro.net.faults import (Corruption, Disconnect, FaultPlan,
                              FaultyConnection, LossBurst, Partition, Stall)

LINK = LinkParams("test-lan", bandwidth_bps=100e6, rtt=0.004)


def pump(plan=None, chunks=None, end=5.0, record_trace=False, link=LINK):
    """Push *chunks* (a list of ``(time, bytes)``) down a faulty
    connection and return ``(received bytes, connection)``."""
    loop = EventLoop()
    conn = FaultyConnection(loop, link, plan=plan, record_trace=record_trace)
    got = []
    conn.down.connect(got.append)
    for t, data in chunks or []:
        loop.schedule_at(t, lambda d=data: conn.down.write(d))
    loop.run_until(end)
    return b"".join(got), conn


PAYLOAD = [(0.01 * i, bytes([i % 251]) * 500) for i in range(40)]
PAYLOAD_BYTES = b"".join(d for _, d in PAYLOAD)


class TestFaultPlanGeometry:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            LossBurst(start=0.0, duration=1.0, drop_rate=1.5)
        with pytest.raises(ValueError):
            Stall(start=0.0, duration=1.0, direction="sideways")
        with pytest.raises(ValueError):
            Corruption(start=0.0, duration=1.0, flips=0)
        with pytest.raises(ValueError):
            Corruption(start=0.0, duration=1.0, rate=0.0)
        with pytest.raises(TypeError):
            FaultPlan(["not-an-event"])

    def test_windows_answer_queries(self):
        plan = FaultPlan([Stall(start=1.0, duration=0.5, direction="down"),
                          LossBurst(start=2.0, duration=0.25, drop_rate=0.5),
                          Corruption(start=3.0, duration=0.1)])
        assert plan.stalled_until(0.9, "down") == 0.0
        assert plan.stalled_until(1.2, "down") == pytest.approx(1.5)
        assert plan.stalled_until(1.2, "up") == 0.0
        assert plan.loss_rate_at(2.1, "down") == pytest.approx(0.5)
        assert plan.loss_rate_at(2.3, "down") == 0.0
        assert plan.corruption_at(3.05, "down") is not None
        assert plan.corruption_at(3.05, "up") is None

    def test_partition_stalls_both_directions(self):
        plan = FaultPlan([Partition(start=1.0, duration=1.0)])
        assert plan.stalled_until(1.5, "down") == pytest.approx(2.0)
        assert plan.stalled_until(1.5, "up") == pytest.approx(2.0)

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(seed=42)
        b = FaultPlan.random(seed=42)
        assert a.events == b.events
        assert FaultPlan.random(seed=43).events != a.events

    def test_random_plans_respect_horizon(self):
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, horizon=2.0)
            assert plan.last_event_end() <= 2.0
            for t in plan.disconnect_times():
                assert t <= 2.0 * 0.8


class TestFaultyDelivery:
    def test_no_plan_is_transparent(self):
        got, _ = pump(plan=None, chunks=PAYLOAD)
        assert got == PAYLOAD_BYTES

    def test_stall_holds_then_releases_in_order(self):
        plan = FaultPlan([Stall(start=0.1, duration=1.0, direction="down")])
        loop = EventLoop()
        conn = FaultyConnection(loop, LINK, plan=plan)
        arrivals = []
        conn.down.connect(lambda d: arrivals.append((loop.now, d)))
        for t, data in PAYLOAD:
            loop.schedule_at(t, lambda d=data: conn.down.write(d))
        loop.run_until(0.9)
        held_at_090 = b"".join(d for _, d in arrivals)
        loop.run_until(5.0)
        # Nothing delivered inside the window beyond what beat it ...
        assert len(held_at_090) < len(PAYLOAD_BYTES)
        assert all(t <= 0.1 or t >= 1.1 for t, _ in arrivals)
        # ... and the stream comes out complete and in order.
        assert b"".join(d for _, d in arrivals) == PAYLOAD_BYTES

    def test_total_loss_burst_still_delivers_eventually(self):
        plan = FaultPlan([LossBurst(start=0.05, duration=0.3, drop_rate=1.0)])
        got, _ = pump(plan=plan, chunks=PAYLOAD)
        assert got == PAYLOAD_BYTES

    def test_partial_loss_keeps_stream_intact(self):
        plan = FaultPlan([LossBurst(start=0.0, duration=0.5, drop_rate=0.4)],
                         seed=11)
        got, conn = pump(plan=plan, chunks=PAYLOAD)
        assert got == PAYLOAD_BYTES
        assert conn.down.fault_stats["segments_lost"] > 0

    def test_corruption_flips_bytes_but_preserves_length(self):
        plan = FaultPlan([Corruption(start=0.0, duration=5.0, rate=1.0)],
                         seed=7)
        got, conn = pump(plan=plan, chunks=PAYLOAD)
        assert len(got) == len(PAYLOAD_BYTES)
        assert got != PAYLOAD_BYTES
        assert conn.down.fault_stats["segments_corrupted"] > 0

    def test_corruption_only_hits_selected_direction(self):
        plan = FaultPlan([Corruption(start=0.0, duration=5.0, rate=1.0,
                                     direction="down")], seed=7)
        loop = EventLoop()
        conn = FaultyConnection(loop, LINK, plan=plan)
        got_up = []
        conn.up.connect(got_up.append)
        conn.up.write(b"x" * 2000)
        loop.run_until(2.0)
        assert b"".join(got_up) == b"x" * 2000

    def test_disconnect_closes_connection_and_drops_tail(self):
        plan = FaultPlan([Disconnect(at=0.15)])
        got, conn = pump(plan=plan, chunks=PAYLOAD)
        assert conn.closed
        assert len(got) < len(PAYLOAD_BYTES)

    def test_past_disconnects_do_not_affect_new_connections(self):
        # A redial after a disconnect event must get a live pipe.
        plan = FaultPlan([Disconnect(at=0.15)])
        loop = EventLoop()
        first = FaultyConnection(loop, LINK, plan=plan)
        loop.run_until(0.2)
        assert first.closed
        second = FaultyConnection(loop, LINK, plan=plan)
        got = []
        second.down.connect(got.append)
        second.down.write(b"hello")
        loop.run_until(1.0)
        assert not second.closed
        assert b"".join(got) == b"hello"


class TestDeterminism:
    def run_traced(self, plan_seed):
        plan = FaultPlan([LossBurst(start=0.02, duration=0.2, drop_rate=0.5),
                          Corruption(start=0.25, duration=0.1, rate=0.5)],
                         seed=plan_seed)
        _, conn = pump(plan=plan, chunks=PAYLOAD, record_trace=True)
        return conn.fault_trace()

    def test_same_seed_byte_identical_trace(self):
        # The acceptance bar: two runs of the same chaos scenario must
        # produce the same packet trace, record for record (times,
        # sizes, payload CRCs).
        assert self.run_traced(123) == self.run_traced(123)

    def test_different_seed_different_trace(self):
        assert self.run_traced(123) != self.run_traced(321)


class TestLossRngSeeding:
    def test_endpoint_loss_rng_uses_stable_digest(self):
        # The per-endpoint loss RNG must be seeded from a stable digest
        # of (label, link name) — NOT hash(), which PYTHONHASHSEED
        # randomises across processes and would make "same seed, same
        # run" silently false between CI invocations.
        loop = EventLoop()
        lossy = LinkParams("lossy", bandwidth_bps=10e6, rtt=0.01,
                           loss_rate=0.05)
        conn = Connection(loop, lossy)
        for endpoint, label in ((conn.down, "server->client"),
                                (conn.up, "client->server")):
            seed = zlib.crc32(f"{label}|lossy".encode("utf-8")) & 0xFFFF
            assert endpoint._loss_rng.random() == \
                random.Random(seed).random()

    def test_cross_run_loss_pattern_is_reproducible(self):
        # Loss costs time, so the arrival timeline is a fingerprint of
        # the loss RNG's draws; it must repeat exactly across runs.
        def arrival_times():
            loop = EventLoop()
            lossy = LinkParams("lossy", bandwidth_bps=10e6, rtt=0.01,
                               loss_rate=0.2)
            conn = Connection(loop, lossy)
            times = []
            conn.down.connect(lambda d: times.append(loop.now))
            for i in range(30):
                loop.schedule_at(0.01 * i,
                                 lambda: conn.down.write(b"y" * 1000))
            loop.run_until(5.0)
            return times

        first = arrival_times()
        assert first
        assert arrival_times() == first
