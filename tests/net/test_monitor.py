"""Tests for the packet monitor and slow-motion analysis helpers."""

from repro.net import PacketMonitor


def trace():
    m = PacketMonitor()
    m.record(0.00, "client->server", 50)   # click
    m.record(0.10, "server->client", 1460)
    m.record(0.15, "server->client", 1460)
    m.record(0.30, "server->client", 500)
    m.record(2.00, "client->server", 50)   # next click
    m.record(2.20, "server->client", 900)
    return m


class TestAccounting:
    def test_total_bytes_all(self):
        assert trace().total_bytes() == 50 + 1460 + 1460 + 500 + 50 + 900

    def test_total_bytes_by_direction(self):
        m = trace()
        assert m.total_bytes("server->client") == 1460 + 1460 + 500 + 900
        assert m.total_bytes("client->server") == 100

    def test_total_bytes_windowed(self):
        m = trace()
        assert m.total_bytes("server->client", start=0.0, end=1.0) == 3420

    def test_len_and_clear(self):
        m = trace()
        assert len(m) == 6
        m.clear()
        assert len(m) == 0 and m.total_bytes() == 0


class TestTimestamps:
    def test_first_packet_after(self):
        m = trace()
        assert m.first_packet_time("server->client", after=0.2) == 0.30

    def test_last_packet_before(self):
        m = trace()
        assert m.last_packet_time("server->client", before=1.0) == 0.30

    def test_none_when_no_match(self):
        m = trace()
        assert m.first_packet_time("server->client", after=99) is None
        assert m.last_packet_time("client->server", before=-1) is None


class TestSpanLatency:
    def test_page_latency_from_click_to_last_data(self):
        m = trace()
        # First page: click at 0, last data of its burst at 0.30.
        assert m.span_latency(0.0, end=1.0) == 0.30

    def test_second_page(self):
        m = trace()
        lat = m.span_latency(2.0)
        assert abs(lat - 0.2) < 1e-9

    def test_none_when_no_response(self):
        m = trace()
        assert m.span_latency(5.0) is None

    def test_marks(self):
        m = trace()
        m.mark(0.0, "page-1")
        m.mark(2.0, "page-2")
        assert m.marks == [(0.0, "page-1"), (2.0, "page-2")]
