"""Tests for the packet monitor and slow-motion analysis helpers."""

import random

from repro.net import PacketMonitor, RollingRateEstimator


def trace():
    m = PacketMonitor()
    m.record(0.00, "client->server", 50)   # click
    m.record(0.10, "server->client", 1460)
    m.record(0.15, "server->client", 1460)
    m.record(0.30, "server->client", 500)
    m.record(2.00, "client->server", 50)   # next click
    m.record(2.20, "server->client", 900)
    return m


class TestAccounting:
    def test_total_bytes_all(self):
        assert trace().total_bytes() == 50 + 1460 + 1460 + 500 + 50 + 900

    def test_total_bytes_by_direction(self):
        m = trace()
        assert m.total_bytes("server->client") == 1460 + 1460 + 500 + 900
        assert m.total_bytes("client->server") == 100

    def test_total_bytes_windowed(self):
        m = trace()
        assert m.total_bytes("server->client", start=0.0, end=1.0) == 3420

    def test_len_and_clear(self):
        m = trace()
        assert len(m) == 6
        m.clear()
        assert len(m) == 0 and m.total_bytes() == 0


class TestTimestamps:
    def test_first_packet_after(self):
        m = trace()
        assert m.first_packet_time("server->client", after=0.2) == 0.30

    def test_last_packet_before(self):
        m = trace()
        assert m.last_packet_time("server->client", before=1.0) == 0.30

    def test_none_when_no_match(self):
        m = trace()
        assert m.first_packet_time("server->client", after=99) is None
        assert m.last_packet_time("client->server", before=-1) is None


class TestSpanLatency:
    def test_page_latency_from_click_to_last_data(self):
        m = trace()
        # First page: click at 0, last data of its burst at 0.30.
        assert m.span_latency(0.0, end=1.0) == 0.30

    def test_second_page(self):
        m = trace()
        lat = m.span_latency(2.0)
        assert abs(lat - 0.2) < 1e-9

    def test_none_when_no_response(self):
        m = trace()
        assert m.span_latency(5.0) is None

    def test_marks(self):
        m = trace()
        m.mark(0.0, "page-1")
        m.mark(2.0, "page-2")
        assert m.marks == [(0.0, "page-1"), (2.0, "page-2")]


# -- the naive scans the bisect indexes must stay byte-identical with ------

def naive_total(m, direction=None, start=float("-inf"), end=float("inf")):
    return sum(r.size for r in m.records
               if (direction is None or r.direction == direction)
               and start <= r.time <= end)


def naive_first(m, direction=None, after=float("-inf")):
    for r in m.records:
        if (direction is None or r.direction == direction) \
                and r.time >= after:
            return r.time
    return None


def naive_last(m, direction=None, before=float("inf")):
    result = None
    for r in m.records:
        if (direction is None or r.direction == direction) \
                and r.time <= before:
            result = r.time
    return result


def random_trace(seed=0, n=400):
    """A seeded time-ordered trace with duplicate timestamps and both
    directions, as the transport produces."""
    rng = random.Random(seed)
    m = PacketMonitor()
    t = 0.0
    for _ in range(n):
        if rng.random() > 0.3:  # duplicates exercise the tie handling
            t += rng.random() * 0.05
        direction = rng.choice(["server->client", "client->server"])
        m.record(t, direction, rng.randrange(1, 1500))
        if rng.random() < 0.02:
            m.mark(t, "mark")
    return m


class TestIndexedQueriesMatchNaiveScans:
    DIRECTIONS = (None, "server->client", "client->server", "no-such-dir")

    def probes(self, m):
        times = [r.time for r in m.records]
        edges = [float("-inf"), 0.0, times[len(times) // 2],
                 times[len(times) // 2] + 1e-9, times[-1], float("inf")]
        return [(a, b) for a in edges for b in edges]

    def test_total_bytes(self):
        m = random_trace(seed=1)
        for d in self.DIRECTIONS:
            for start, end in self.probes(m):
                assert m.total_bytes(d, start=start, end=end) == \
                    naive_total(m, d, start, end)

    def test_first_and_last(self):
        m = random_trace(seed=2)
        for d in self.DIRECTIONS:
            for after, _ in self.probes(m):
                assert m.first_packet_time(d, after=after) == \
                    naive_first(m, d, after)
                assert m.last_packet_time(d, before=after) == \
                    naive_last(m, d, after)

    def test_out_of_order_records_fall_back_to_scans(self):
        m = random_trace(seed=3, n=50)
        m.record(0.001, "server->client", 99)  # violates time order
        for d in self.DIRECTIONS:
            assert m.total_bytes(d) == naive_total(m, d)
            assert m.first_packet_time(d, after=0.0005) == \
                naive_first(m, d, 0.0005)
            assert m.last_packet_time(d, before=0.002) == \
                naive_last(m, d, 0.002)

    def test_clear_resets_indexes(self):
        m = random_trace(seed=4, n=20)
        m.clear()
        m.record(1.0, "server->client", 10)
        assert m.total_bytes("server->client", start=0.5, end=1.5) == 10
        assert m.first_packet_time("server->client", after=0.0) == 1.0


class TestRates:
    def test_rate_matches_windowed_total(self):
        m = random_trace(seed=5)
        now = m.records[-1].time
        for window in (0.1, 0.25, 1.0):
            want = naive_total(m, "server->client",
                               now - window, now) * 8.0 / window
            assert m.rate("server->client", window, now) == want

    def test_rolling_estimator_matches_rate_at_every_poll(self):
        m = PacketMonitor()
        est = RollingRateEstimator(m, "server->client", window=0.25)
        rng = random.Random(6)
        t = 0.0
        for _ in range(300):
            t += rng.random() * 0.03
            m.record(t, rng.choice(["server->client", "client->server"]),
                     rng.randrange(1, 1500))
            assert est.update(t) == m.rate("server->client", 0.25, t)

    def test_rolling_estimator_survives_clear(self):
        m = PacketMonitor()
        est = RollingRateEstimator(m, None, window=1.0)
        m.record(0.5, "server->client", 100)
        assert est.update(1.0) == 800.0
        m.clear()
        m.record(2.0, "server->client", 50)
        assert est.update(2.0) == m.rate(None, 1.0, 2.0) == 400.0
