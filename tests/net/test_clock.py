"""Tests for the simulation clock and event loop."""

import pytest

from repro.net import EventLoop, SimClock


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advances(self):
        c = SimClock()
        c.advance_to(1.5)
        assert c.now == 1.5

    def test_rejects_backwards(self):
        c = SimClock()
        c.advance_to(2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.3, lambda: order.append("c"))
        loop.schedule(0.1, lambda: order.append("a"))
        loop.schedule(0.2, lambda: order.append("b"))
        loop.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.1, lambda: order.append(1))
        loop.schedule(0.1, lambda: order.append(2))
        loop.run_until(1.0)
        assert order == [1, 2]

    def test_clock_tracks_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now))
        loop.run_until(2.0)
        assert seen == [0.5]
        assert loop.now == 2.0

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        hits = []

        def recur(n):
            hits.append(loop.now)
            if n:
                loop.schedule(0.1, lambda: recur(n - 1))

        loop.schedule(0.0, lambda: recur(3))
        loop.run_until_idle()
        assert len(hits) == 4
        assert abs(hits[-1] - 0.3) < 1e-12

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        hits = []
        loop.schedule(5.0, lambda: hits.append(1))
        loop.run_until(1.0)
        assert hits == [] and loop.pending() == 1
        loop.run_until(5.0)
        assert hits == [1]

    def test_schedule_at_absolute(self):
        loop = EventLoop()
        hits = []
        loop.schedule_at(2.0, lambda: hits.append(loop.now))
        loop.run_until_idle()
        assert hits == [2.0]

    def test_rejects_negative_delay_and_past(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1, lambda: None)
        loop.clock.advance_to(1.0)
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_runaway_loop_detected(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            loop.run_until(1.0, max_events=1000)
