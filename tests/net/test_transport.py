"""Tests for the fluid TCP-like transport model."""

import pytest

from repro.net import (Connection, EventLoop, LinkParams, PacketMonitor, MSS)


def make(link, **kw):
    loop = EventLoop()
    mon = PacketMonitor()
    conn = Connection(loop, link, monitor=mon, **kw)
    received = []
    conn.connect(lambda d: received.append((loop.now, d)),
                 lambda d: None)
    return loop, conn, mon, received


FAST = LinkParams("fast", bandwidth_bps=100e6, rtt=0.010)


class TestLinkParams:
    def test_throughput_bandwidth_limited(self):
        link = LinkParams("x", bandwidth_bps=8e6, rtt=0.001,
                          tcp_window=1 << 20)
        assert link.throughput == pytest.approx(1e6)

    def test_throughput_window_limited(self):
        link = LinkParams("x", bandwidth_bps=1e9, rtt=0.1,
                          tcp_window=256 * 1024)
        assert link.throughput == pytest.approx(256 * 1024 / 0.1)

    def test_relay_adds_rtt(self):
        relayed = FAST.with_relay(0.05)
        assert relayed.effective_rtt == pytest.approx(0.060)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams("x", bandwidth_bps=0, rtt=0.1)
        with pytest.raises(ValueError):
            LinkParams("x", bandwidth_bps=1e6, rtt=-1)
        with pytest.raises(ValueError):
            LinkParams("x", bandwidth_bps=1e6, rtt=0, tcp_window=0)


class TestDelivery:
    def test_data_arrives_intact_and_ordered(self):
        loop, conn, mon, received = make(FAST)
        payload = bytes(range(256)) * 20
        conn.down.write(payload)
        loop.run_until_idle()
        assert b"".join(d for _, d in received) == payload

    def test_latency_at_least_half_rtt(self):
        loop, conn, mon, received = make(FAST)
        conn.down.write(b"x" * 100)
        loop.run_until_idle()
        assert received[0][0] >= FAST.rtt / 2

    def test_bandwidth_paces_large_transfers(self):
        link = LinkParams("slow", bandwidth_bps=8e6, rtt=0.002)  # 1 MB/s
        loop, conn, mon, received = make(link)
        conn.down.write(b"x" * 100_000)  # 0.1 s of serialisation
        loop.run_until_idle()
        finish = received[-1][0]
        assert 0.095 <= finish <= 0.15

    def test_window_limits_throughput(self):
        # 1 Gbps link but tiny window over a long RTT.
        link = LinkParams("thin", bandwidth_bps=1e9, rtt=0.1,
                          tcp_window=16 * 1024)
        # Oversize the send buffer so the write itself does not block;
        # the in-flight window is what must pace delivery.
        loop, conn, mon, received = make(link, send_buffer=1 << 20)
        total = 160 * 1024  # ~10 windows -> ~10 RTTs
        conn.down.write(b"x" * total)
        loop.run_until_idle()
        finish = received[-1][0]
        assert finish >= 0.9  # ≥ ~9 round trips

    def test_segments_are_mss_sized(self):
        loop, conn, mon, received = make(FAST)
        conn.down.write(b"x" * (MSS * 3 + 10))
        loop.run_until_idle()
        sizes = [r.size for r in mon.records]
        assert sizes == [MSS, MSS, MSS, 10]


class TestBackPressure:
    def test_writable_bytes_shrinks_and_recovers(self):
        link = LinkParams("slow", bandwidth_bps=1e6, rtt=0.01,
                          tcp_window=8 * 1024)
        loop, conn, mon, received = make(link)
        ep = conn.down
        initial = ep.writable_bytes()
        ep.write(b"x" * initial)
        assert ep.writable_bytes() < MSS  # buffer nearly full
        loop.run_until_idle()
        assert ep.writable_bytes() == initial

    def test_overflow_write_raises(self):
        loop, conn, mon, received = make(FAST)
        room = conn.down.writable_bytes()
        with pytest.raises(BlockingIOError):
            conn.down.write(b"x" * (room + 1))

    def test_duplex_directions_independent(self):
        loop = EventLoop()
        conn = Connection(loop, FAST)
        down, up = [], []
        conn.connect(lambda d: down.append(d), lambda d: up.append(d))
        conn.down.write(b"server data")
        conn.up.write(b"client data")
        loop.run_until_idle()
        assert b"".join(down) == b"server data"
        assert b"".join(up) == b"client data"

    def test_idle_reflects_queues(self):
        loop, conn, mon, received = make(FAST)
        assert conn.idle()
        conn.down.write(b"x" * 10)
        assert not conn.idle()
        loop.run_until_idle()
        assert conn.idle()
