"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.pages == 8 and args.frames == 120

    def test_demo_network_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--network", "dialup"])


class TestSites:
    def test_prints_table(self, capsys):
        assert main(["sites"]) == 0
        out = capsys.readouterr().out
        assert "Seoul, Korea" in out
        assert "256 KB" in out


class TestDemo:
    def test_demo_runs_pixel_exact(self, capsys):
        assert main(["demo", "--width", "200", "--height", "160"]) == 0
        out = capsys.readouterr().out
        assert "pixel-exact client : True" in out
        assert "SFILL" in out


class TestTrace:
    def test_record_then_show(self, tmp_path, capsys):
        path = str(tmp_path / "s.trace")
        assert main(["trace", "record", path]) == 0
        assert main(["trace", "show", path]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert "sfill" in out


class TestFiguresFilter:
    def test_unknown_filter_errors(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2


class TestFiguresSubcommand:
    def test_single_figure_micro_scale(self, capsys):
        # fig4 at the smallest scale: exercises the whole path quickly.
        assert main(["figures", "--only", "fig4", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Seoul, Korea" in out
