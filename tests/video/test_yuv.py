"""Tests for YUV conversion and the YV12 wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video import yuv


def random_rgb(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)


class TestFrameSize:
    def test_yv12_is_12_bits_per_pixel(self):
        assert yuv.yv12_frame_size(352, 240) == 352 * 240 * 3 // 2

    def test_rejects_odd_dimensions(self):
        with pytest.raises(ValueError):
            yuv.yv12_frame_size(3, 4)
        with pytest.raises(ValueError):
            yuv.yv12_frame_size(4, 5)


class TestConversion:
    def test_grey_roundtrip_is_tight(self):
        rgb = np.full((8, 8, 3), 100, dtype=np.uint8)
        out = yuv.yv12_to_rgb(*yuv.rgb_to_yv12(rgb))
        assert np.max(np.abs(out.astype(int) - 100)) <= 2

    def test_primaries_roundtrip(self):
        for color in [(255, 0, 0), (0, 255, 0), (0, 0, 255), (255, 255, 255)]:
            rgb = np.zeros((4, 4, 3), dtype=np.uint8)
            rgb[:, :] = color
            out = yuv.yv12_to_rgb(*yuv.rgb_to_yv12(rgb))
            assert np.max(np.abs(out.astype(int) - np.array(color))) <= 4

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_error_bounded(self, seed):
        """Chroma subsampling loses detail but flat blocks survive."""
        rng = np.random.default_rng(seed)
        # Build a frame of flat 2x2 blocks, matching the subsample grid.
        small = rng.integers(0, 256, size=(4, 4, 3), dtype=np.uint8)
        rgb = np.repeat(np.repeat(small, 2, 0), 2, 1)
        out = yuv.yv12_to_rgb(*yuv.rgb_to_yv12(rgb))
        assert np.max(np.abs(out.astype(int) - rgb.astype(int))) <= 6

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            yuv.rgb_to_yv12(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            yuv.rgb_to_yv12(np.zeros((5, 4, 3), dtype=np.uint8))


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        rgb = random_rgb(16, 12)
        y, v, u = yuv.rgb_to_yv12(rgb)
        data = yuv.pack_yv12(y, v, u)
        assert len(data) == yuv.yv12_frame_size(16, 12)
        y2, v2, u2 = yuv.unpack_yv12(data, 16, 12)
        assert np.array_equal(y, y2)
        assert np.array_equal(v, v2)
        assert np.array_equal(u, u2)

    def test_unpack_validates_length(self):
        with pytest.raises(ValueError):
            yuv.unpack_yv12(b"\x00" * 10, 16, 12)


class TestScaling:
    def test_identity_scale(self):
        rgb = random_rgb(8, 6)
        assert np.array_equal(yuv.scale_rgb(rgb, 8, 6), rgb)

    def test_upscale_dimensions(self):
        rgb = random_rgb(8, 6)
        out = yuv.scale_rgb(rgb, 32, 24)
        assert out.shape == (24, 32, 3)

    def test_downscale_dimensions(self):
        rgb = random_rgb(32, 24)
        out = yuv.scale_rgb(rgb, 8, 6)
        assert out.shape == (6, 8, 3)

    def test_solid_frame_scales_to_solid(self):
        rgb = np.full((6, 8, 3), 77, dtype=np.uint8)
        out = yuv.scale_rgb(rgb, 20, 14)
        assert np.all(out == 77)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            yuv.scale_rgb(random_rgb(4, 4), 0, 4)
