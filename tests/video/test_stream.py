"""Tests for the synthetic video clip source."""

import numpy as np
import pytest

from repro.video.stream import BENCHMARK_CLIP, SyntheticVideoClip


class TestClipParameters:
    def test_benchmark_clip_matches_paper(self):
        clip = BENCHMARK_CLIP()
        assert (clip.width, clip.height) == (352, 240)
        assert clip.fps == 24.0
        assert clip.duration == 34.75
        assert clip.frame_count == 834

    def test_frame_bytes_is_12bpp(self):
        clip = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        assert clip.frame_bytes == 32 * 16 * 3 // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticVideoClip(width=31, height=16)
        with pytest.raises(ValueError):
            SyntheticVideoClip(fps=0)


class TestFrames:
    def test_deterministic(self):
        a = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        b = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        assert np.array_equal(a.rgb_frame(3), b.rgb_frame(3))
        assert a.yv12_frame(3) == b.yv12_frame(3)

    def test_consecutive_frames_differ(self):
        clip = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        assert not np.array_equal(clip.rgb_frame(0), clip.rgb_frame(1))

    def test_frames_are_poorly_compressible(self):
        """Decoded video should defeat RLE/zlib like real content."""
        import zlib

        clip = SyntheticVideoClip(width=64, height=32, fps=10, duration=1)
        data = clip.yv12_frame(0)
        assert len(zlib.compress(data, 6)) > len(data) * 0.5

    def test_iterator_yields_timed_frames(self):
        clip = SyntheticVideoClip(width=32, height=16, fps=10, duration=0.5)
        frames = list(clip.frames())
        assert len(frames) == 5
        times = [t for t, _ in frames]
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
        assert all(len(d) == clip.frame_bytes for _, d in frames)

    def test_iterator_limit(self):
        clip = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        assert len(list(clip.frames(limit=3))) == 3

    def test_out_of_range_frame(self):
        clip = SyntheticVideoClip(width=32, height=16, fps=10, duration=1)
        with pytest.raises(IndexError):
            clip.rgb_frame(10)
        with pytest.raises(IndexError):
            clip.rgb_frame(-1)
