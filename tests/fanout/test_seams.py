"""Hypothesis property suite for tile-wall seam exactness.

Satellite of the fan-out PR: for random command streams over random
wall partitions, clipping each command per-tile through the session
scaler and reassembling the tiles must reproduce the single
framebuffer byte-for-byte.  Seam bugs (off-by-one clips, rounding at
non-divisible grid edges, copies straddling tiles) all surface here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fanout import TileWall
from repro.core.resize import DisplayScaler
from repro.display import Framebuffer
from repro.protocol.commands import (CopyCommand, RawCommand, SFillCommand)
from repro.region import Rect


def _rects(w, h):
    return st.tuples(
        st.integers(0, w - 1), st.integers(0, h - 1)).flatmap(
            lambda origin: st.builds(
                Rect, st.just(origin[0]), st.just(origin[1]),
                st.integers(1, w - origin[0]),
                st.integers(1, h - origin[1])))


def _commands(w, h):
    rects = _rects(w, h)
    colors = st.tuples(*[st.integers(0, 255)] * 3).map(
        lambda c: c + (255,))
    fills = st.builds(SFillCommand, rects, colors)
    raws = st.tuples(rects, st.integers(0, 2 ** 31 - 1)).map(
        lambda ra: RawCommand(
            ra[0],
            np.random.default_rng(ra[1]).integers(
                0, 256, (ra[0].height, ra[0].width, 4), dtype=np.uint8),
            compress=False))
    copies = st.tuples(rects, st.integers(0, w - 1),
                       st.integers(0, h - 1)).map(
        lambda rc: CopyCommand(
            min(rc[1], w - rc[0].width),
            min(rc[2], h - rc[0].height),
            rc[0]))
    return st.one_of(fills, raws, copies)


def _wall_case():
    return st.tuples(
        st.integers(16, 128), st.integers(16, 96),
        st.integers(1, 5), st.integers(1, 4)).flatmap(
            lambda case: st.tuples(
                st.just(case),
                st.lists(_commands(case[0], case[1]), min_size=1,
                         max_size=8)))


class TestTileSeams:

    def test_grid_partitions_exactly(self):
        for (w, h, cols, rows) in ((96, 64, 3, 2), (97, 63, 5, 4),
                                   (16, 16, 5, 4), (128, 96, 1, 1)):
            tiles = TileWall.grid(w, h, cols, rows)
            assert len(tiles) == cols * rows
            covered = np.zeros((h, w), dtype=np.uint8)
            for t in tiles:
                assert not t.empty
                covered[t.y:t.y + t.height, t.x:t.x + t.width] += 1
            assert covered.min() == 1 and covered.max() == 1

    @settings(max_examples=60, deadline=None)
    @given(case=_wall_case())
    def test_reassembled_wall_is_byte_identical(self, case):
        (w, h, cols, rows), commands = case
        tiles = TileWall.grid(w, h, cols, rows)
        wall = Framebuffer(w, h)
        scalers = [DisplayScaler((w, h), (t.width, t.height), view_rect=t)
                   for t in tiles]
        tile_fbs = [Framebuffer(t.width, t.height) for t in tiles]

        for cmd in commands:
            # Server ordering: the screen framebuffer is updated before
            # the command is submitted, so COPY materialisation reads
            # post-copy content.
            cmd.apply(wall)
            for scaler, fb in zip(scalers, tile_fbs):
                for part in scaler.scale_command(
                        cmd, read_back=wall.read_pixels):
                    part.apply(fb)

        stitched = np.zeros((h, w, 4), dtype=np.uint8)
        for t, fb in zip(tiles, tile_fbs):
            stitched[t.y:t.y + t.height, t.x:t.x + t.width] = fb.data
        assert np.array_equal(stitched, wall.data), \
            "tile reassembly diverged from the single framebuffer"

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2 ** 31 - 1))
    def test_copy_straddling_seams_materialises(self, seed):
        """A COPY whose source crosses a tile boundary cannot be
        replayed from the tile's own pixels; the scaler must fall back
        to RAW and stay byte-exact."""
        rng = np.random.default_rng(seed)
        w, h = 64, 48
        wall = Framebuffer(w, h)
        wall.put_pixels(Rect(0, 0, w, h), rng.integers(
            0, 256, (h, w, 4), dtype=np.uint8))
        tiles = TileWall.grid(w, h, 2, 2)
        # Source in the top-left quadrant, destination bottom-right.
        copy = CopyCommand(4, 4, Rect(w // 2 + 2, h // 2 + 2, 16, 12))
        copy.apply(wall)
        scaler = DisplayScaler((w, h), (tiles[3].width, tiles[3].height),
                               view_rect=tiles[3])
        fb = Framebuffer(tiles[3].width, tiles[3].height)
        fb.put_pixels(
            Rect(0, 0, fb.width, fb.height),
            wall.read_pixels(tiles[3]))
        # Re-apply through the scaler onto a stale tile to prove the
        # materialised RAW carries the correct bytes by itself.
        parts = scaler.scale_command(copy, read_back=wall.read_pixels)
        assert parts and all(isinstance(p, RawCommand) for p in parts)
        for part in parts:
            part.apply(fb)
        t = tiles[3]
        assert np.array_equal(fb.data, wall.data[t.y:t.y + t.height,
                                                 t.x:t.x + t.width])
