"""Cluster migration × fan-out: subscriptions survive the move.

Satellite of the fan-out PR: a *subscribed* session migrated between
shards mid-workload re-enrolls in the target shard's broadcast plane
(mirror or tile, per the frozen flags) and ends pixel-identical to an
uninterrupted unicast twin.

``make chaos`` runs this file at THINC_CHAOS_SEED 11, 23 and 47 with
the queue sanitizer armed, layering a random fault schedule on top of
the migration exactly as the cluster suite does.
"""

import os

import numpy as np

from repro.net.faults import FaultPlan
from repro.protocol import wire

from tests.helpers import assert_pixel_identical, make_shard_rig

SETTLE = 12.0

CHAOS_SEED = int(os.environ.get("THINC_CHAOS_SEED", "0"))


def _subscribe_and_migrate(loop, coord, rcs, mode=wire.SUBSCRIBE_MIRROR,
                           cols=0, rows=0, index=0, settle=SETTLE):
    """Attach, subscribe the first client, migrate it at t=1.0."""
    loop.run_until(0.6)
    token = rcs[0].token
    assert token, "client never attached"
    rcs[0].client.request_subscribe(mode, cols, rows, index)
    loop.run_until(1.0)
    source = coord.route_token(token)
    assert coord.shards[source].fanout.stats["subscribed"] >= 1
    target = (source + 1) % len(coord.shards)
    successor = coord.migrate(token, target)
    loop.run_until(settle)
    return token, source, target, successor


class TestMigrationWithFanout:

    def test_mirror_subscription_survives_migration(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=2)
        token, source, target, successor = _subscribe_and_migrate(
            loop, coord, rcs)
        # The successor is enrolled in the *target* shard's plane.
        assert coord.shards[target].fanout.is_subscriber(successor)
        assert not coord.shards[target].fanout.is_tile(successor)
        # Pixel-identical to the target shard's live screen and to the
        # unicast twin that never moved (mirrored workloads).
        assert_pixel_identical(rcs[0].client, screens[target])
        assert_pixel_identical(rcs[1].client, screens[
            coord.route_token(rcs[1].token)])
        assert np.array_equal(rcs[0].client.fb.data, rcs[1].client.fb.data)

    def test_tile_subscription_survives_migration(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=1)
        token, source, target, successor = _subscribe_and_migrate(
            loop, coord, rcs, mode=wire.SUBSCRIBE_TILE,
            cols=3, rows=2, index=4, settle=SETTLE + 4.0)
        fanout = coord.shards[target].fanout
        assert fanout.is_subscriber(successor)
        assert fanout.is_tile(successor)
        tile = fanout.tile_of(successor)
        assert tile == successor.scaler.view
        # The tile client's framebuffer equals its crop of the target
        # shard's screen.
        fb = rcs[0].client.fb
        assert fb.data.shape == (tile.height, tile.width, 4)
        assert np.array_equal(
            fb.data,
            screens[target].screen.fb.data[tile.y:tile.y + tile.height,
                                           tile.x:tile.x + tile.width])

    def test_source_shard_forgets_the_subscriber(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=1)
        token, source, target, successor = _subscribe_and_migrate(
            loop, coord, rcs)
        src_fanout = coord.shards[source].fanout
        assert src_fanout.stats["unsubscribed"] == \
            src_fanout.stats["subscribed"]
        assert len(src_fanout.subscribers()) == 0
        assert coord.shards[source].plane.pinned_entries() == 0


class TestMigrationFanoutUnderChaos:
    """Chaos twin: subscribed + migrated + faulted vs untouched."""

    def test_subscribed_migration_under_chaos_matches_twin(self):
        plan = FaultPlan.random(seed=1000 + CHAOS_SEED, horizon=2.0)
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=2, plan=plan)
        # Attachment itself may be delayed well past the fault horizon
        # by the schedule (partitions + flap-damped redial backoff).
        while not rcs[0].token and loop.now < 12.0:
            loop.run_until(loop.now + 0.5)
        token = rcs[0].token
        assert token, "client never attached"

        def resubscribe():
            # Any individual SUBSCRIBE may be eaten by a fault event,
            # so re-send it periodically until past the fault horizon
            # (re-subscribing in the same mode is idempotent).  A send
            # on a mid-redial connection is itself a fault casualty.
            try:
                rcs[0].client.request_subscribe()
            except Exception:
                pass

        for delay in (0.0, 0.5, 1.0, 1.5, 2.0):
            loop.schedule_at(loop.now + 0.01 + delay, resubscribe)
        loop.run_until(loop.now + 2.6)
        source = coord.route_token(token)
        assert coord.shards[source].fanout.stats["subscribed"] >= 1
        target = (source + 1) % len(coord.shards)
        successor = coord.migrate(token, target)
        loop.run_until(loop.now + SETTLE + 4.0)
        assert coord.route_token(token) == target
        live = coord.shards[target].resilience.guards[token].session
        assert coord.shards[target].fanout.is_subscriber(live)
        assert_pixel_identical(rcs[0].client, screens[target])
        assert np.array_equal(rcs[0].client.fb.data, rcs[1].client.fb.data)
        for shard in coord.shards:
            assert shard.plane.pinned_entries() == 0
