"""Rig builders shared by the fan-out differential harness.

The harness renders each workload three ways — unicast per client,
broadcast, and tile-wall-reassembled — and asserts pixel identity, so
the builders here keep geometry, link and workload parameters in one
place where the three renderings cannot drift apart.
"""

import numpy as np

from repro.core import THINCClient, THINCServer
from repro.core.governor import ServerBudget
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.protocol import wire

from tests.helpers import scripted_workload  # noqa: F401  (re-export)


def make_broadcast_rig(subscribers, width=96, height=64, link=LAN_DESKTOP,
                       tile_grid=None, subscribe=True, send_buffer=None,
                       **server_kw):
    """One server with *subscribers* fan-out clients attached.

    Mirror mode by default; pass ``tile_grid=(cols, rows)`` to assign
    client *i* tile ``i % (cols*rows)``.  Set ``subscribe=False`` to
    leave the clients as plain unicast sessions (the differential
    twin).  Returns ``(loop, mon, server, ws, clients)``.
    """
    loop = EventLoop()
    mon = PacketMonitor()
    # Fan-out exists to go past the unicast session budget, so admit
    # at least the requested wall of subscribers (plus twin headroom).
    server_kw.setdefault(
        "server_budget",
        ServerBudget(max_sessions=max(64, 2 * subscribers + 8)))
    server = THINCServer(loop, width, height, **server_kw)
    ws = WindowServer(width, height, driver=server.driver, clock=loop.clock)
    clients = []
    for i in range(subscribers):
        conn = Connection(loop, link, monitor=mon, send_buffer=send_buffer)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        if subscribe:
            if tile_grid is not None:
                cols, rows = tile_grid
                client.request_subscribe(wire.SUBSCRIBE_TILE, cols, rows,
                                         i % (cols * rows))
            else:
                client.request_subscribe()
        clients.append(client)
    # Let the SUBSCRIBE frames arrive before any workload draws.
    loop.run_until(0.01)
    return loop, mon, server, ws, clients


def reassemble_wall(clients, width, height):
    """Stitch tile subscribers' framebuffers back into one wall image.

    Asserts every wall pixel is covered exactly once — a seam gap or
    overlap is a harness bug worth failing loudly on.
    """
    wall = np.zeros((height, width, 4), dtype=np.uint8)
    covered = np.zeros((height, width), dtype=np.uint8)
    for client in clients:
        assign = client.tile_assignment
        assert assign is not None, "tile client never got TILE_ASSIGN"
        r = assign.rect
        assert (assign.wall_w, assign.wall_h) == (width, height)
        wall[r.y:r.y + r.height, r.x:r.x + r.width] = client.fb.data
        covered[r.y:r.y + r.height, r.x:r.x + r.width] += 1
    assert int(covered.min()) == 1 and int(covered.max()) == 1, \
        "tile assignments do not partition the wall exactly once"
    return wall
