"""Hypothesis properties over random fan-out schedules.

Random interleavings of draws, subscribe/mode churn, viewport resizes
and PR 4 fault plans, with the invariants that must hold at
quiescence regardless of the schedule:

* a stable mirror subscriber is pixel-identical to the screen;
* a faulted (reconnecting) subscriber converges after resync;
* a tile subscriber's framebuffer equals its tile crop;
* every relay pin has been released and the prepare cache is in
  bounds (the sanitizer invariant);
* the plane's subscribe/unsubscribe accounting matches membership.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import sanitizer
from repro.core import THINCClient
from repro.net import Connection, LAN_DESKTOP
from repro.net.faults import FaultPlan
from repro.protocol import wire
from repro.region import Rect
from tests.helpers import assert_pixel_identical, make_resilient_rig

W, H = 64, 48
SETTLE = 12.0


def _events(data):
    """Draw a random schedule of (time, op, args) events."""
    n = data.draw(st.integers(4, 12), label="events")
    out = []
    for i in range(n):
        t = 0.1 + i * (1.4 / n)
        op = data.draw(st.sampled_from(
            ("fill", "image", "mode", "resize")), label=f"op{i}")
        out.append((t, op))
    return out


class TestRandomSchedules:

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(data=st.data())
    def test_schedule_invariants_at_quiescence(self, data):
        chaos = data.draw(st.integers(0, 2 ** 16), label="chaos_seed")
        plan = FaultPlan.random(seed=1000 + chaos, horizon=1.5)
        loop, dial, server, ws, rc = make_resilient_rig(
            width=W, height=H, plan=plan)
        rng = np.random.default_rng(chaos)

        # A stable mirror subscriber on a clean link, and a churn
        # client that hops between mirror and tile modes / viewports.
        plain = []
        for _ in range(2):
            conn = Connection(loop, LAN_DESKTOP)
            server.attach_client(conn)
            plain.append(THINCClient(loop, conn))
        stable, churn = plain
        stable.request_subscribe()
        churn.request_subscribe()
        # The faulted resilient client subscribes over its dialled
        # connection once attached.
        loop.schedule_at(0.4, lambda: rc.client.request_subscribe())

        def fire(op):
            x = int(rng.integers(0, W - 8))
            y = int(rng.integers(0, H - 8))
            w = int(rng.integers(4, min(24, W - x)))
            h = int(rng.integers(4, min(24, H - y)))
            if op == "fill":
                color = tuple(int(v) for v in rng.integers(0, 256, 3))
                ws.fill_rect(ws.screen, Rect(x, y, w, h), color + (255,))
            elif op == "image":
                img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8)
                ws.put_image(ws.screen, Rect(x, y, w, h), img)
            elif op == "mode":
                if rng.integers(0, 2):
                    cols = int(rng.integers(1, 4))
                    rows = int(rng.integers(1, 4))
                    index = int(rng.integers(0, cols * rows))
                    churn.request_subscribe(wire.SUBSCRIBE_TILE,
                                            cols, rows, index)
                else:
                    churn.request_subscribe(wire.SUBSCRIBE_MIRROR)
            elif op == "resize":
                # Resizing the *stable* subscriber would break the
                # pixel-compare; churn takes the geometry abuse.
                churn.request_resize(int(rng.integers(16, 2 * W)),
                                     int(rng.integers(16, 2 * H)))

        for t, op in _events(data):
            loop.schedule_at(t, lambda op=op: fire(op))
        loop.run_until(SETTLE)

        # -- invariants -------------------------------------------------
        assert_pixel_identical(stable, ws)
        assert_pixel_identical(rc.client, ws)

        fanout = server.fanout
        stats = fanout.stats
        assert stats["subscribed"] - stats["unsubscribed"] == len(
            fanout.subscribers())
        assert server.plane.pinned_entries() == 0
        sanitizer.check_prepare_pins(server.plane)

        churn_session = next(
            (s for s in server.sessions
             if fanout.is_tile(s) and s.connection is not None
             and fanout.is_subscriber(s)), None)
        if churn_session is not None and churn.tile_assignment and \
                churn.fb.data.shape[:2] == (
                    churn_session.scaler.view.height,
                    churn_session.scaler.view.width):
            r = churn_session.scaler.view
            assert np.array_equal(
                churn.fb.data,
                ws.screen.fb.data[r.y:r.y + r.height, r.x:r.x + r.width])
