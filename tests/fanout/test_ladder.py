"""Slow-subscriber ladder and prepare-cache pinning.

Satellite of the fan-out PR: a congested subscriber climbs
coalesce-to-refresh → drop-to-keyframe → evict, and every relay-held
entry keeps its prepare-cache slot pinned past LRU eviction (audited
by the sanitizer invariant) until delivered or dropped.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.core.fanout import FanoutConfig
from repro.net import LAN_DESKTOP
from repro.region import Rect
from tests.fanout.rig import make_broadcast_rig
from tests.helpers import assert_pixel_identical

#: Slow enough that one screen refresh takes seconds of simulated
#: time, so relay queues actually back up behind the buffer bound.
TRICKLE = replace(LAN_DESKTOP, bandwidth_bps=64_000)


@pytest.fixture
def armed_sanitizer():
    was = sanitizer.enabled()
    sanitizer.enable()
    try:
        yield
    finally:
        if not was:
            sanitizer.disable()


def _congest(loop, ws, rng, until):
    """Park an incompressible full-screen image in the subscriber's
    buffer: run until it has cleared the prepare stage but cannot clear
    the trickle link, so ``pending_bytes`` stays positive for seconds
    of simulated time."""
    W, H = ws.screen.bounds.width, ws.screen.bounds.height
    img = rng.integers(0, 256, (H, W, 4), dtype=np.uint8)
    ws.put_image(ws.screen, Rect(0, 0, W, H), img)
    loop.run_until(until)


def _burst(ws, rng, count, size=32):
    """Distinct full-alpha random images: large, uncacheable payloads,
    submitted back-to-back in zero simulated time."""
    W, H = ws.screen.bounds.width, ws.screen.bounds.height
    for _ in range(count):
        x = int(rng.integers(0, W - size))
        y = int(rng.integers(0, H - size))
        img = rng.integers(0, 256, (size, size, 4), dtype=np.uint8)
        ws.put_image(ws.screen, Rect(x, y, size, size), img)


class TestPrepareCachePins:

    def test_pinned_entries_survive_lru_eviction(self, armed_sanitizer):
        loop, mon, server, ws, clients = make_broadcast_rig(
            1, link=TRICKLE, send_buffer=4096, prepare_cache_entries=4,
            fanout=FanoutConfig(subscriber_backlog_bytes=0,
                                relay_bytes=1 << 30))
        rng = np.random.default_rng(3)
        _congest(loop, ws, rng, until=0.2)
        # With the buffer congested and a zero backlog allowance, every
        # subsequent command is relay-held and pinned.  12 distinct
        # draws versus a 4-entry cache: only pins keep them alive.
        _burst(ws, rng, 12)
        session = server.sessions[0]
        # Translation may band one image into several commands; the
        # structural facts are: everything is held, every held entry
        # is pinned, and the pins carry the cache past its LRU bound.
        depth = server.fanout.relay_depth(session)
        assert depth >= 12
        assert server.plane.pinned_entries() == depth
        assert server.plane.cache_size() > server.plane.cache_entries
        # The sanitizer invariant holds while over-bound (it ran on
        # every relay mutation above; this is the explicit audit).
        sanitizer.check_prepare_pins(server.plane)

        # Drain the trickle link: pins must be released and the cache
        # must fall back under its configured bound.
        loop.run_until(60.0)
        assert server.fanout.relay_depth(session) == 0
        assert server.plane.pinned_entries() == 0
        assert server.plane.cache_size() <= server.plane.cache_entries
        assert_pixel_identical(clients[0], ws)

    def test_unsubscribe_releases_pins(self, armed_sanitizer):
        loop, mon, server, ws, clients = make_broadcast_rig(
            1, link=TRICKLE, send_buffer=4096,
            fanout=FanoutConfig(subscriber_backlog_bytes=0,
                                relay_bytes=1 << 30))
        rng = np.random.default_rng(4)
        _congest(loop, ws, rng, until=0.2)
        _burst(ws, rng, 8)
        session = server.sessions[0]
        assert server.plane.pinned_entries() == server.fanout.relay_depth(
            session) >= 8
        server.detach_client(session)
        assert server.plane.pinned_entries() == 0
        sanitizer.check_prepare_pins(server.plane)


class TestSlowSubscriberLadder:
    """Bursts of two ~6.6 KiB images against a 9 KiB relay bound: the
    second image of each burst tips the queue over, so each burst fires
    exactly one rung."""

    def _congested_rig(self, cooldown=30.0):
        return make_broadcast_rig(
            1, link=TRICKLE, send_buffer=4096,
            fanout=FanoutConfig(relay_bytes=9000,
                                subscriber_backlog_bytes=0,
                                ladder_cooldown=cooldown))

    def test_ladder_escalates_to_eviction(self):
        loop, mon, server, ws, clients = self._congested_rig()
        rng = np.random.default_rng(5)
        stats = server.fanout.stats
        _congest(loop, ws, rng, until=0.2)
        _burst(ws, rng, 2, size=40)  # rung 1
        assert stats["coalesces"] == 1 and stats["keyframes"] == 0
        _burst(ws, rng, 2, size=40)  # within cooldown: rung 2
        assert stats["keyframes"] == 1 and stats["evictions"] == 0
        # Rung 2 dropped the buffered queue; let its keyframe land in
        # the (still congested) buffer before the final burst.
        loop.run_until(0.4)
        session = server.sessions[0]
        _burst(ws, rng, 2, size=40)  # rung 3: governor eviction
        assert stats["evictions"] == 1
        assert session not in server.sessions
        assert not server.fanout.is_subscriber(session)
        assert server.plane.pinned_entries() == 0

    def test_quiet_subscriber_deescalates(self):
        loop, mon, server, ws, clients = self._congested_rig(cooldown=0.5)
        rng = np.random.default_rng(6)
        stats = server.fanout.stats
        _congest(loop, ws, rng, until=0.2)
        _burst(ws, rng, 2, size=40)
        assert stats["coalesces"] == 1
        # Let the link recover well past the cooldown, then congest
        # again: the ladder restarts at rung 1 instead of escalating.
        loop.run_until(25.0)
        _congest(loop, ws, rng, until=25.2)
        _burst(ws, rng, 2, size=40)
        assert stats["coalesces"] == 2
        assert stats["keyframes"] == 0 and stats["evictions"] == 0

    def test_survivor_is_exact_after_recovery(self):
        """Rungs 1-2 end in refreshes of live content: once congestion
        clears, the survivor converges to the unicast-exact screen."""
        loop, mon, server, ws, clients = self._congested_rig()
        rng = np.random.default_rng(7)
        _congest(loop, ws, rng, until=0.2)
        _burst(ws, rng, 2, size=40)
        _burst(ws, rng, 2, size=40)
        assert server.fanout.stats["keyframes"] == 1
        assert len(server.sessions) == 1  # survived rung 2
        loop.run_until(90.0)
        assert_pixel_identical(clients[0], ws)
