"""Heterogeneous subscriber links: class split, not worst-link punishment.

Satellite of the fan-out PR: with the adaptive encoder on, a LAN
subscriber and a congested 802.11-class subscriber of the same
broadcast must land in *different* (encoding) equivalence classes —
the congested link sheds fidelity, the LAN link keeps lossless — and
once congestion clears, a refresh restores exactness for everyone.
"""

from dataclasses import replace

import numpy as np

from repro.codec import Encoding, LinkPosture
from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PDA_80211G, \
    PacketMonitor
from repro.protocol.commands import RawCommand
from repro.region import Rect
from tests.helpers import assert_pixel_identical

#: An 802.11g PDA squeezed to modem-class throughput (heavy contention).
CONGESTED = replace(PDA_80211G, bandwidth_bps=256_000)

W, H = 64, 48


def _split_rig():
    loop = EventLoop()
    mon = PacketMonitor()
    server = THINCServer(loop, W, H, adaptive_encoding=True)
    ws = WindowServer(W, H, driver=server.driver, clock=loop.clock)
    clients = []
    for link, buf in ((LAN_DESKTOP, None), (CONGESTED, 8192)):
        conn = Connection(loop, link, monitor=mon, send_buffer=buf)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        client.request_subscribe()
        clients.append(client)
    loop.run_until(0.01)
    return loop, server, ws, clients


def _flood(loop, ws, rng, start, end, step=0.05):
    """Photographic full-screen churn: the congested link cannot keep
    up losslessly, the LAN link barely notices."""
    t = start
    while t < end:
        img = rng.integers(0, 256, (H, W, 4), dtype=np.uint8)
        loop.schedule_at(t, lambda img=img: ws.put_image(
            ws.screen, Rect(0, 0, W, H), img))
        t += step


class TestHeterogeneousSubscribers:

    def test_postures_and_classes_split(self):
        loop, server, ws, clients = _split_rig()
        rng = np.random.default_rng(21)
        _flood(loop, ws, rng, 0.05, 1.0)
        loop.run_until(0.8)

        lan, slow = server.sessions
        p_lan = server._session_posture(lan)
        p_slow = server._session_posture(slow)
        assert p_slow is LinkPosture.DEGRADED
        assert p_lan is not LinkPosture.DEGRADED

        # One probe command through the class partitioner: the two
        # subscribers must not share an encoding class, and the
        # degraded class must have shed fidelity (LOSSY), while the
        # LAN class stays exact.
        probe = rng.integers(0, 256, (32, 48, 4), dtype=np.uint8)
        classes = list(server.plane.variants(
            RawCommand(Rect(0, 0, 48, 32), probe), server.sessions))
        assert len(classes) == 2
        by_session = {id(s): v.encoding
                      for members, v in classes for s in members}
        assert by_session[id(slow)] is Encoding.LOSSY
        assert by_session[id(lan)] is not Encoding.LOSSY

    def test_lan_subscriber_stays_exact_throughout(self):
        """Class split means the LAN peer is never punished with lossy
        payloads for the slow link's sake: at quiescence it is exact
        without any extra refresh."""
        loop, server, ws, clients = _split_rig()
        rng = np.random.default_rng(22)
        _flood(loop, ws, rng, 0.05, 1.0)
        loop.run_until(3.0)
        assert_pixel_identical(clients[0], ws)

    def test_post_refresh_exactness_after_congestion_clears(self):
        loop, server, ws, clients = _split_rig()
        rng = np.random.default_rng(23)
        _flood(loop, ws, rng, 0.05, 1.0)
        loop.run_until(1.0)
        lan, slow = server.sessions
        assert server._session_posture(slow) is LinkPosture.DEGRADED

        # Congestion clears; the degraded client asks for a repaint.
        loop.run_until(20.0)
        clients[1].request_refresh(Rect(0, 0, W, H))
        loop.run_until(40.0)
        assert server._session_posture(slow) is not LinkPosture.DEGRADED
        for client in clients:
            assert_pixel_identical(client, ws)
