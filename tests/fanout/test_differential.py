"""The fan-out differential conformance harness.

Every workload here is rendered three ways — classic unicast, broadcast
fan-out, and a tile wall reassembled from its sub-rectangles — and the
three results must be pixel-identical.  The broadcast plane is allowed
to change *how much work* the server does (prepare once, deliver K
times) but never *what the clients see*.
"""

import numpy as np

from repro.protocol import wire
from tests.fanout.rig import make_broadcast_rig, reassemble_wall
from tests.helpers import assert_pixel_identical, make_rig, scripted_workload

END = 0.6
SETTLE = 2.0


def _unicast_twin(width=96, height=64, seed=7):
    """A plain single-client rig running the same scripted workload."""
    loop, conn, mon, server, ws, client = make_rig(width, height)
    scripted_workload(loop, ws, end=END, seed=seed)
    loop.run_until(END + SETTLE)
    return server, ws, client


class TestBroadcastDifferential:

    def test_hundred_subscriber_broadcast_matches_unicast_twin(self):
        loop, mon, server, ws, clients = make_broadcast_rig(100)
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)

        tserver, tws, tclient = _unicast_twin()
        assert ws.screen.fb.same_as(tws.screen.fb), \
            "twin screens diverged: workloads are not comparable"

        assert server.stats["fanout_subscribed"] == 100
        for client in clients:
            assert_pixel_identical(client, ws)
            assert client.fb.same_as(tclient.fb)

    def test_broadcast_prepares_once_per_class(self):
        """100 subscribers share one viewport class: every post-subscribe
        draw is prepared exactly once and served from cache 99 times."""
        loop, mon, server, ws, clients = make_broadcast_rig(100)
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)

        stats = server.stats
        draws = stats["fanout_commands_relayed"] / 100
        assert draws >= 10  # the workload actually ran through the plane
        # Hits dominate: ~99 of every 100 deliveries reuse the prepared
        # payload (the initial per-client attach refreshes are the only
        # unicast misses).
        assert stats["prepare_cache_hits"] >= 99 * (draws - 1)
        assert stats["prepare_cache_hits"] > 10 * stats[
            "prepare_cache_misses"]

    def test_subscriber_cpu_is_shared_not_multiplied(self):
        """Server prepare CPU for 100 subscribers stays within 3x of the
        single-client twin (the bench asserts this under measurement;
        here it is a functional invariant of the differential pair)."""
        loop, mon, server, ws, clients = make_broadcast_rig(100)
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)
        tserver, tws, tclient = _unicast_twin()
        assert server.stats["cpu_time"] < 3 * max(
            tserver.stats["cpu_time"], 1e-9)


class TestTileWallDifferential:

    def test_3x2_wall_reassembles_to_unicast_twin(self):
        loop, mon, server, ws, clients = make_broadcast_rig(
            6, tile_grid=(3, 2))
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)

        wall = reassemble_wall(clients, 96, 64)
        assert np.array_equal(wall, ws.screen.fb.data), \
            "reassembled tile wall diverged from the server screen"

        tserver, tws, tclient = _unicast_twin()
        assert np.array_equal(wall, tclient.fb.data), \
            "reassembled tile wall diverged from the unicast twin"

    def test_tile_clients_view_only_their_tile(self):
        loop, mon, server, ws, clients = make_broadcast_rig(
            6, tile_grid=(3, 2))
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)
        screen = ws.screen.fb.data
        for client in clients:
            r = client.tile_assignment.rect
            assert client.fb.data.shape == (r.height, r.width, 4)
            assert np.array_equal(
                client.fb.data,
                screen[r.y:r.y + r.height, r.x:r.x + r.width])

    def test_mirror_tile_and_unicast_coexist(self):
        """A mirror subscriber, a tile wall, and a plain unicast client
        on one server all converge to the same screen."""
        loop, mon, server, ws, clients = make_broadcast_rig(
            4, tile_grid=(2, 2))
        # Client 4: mirror subscriber; client 5: plain unicast session.
        from repro.core import THINCClient
        from repro.net import Connection, LAN_DESKTOP
        extra = []
        for subscribe in (True, False):
            conn = Connection(loop, LAN_DESKTOP, monitor=mon)
            server.attach_client(conn)
            client = THINCClient(loop, conn)
            if subscribe:
                client.request_subscribe()
            extra.append(client)
        loop.run_until(0.02)
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)

        wall = reassemble_wall(clients, 96, 64)
        assert np.array_equal(wall, ws.screen.fb.data)
        for client in extra:
            assert_pixel_identical(client, ws)

    def test_command_spanning_all_tiles_splits_exactly(self):
        """One full-screen image crosses every tile seam; each tile gets
        byte-exactly its sub-rectangle."""
        from repro.region import Rect
        loop, mon, server, ws, clients = make_broadcast_rig(
            6, tile_grid=(3, 2))
        rng = np.random.default_rng(13)
        img = rng.integers(0, 256, (64, 96, 4), dtype=np.uint8)
        loop.schedule_at(0.05, lambda: ws.put_image(
            ws.screen, Rect(0, 0, 96, 64), img))
        loop.run_until(1.5)
        wall = reassemble_wall(clients, 96, 64)
        assert np.array_equal(wall, ws.screen.fb.data)


class TestSubscribeProtocol:

    def test_unsubscribed_on_detach(self):
        loop, mon, server, ws, clients = make_broadcast_rig(3)
        session = server.sessions[0]
        server.detach_client(session)
        assert not server.fanout.is_subscriber(session)
        assert server.fanout.stats["unsubscribed"] == 1
        # The remaining subscribers still render exactly.
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)
        for client in clients[1:]:
            assert_pixel_identical(client, ws)

    def test_resubscribe_switches_mode(self):
        """A mirror subscriber may re-subscribe as a tile and back."""
        loop, mon, server, ws, clients = make_broadcast_rig(
            1, tile_grid=(2, 2))
        client = clients[0]
        session = server.sessions[0]
        assert server.fanout.is_tile(session)
        scripted_workload(loop, ws, end=END)
        loop.run_until(END + SETTLE)
        r = client.tile_assignment.rect
        assert np.array_equal(
            client.fb.data,
            ws.screen.fb.data[r.y:r.y + r.height, r.x:r.x + r.width])
        client.request_subscribe(wire.SUBSCRIBE_MIRROR)
        loop.run_until(END + SETTLE + 2.0)
        assert not server.fanout.is_tile(session)
        assert_pixel_identical(client, ws)
