"""Tests for the baseline systems' encoders."""

import numpy as np

from repro.baselines import (Encoder, GoToMyPCEncoder, SunRayEncoder,
                             VncEncoder, quantize_8bit)
from repro.baselines.sunray import SFILL_WIRE


def flat(w, h, value=200):
    img = np.full((h, w, 4), value, dtype=np.uint8)
    img[..., 3] = 255
    return img


def noise(w, h, seed=0):
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8)
    img[..., 3] = 255
    return img


class TestQuantize:
    def test_8bit_has_at_most_256_colors(self):
        img = noise(64, 64)
        q = quantize_8bit(img)
        colors = np.unique(q.reshape(-1, 4), axis=0)
        assert len(colors) <= 256

    def test_flat_unchanged_in_structure(self):
        q = quantize_8bit(flat(8, 8, 224))
        assert np.all(q[..., 0] == 224)  # 224 is a 3-bit boundary

    def test_does_not_mutate_input(self):
        img = noise(8, 8)
        before = img.copy()
        quantize_8bit(img)
        assert np.array_equal(img, before)


class TestBaseEncoder:
    def test_raw_size(self):
        enc = Encoder()
        img = flat(10, 10)
        assert enc.encode_size(img) == img.nbytes
        assert enc.cpu_cost(img) == 0.0


class TestVncEncoder:
    def test_flat_content_tiny(self):
        enc = VncEncoder()
        assert enc.encode_size(flat(64, 64)) < 200

    def test_noise_capped_near_raw(self):
        enc = VncEncoder()
        img = noise(64, 64)
        size = enc.encode_size(img)
        assert size <= img.nbytes * 1.1

    def test_adaptive_compresses_harder(self):
        lan = VncEncoder(adaptive=False)
        wan = VncEncoder(adaptive=True)
        img = noise(64, 64, seed=1)
        # Structured-but-not-flat content: WAN effort pays off.
        img[:, :32] = flat(32, 64)[:, :]
        assert wan.encode_size(img) <= lan.encode_size(img)

    def test_adaptive_costs_more_cpu(self):
        img = noise(64, 64)
        assert VncEncoder(True).cpu_cost(img) > VncEncoder(False).cpu_cost(img)


class TestSunRayEncoder:
    def test_solid_region_detected_as_fill(self):
        enc = SunRayEncoder()
        assert enc.encode_size(flat(64, 64)) == SFILL_WIRE

    def test_mixed_region_fills_detected_per_tile(self):
        enc = SunRayEncoder()
        img = noise(128, 64, seed=2)
        img[:, :64] = flat(64, 64)[:, :]
        mixed = enc.encode_size(img)
        pure_noise = enc.encode_size(noise(128, 64, seed=3))
        assert mixed < pure_noise * 0.7

    def test_inference_costs_cpu_even_for_fills(self):
        enc = SunRayEncoder()
        assert enc.cpu_cost(flat(64, 64)) > 0

    def test_adaptive_reduces_size_increases_cpu(self):
        img = noise(64, 64, seed=4)
        img[::2] //= 2  # some structure for DEFLATE
        lan, wan = SunRayEncoder(False), SunRayEncoder(True)
        assert wan.encode_size(img) < lan.encode_size(img)
        assert wan.cpu_cost(img) > lan.cpu_cost(img)


class TestGoToMyPCEncoder:
    def test_compresses_below_8bit_raw_on_screen_content(self):
        enc = GoToMyPCEncoder()
        img = noise(64, 64, seed=5)
        img[:, :48] = flat(48, 64)[:, :]  # desktops are mostly flat
        # 8-bit raw would be w*h bytes; heavy DEFLATE beats it easily.
        assert enc.encode_size(img) < 64 * 64 / 2

    def test_noise_costs_at_most_8bit_raw_plus_overhead(self):
        enc = GoToMyPCEncoder()
        img = noise(64, 64, seed=5)
        assert enc.encode_size(img) <= 64 * 64 * 1.05

    def test_cpu_cost_is_heavy(self):
        img = noise(64, 64)
        slow = GoToMyPCEncoder().cpu_cost(img)
        fast = VncEncoder().cpu_cost(img)
        assert slow > 5 * fast
