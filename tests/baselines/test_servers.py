"""Tests for the scrape/forward baseline server machinery."""

import numpy as np

from tests.helpers import RED
from repro.baselines import (BaselineClient, ForwardServer, ScrapeServer,
                             VncEncoder, price_x_command)
from repro.baselines.nx import NXPricer
from repro.baselines.rdp import OrdersPricer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LinkParams, PacketMonitor
from repro.region import Rect

FAST = LinkParams("fast", bandwidth_bps=100e6, rtt=0.002)


def scrape_rig(pull=False, encoder=None, link=FAST, **kw):
    loop = EventLoop()
    mon = PacketMonitor()
    conn = Connection(loop, link, monitor=mon)
    ws = WindowServer(128, 96, clock=loop.clock)
    server = ScrapeServer(loop, conn, ws, encoder or VncEncoder(),
                          pull=pull, **kw)
    client = BaselineClient(loop, conn, pull=pull)
    return loop, mon, ws, server, client


def forward_rig(price, link=FAST, **kw):
    loop = EventLoop()
    mon = PacketMonitor()
    conn = Connection(loop, link, monitor=mon)
    ws = WindowServer(128, 96, clock=loop.clock)
    server = ForwardServer(loop, conn, ws, price=price, **kw)
    client = BaselineClient(loop, conn)
    return loop, mon, ws, server, client


class TestScrapeServer:
    def test_push_delivers_damage(self):
        loop, mon, ws, server, client = scrape_rig(pull=False)
        ws.fill_rect(ws.screen, Rect(0, 0, 32, 32), RED)
        loop.run_until_idle(max_time=5)
        assert client.stats["updates"] >= 1
        assert client.stats["bytes_received"] > 0

    def test_pull_waits_for_request(self):
        loop, mon, ws, server, client = scrape_rig(pull=True)
        loop.run_until_idle(max_time=1)  # initial request lands
        before = client.stats["updates"]
        ws.fill_rect(ws.screen, Rect(0, 0, 32, 32), RED)
        loop.run_until_idle(max_time=5)
        assert client.stats["updates"] > before

    def test_damage_coalesces_stale_content(self):
        """Many overwrites of one region cost roughly one update."""
        loop, mon, ws, server, client = scrape_rig(pull=False)
        rng = np.random.default_rng(0)
        for _ in range(10):
            ws.put_image(ws.screen, Rect(0, 0, 64, 64),
                         rng.integers(0, 256, (64, 64, 4), dtype=np.uint8))
        loop.run_until_idle(max_time=10)
        one_frame = 64 * 64 * 4
        assert mon.total_bytes("server->client") < 4 * one_frame

    def test_offscreen_drawing_makes_no_damage(self):
        loop, mon, ws, server, client = scrape_rig(pull=False)
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 32, 32), RED)
        loop.run_until_idle(max_time=2)
        assert client.stats["updates"] == 0
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 32), 0, 0)
        loop.run_until_idle(max_time=5)
        assert client.stats["updates"] >= 1

    def test_video_frames_tagged(self):
        from repro.video import yuv

        loop, mon, ws, server, client = scrape_rig(pull=False)
        stream = ws.video_create_stream("YV12", 16, 12, Rect(0, 0, 64, 48))
        rgb = np.zeros((12, 16, 3), dtype=np.uint8)
        frame = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        for _ in range(3):
            ws.video_put_frame(stream, frame)
            loop.run_until_idle(max_time=10)
        assert len(client.video_frames_seen) == 3

    def test_cpu_cost_delays_delivery(self):
        class SlowEncoder(VncEncoder):
            def cpu_cost(self, pixels):
                return 0.5

        loop, mon, ws, server, client = scrape_rig(
            pull=False, encoder=SlowEncoder())
        ws.fill_rect(ws.screen, Rect(0, 0, 32, 32), RED)
        loop.run_until_idle(max_time=10)
        assert client.stats["last_update_time"] >= 0.5
        assert server.server_cpu_time >= 0.5

    def test_input_routed_to_handler(self):
        loop, mon, ws, server, client = scrape_rig(pull=False)
        seen = []
        server.input_handler = lambda x, y: seen.append((x, y))
        client.send_input("mouse-click", 7, 9)
        loop.run_until_idle(max_time=2)
        assert seen == [(7, 9)]


class TestForwardServer:
    def test_commands_priced_and_delivered(self):
        loop, mon, ws, server, client = forward_rig(price_x_command)
        ws.fill_rect(ws.screen, Rect(0, 0, 32, 32), RED)
        ws.draw_text(ws.screen, 2, 40, "hello", RED)
        loop.run_until_idle(max_time=5)
        assert server.commands_seen == 2
        assert client.stats["updates"] == 2

    def test_offscreen_forwarding_flag(self):
        # X forwards offscreen work; RDP-style servers do not.
        loop, mon, ws, x_server, client = forward_rig(
            price_x_command, forward_offscreen=True)
        pm = ws.create_pixmap(16, 16)
        ws.fill_rect(pm, Rect(0, 0, 16, 16), RED)
        assert x_server.commands_seen == 1

        loop2, mon2, ws2, rdp_server, client2 = forward_rig(
            OrdersPricer("rdp"))
        pm2 = ws2.create_pixmap(16, 16)
        ws2.fill_rect(pm2, Rect(0, 0, 16, 16), RED)
        assert rdp_server.commands_seen == 0

    def test_sync_round_trips_add_latency(self):
        slow = LinkParams("slow-rtt", bandwidth_bps=100e6, rtt=0.1)
        loop, mon, ws, server, client = forward_rig(
            price_x_command, link=slow, sync_every=2)
        for i in range(4):
            ws.fill_rect(ws.screen, Rect(i * 8, 0, 8, 8), RED)
        loop.run_until_idle(max_time=30)
        assert server.sync_round_trips == 2
        # The last update waited for at least two synchronous RTTs plus
        # the delivery half-RTT.
        assert client.stats["last_update_time"] > 0.2

    def test_images_cost_pixels_fills_cost_little(self):
        loop, mon, ws, server, client = forward_rig(price_x_command)
        ws.fill_rect(ws.screen, Rect(0, 0, 64, 64), RED)
        loop.run_until_idle(max_time=5)
        fill_bytes = mon.total_bytes("server->client")
        rng = np.random.default_rng(1)
        ws.put_image(ws.screen, Rect(0, 0, 64, 64),
                     rng.integers(0, 256, (64, 64, 4), dtype=np.uint8))
        loop.run_until_idle(max_time=5)
        image_bytes = mon.total_bytes("server->client") - fill_bytes
        assert image_bytes > 20 * fill_bytes

    def test_rdp_offscreen_copy_ships_bitmap(self):
        loop, mon, ws, server, client = forward_rig(OrdersPricer("rdp"))
        pm = ws.create_pixmap(64, 64)
        rng = np.random.default_rng(2)
        ws.put_image(pm, Rect(0, 0, 64, 64),
                     rng.integers(0, 256, (64, 64, 4), dtype=np.uint8))
        loop.run_until_idle(max_time=2)
        assert mon.total_bytes() < 100  # offscreen invisible to RDP
        ws.copy_area(pm, ws.screen, Rect(0, 0, 64, 64), 0, 0)
        loop.run_until_idle(max_time=5)
        assert mon.total_bytes("server->client") > 5000

    def test_nx_prices_below_x_for_protocol_chatter(self):
        loop, mon, ws, server, client = forward_rig(NXPricer())
        for i in range(20):
            ws.fill_rect(ws.screen, Rect(i, 0, 1, 8), RED)
        loop.run_until_idle(max_time=5)
        nx_bytes = mon.total_bytes("server->client")

        loop2, mon2, ws2, server2, client2 = forward_rig(price_x_command)
        for i in range(20):
            ws2.fill_rect(ws2.screen, Rect(i, 0, 1, 8), RED)
        loop2.run_until_idle(max_time=5)
        x_bytes = mon2.total_bytes("server->client")
        assert nx_bytes < x_bytes

    def test_audio_chunks_travel_with_compression(self):
        loop, mon, ws, server, client = forward_rig(OrdersPricer("rdp"))
        server.submit_audio(1.0, b"\x00" * 4000, compression_factor=0.25)
        loop.run_until_idle(max_time=5)
        assert client.stats["audio_chunks"] == 1
        assert 900 < client.audio_arrivals[0][0] * 1000 < 1100
        assert mon.total_bytes("server->client") < 2000
