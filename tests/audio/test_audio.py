"""Tests for the virtual audio driver and A/V quality analysis."""

import pytest

from repro.audio import (AudioFormat, VirtualAudioDriver, audio_quality,
                         av_sync_skew, playback_quality)
from repro.net import SimClock


class SinkSpy:
    def __init__(self):
        self.chunks = []

    def submit_audio(self, timestamp, samples):
        self.chunks.append((timestamp, samples))


class TestAudioFormat:
    def test_cd_quality_defaults(self):
        fmt = AudioFormat()
        assert fmt.bytes_per_second == 44100 * 4
        assert fmt.frame_bytes == 4

    def test_duration_roundtrip(self):
        fmt = AudioFormat()
        nbytes = fmt.bytes_for(0.5)
        assert abs(fmt.duration_of(nbytes) - 0.5) < 1e-3
        assert nbytes % fmt.frame_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AudioFormat(sample_rate=0)


class TestVirtualAudioDriver:
    def test_chunks_at_period_boundaries(self):
        clock = SimClock()
        sink = SinkSpy()
        drv = VirtualAudioDriver(sink, clock, period=0.05)
        one_second = AudioFormat().bytes_for(1.0)
        drv.play(b"\x00" * one_second)
        assert len(sink.chunks) == 20
        assert drv.bytes_emitted == one_second

    def test_timestamps_advance_with_playback_position(self):
        clock = SimClock()
        clock.advance_to(3.0)
        sink = SinkSpy()
        drv = VirtualAudioDriver(sink, clock, period=0.1)
        drv.play(b"\x00" * AudioFormat().bytes_for(0.3))
        stamps = [t for t, _ in sink.chunks]
        assert stamps[0] == pytest.approx(3.0)
        assert stamps[1] == pytest.approx(3.1)
        assert stamps[2] == pytest.approx(3.2)

    def test_partial_writes_accumulate(self):
        clock = SimClock()
        sink = SinkSpy()
        drv = VirtualAudioDriver(sink, clock, period=0.1)
        small = AudioFormat().bytes_for(0.03)
        for _ in range(5):  # 0.15 s total
            drv.play(b"\x00" * small)
        assert len(sink.chunks) == 1
        drv.drain()
        assert len(sink.chunks) == 2

    def test_rejects_torn_sample_frames(self):
        drv = VirtualAudioDriver(SinkSpy(), SimClock())
        with pytest.raises(ValueError):
            drv.play(b"\x00\x01\x02")  # 3 bytes, frame is 4

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            VirtualAudioDriver(SinkSpy(), SimClock(), period=0)


class TestPlaybackQuality:
    def test_perfect(self):
        assert playback_quality(100, 100, 10.0, 10.0) == 1.0

    def test_half_dropped(self):
        assert playback_quality(50, 100, 10.0, 10.0) == pytest.approx(0.5)

    def test_double_duration(self):
        assert playback_quality(100, 100, 10.0, 20.0) == pytest.approx(0.5)

    def test_both_degradations_multiply(self):
        assert playback_quality(50, 100, 10.0, 20.0) == pytest.approx(0.25)

    def test_faster_than_realtime_not_rewarded(self):
        assert playback_quality(100, 100, 10.0, 8.0) == 1.0

    def test_zero_received(self):
        assert playback_quality(0, 100, 10.0, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            playback_quality(1, 0, 10.0, 10.0)


class TestAudioQuality:
    def test_all_on_time(self):
        arrivals = [(i * 0.1, i * 0.1 + 0.02) for i in range(10)]
        assert audio_quality(arrivals, 10, 1.0) == 1.0

    def test_late_chunks_counted(self):
        arrivals = [(0.0, 0.0)] + [(i * 0.1, i * 0.1 + 2.0)
                                   for i in range(1, 10)]
        q = audio_quality(arrivals, 10, 1.0)
        assert q < 0.2

    def test_missing_chunks_reduce(self):
        arrivals = [(i * 0.1, i * 0.1) for i in range(5)]
        assert audio_quality(arrivals, 10, 1.0) == pytest.approx(0.5)

    def test_empty(self):
        assert audio_quality([], 10, 1.0) == 0.0


class TestSyncSkew:
    def test_equal_delays_no_skew(self):
        a = [(0.0, 0.5), (1.0, 1.5)]
        v = [(0.0, 0.5), (1.0, 1.5)]
        assert av_sync_skew(a, v) == pytest.approx(0.0)

    def test_differential_delay_measured(self):
        a = [(0.0, 0.1)]
        v = [(0.0, 0.4)]
        assert av_sync_skew(a, v) == pytest.approx(0.3)

    def test_empty_streams(self):
        assert av_sync_skew([], [(0, 1)]) == 0.0
