"""Tests for anti-aliased text (the alpha-channel use case)."""

import numpy as np
import pytest

from repro.display import RecordingDriver, WindowServer
from repro.display.font import glyph_bitmap, glyph_coverage
from repro.region import Rect

BLACK = (0, 0, 0, 255)
WHITE = (255, 255, 255, 255)


class TestGlyphCoverage:
    def test_range_and_shape(self):
        coverage = glyph_coverage("A")
        assert coverage.shape == glyph_bitmap("A").shape
        assert coverage.min() >= 0.0 and coverage.max() <= 1.0

    def test_intermediate_values_exist(self):
        coverage = glyph_coverage("A")
        interior = coverage[(coverage > 0.05) & (coverage < 0.95)]
        assert interior.size > 0  # actual anti-aliasing happened

    def test_scale_one_is_the_bitmap(self):
        assert np.array_equal(glyph_coverage("A", scale=1),
                              glyph_bitmap("A").astype(float))

    def test_cached_and_readonly(self):
        a = glyph_coverage("B")
        b = glyph_coverage("B")
        assert a is b
        assert not a.flags.writeable

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            glyph_coverage("A", scale=0)


class TestDrawTextAA:
    def test_renders_grey_ramps(self):
        ws = WindowServer(64, 32)
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        ws.draw_text_aa(ws.screen, 2, 2, "AB", BLACK)
        region = ws.screen.fb.data[2:9, 2:13, 0]
        levels = np.unique(region)
        assert len(levels) > 2  # greys between black and white
        assert 0 in levels and 255 in levels

    def test_reaches_driver_as_composite(self):
        driver = RecordingDriver()
        ws = WindowServer(64, 32, driver=driver)
        ws.draw_text_aa(ws.screen, 2, 2, "Hi", BLACK)
        assert driver.names().count("composite") == 2

    def test_respects_clip(self):
        ws = WindowServer(64, 32)
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        with ws.clip(Rect(0, 0, 4, 32)):
            ws.draw_text_aa(ws.screen, 2, 2, "H", BLACK)
        assert (ws.screen.fb.data[2:9, 4:, 0] == 255).all()

    def test_space_draws_nothing(self):
        driver = RecordingDriver()
        ws = WindowServer(64, 32, driver=driver)
        ws.draw_text_aa(ws.screen, 2, 2, " ", BLACK)
        assert "composite" not in driver.names()

    def test_pixel_exact_through_thinc(self):
        """AA text travels as transparent COMPOSITE commands and the
        client's blend reproduces the server exactly."""
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 96, 48)
        ws = WindowServer(96, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        ws.fill_rect(ws.screen, ws.screen.bounds, (240, 235, 220, 255))
        ws.draw_text_aa(ws.screen, 4, 4, "smooth text", (20, 20, 60, 255))
        ws.draw_text_aa(ws.screen, 4, 20, "over colour",
                        (160, 30, 30, 200))
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_offscreen_aa_text_replays(self):
        """AA text composed in a pixmap survives the copy-out replay
        (transparent commands over an opaque base are replayable)."""
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 96, 48)
        ws = WindowServer(96, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        pm = ws.create_pixmap(80, 20)
        ws.fill_rect(pm, pm.bounds, WHITE)
        ws.draw_text_aa(pm, 2, 4, "buffered aa", BLACK)
        ws.copy_area(pm, ws.screen, pm.bounds, 8, 8)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)
        # And it went as commands, not a raw fallback.
        assert server.driver.stats["raw_fallbacks"] == 0
