"""Tests for the simulated window server and its driver dispatch."""

import numpy as np
import pytest

from repro.display import (RecordingDriver, WindowServer, solid_pixels)
from repro.display.driver import InputEvent
from repro.display.font import ADVANCE, GLYPH_HEIGHT
from repro.region import Rect
from repro.video import yuv

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)


@pytest.fixture
def server():
    return WindowServer(64, 48, driver=RecordingDriver())


class TestDrawableManagement:
    def test_create_and_free_pixmap(self, server):
        pm = server.create_pixmap(16, 16)
        assert not pm.onscreen
        assert pm.id in server.pixmaps
        server.free_pixmap(pm)
        assert pm.id not in server.pixmaps
        assert "destroy_drawable" in server.driver.names()

    def test_cannot_free_screen(self, server):
        with pytest.raises(ValueError):
            server.free_pixmap(server.screen)

    def test_use_after_free_rejected(self, server):
        pm = server.create_pixmap(8, 8)
        server.free_pixmap(pm)
        with pytest.raises(ValueError):
            server.fill_rect(pm, Rect(0, 0, 4, 4), RED)


class TestDriverDispatch:
    def test_fill_reaches_driver_with_clipped_rect(self, server):
        server.fill_rect(server.screen, Rect(-4, -4, 10, 10), RED)
        call = server.driver.calls[-1]
        assert call.name == "solid_fill"
        assert call.rect == Rect(0, 0, 6, 6)

    def test_offscreen_fill_marks_pixmap(self, server):
        pm = server.create_pixmap(16, 16)
        server.fill_rect(pm, Rect(0, 0, 4, 4), RED)
        assert server.driver.calls[-1].drawable_id == pm.id

    def test_fully_clipped_op_skips_driver(self, server):
        server.fill_rect(server.screen, Rect(100, 100, 5, 5), RED)
        assert "solid_fill" not in server.driver.names()

    def test_text_decomposes_into_per_glyph_stipples(self, server):
        server.draw_text(server.screen, 2, 2, "hello", RED)
        names = server.driver.names()
        assert names.count("bitmap_fill") == 5

    def test_image_rasterises_in_scanline_chunks(self, server):
        image = solid_pixels(20, 20, GREEN)
        server.put_image(server.screen, Rect(0, 0, 20, 20), image)
        puts = [c for c in server.driver.calls if c.name == "put_image"]
        # 20 rows / 8-row chunks = 3 driver calls.
        assert len(puts) == 3
        assert sum(c.rect.height for c in puts) == 20

    def test_copy_area_between_drawables(self, server):
        pm = server.create_pixmap(16, 16)
        server.fill_rect(pm, Rect(0, 0, 16, 16), RED)
        server.copy_area(pm, server.screen, Rect(0, 0, 16, 16), 4, 4)
        assert tuple(server.screen.fb.data[4, 4]) == RED
        assert server.driver.calls[-1].name == "copy_area"


class TestRenderingGroundTruth:
    def test_text_changes_pixels(self, server):
        before = server.screen.fb.checksum()
        server.draw_text(server.screen, 2, 2, "Hi", RED)
        assert server.screen.fb.checksum() != before

    def test_put_image_accepts_rgb_and_rgba(self, server):
        rgb = np.full((4, 4, 3), 200, dtype=np.uint8)
        server.put_image(server.screen, Rect(0, 0, 4, 4), rgb)
        assert tuple(server.screen.fb.data[0, 0]) == (200, 200, 200, 255)
        rgba = solid_pixels(4, 4, GREEN)
        server.put_image(server.screen, Rect(8, 0, 4, 4), rgba)
        assert tuple(server.screen.fb.data[0, 8]) == GREEN

    def test_put_image_shape_mismatch(self, server):
        with pytest.raises(ValueError):
            server.put_image(server.screen, Rect(0, 0, 5, 5),
                             solid_pixels(4, 4, GREEN))

    def test_composite_blends(self, server):
        server.fill_rect(server.screen, Rect(0, 0, 4, 4), (0, 0, 0, 255))
        server.composite(server.screen, Rect(0, 0, 2, 2),
                         solid_pixels(2, 2, (255, 255, 255, 128)))
        assert 120 <= server.screen.fb.data[0, 0, 0] <= 136


class TestVideo:
    def _frame(self, w, h, value=128):
        rgb = np.full((h, w, 3), value, dtype=np.uint8)
        return yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))

    def test_stream_lifecycle(self, server):
        stream = server.video_create_stream("YV12", 16, 12,
                                            Rect(0, 0, 32, 24))
        assert stream.stream_id in server.video_streams
        server.video_put_frame(stream, self._frame(16, 12))
        assert stream.frames_put == 1
        server.video_destroy_stream(stream)
        assert stream.stream_id not in server.video_streams
        names = server.driver.names()
        assert names.count("video_setup") == 1
        assert names.count("video_put") == 1
        assert names.count("video_teardown") == 1

    def test_frame_is_scaled_to_dst(self, server):
        stream = server.video_create_stream("YV12", 16, 12,
                                            Rect(0, 0, 64, 48))
        server.video_put_frame(stream, self._frame(16, 12, value=200))
        # Full destination covered with (approximately) the frame colour.
        corner = server.screen.fb.data[47, 63]
        assert abs(int(corner[0]) - 200) < 8

    def test_rejects_unknown_format(self, server):
        with pytest.raises(ValueError):
            server.video_create_stream("RGB24", 16, 12, Rect(0, 0, 4, 4))

    def test_put_on_destroyed_stream_rejected(self, server):
        stream = server.video_create_stream("YV12", 16, 12,
                                            Rect(0, 0, 16, 12))
        server.video_destroy_stream(stream)
        with pytest.raises(ValueError):
            server.video_put_frame(stream, self._frame(16, 12))
        with pytest.raises(ValueError):
            server.video_destroy_stream(stream)

    def test_move_stream(self, server):
        stream = server.video_create_stream("YV12", 16, 12,
                                            Rect(0, 0, 16, 12))
        server.video_move_stream(stream, Rect(8, 8, 32, 24))
        assert stream.dst_rect == Rect(8, 8, 32, 24)


class TestListenersAndInput:
    def test_listener_sees_app_level_commands(self, server):
        seen = []

        class Listener:
            def on_app_command(self, cmd):
                seen.append(cmd.name)

        server.add_listener(Listener())
        server.fill_rect(server.screen, Rect(0, 0, 4, 4), RED)
        server.draw_text(server.screen, 0, 20, "xy", RED)
        assert seen == ["fill_rect", "draw_text"]

    def test_text_listener_gets_one_command_not_per_glyph(self, server):
        seen = []

        class Listener:
            def on_app_command(self, cmd):
                seen.append(cmd)

        server.add_listener(Listener())
        server.draw_text(server.screen, 0, 0, "hello", RED)
        assert len(seen) == 1
        assert seen[0].payload == "hello"
        assert seen[0].rect.height == GLYPH_HEIGHT
        assert seen[0].rect.width == 5 * ADVANCE - 1

    def test_input_reaches_driver(self, server):
        server.inject_input(InputEvent("mouse-click", 10, 10, 0.5))
        assert "input_event" in server.driver.names()
        assert server.op_counts["input"] == 1
