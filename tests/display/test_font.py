"""Tests for the bitmap font."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display.font import (ADVANCE, GLYPH_HEIGHT, GLYPH_WIDTH,
                                glyph_bitmap, render_text_mask, text_extent)


class TestGlyphs:
    def test_shape(self):
        assert glyph_bitmap("A").shape == (GLYPH_HEIGHT, GLYPH_WIDTH)

    def test_space_is_blank(self):
        assert not glyph_bitmap(" ").any()

    def test_letters_are_not_blank(self):
        for ch in "AZaz09!?":
            assert glyph_bitmap(ch).any(), ch

    def test_lowercase_maps_to_uppercase(self):
        assert np.array_equal(glyph_bitmap("a"), glyph_bitmap("A"))

    def test_distinct_letters_differ(self):
        assert not np.array_equal(glyph_bitmap("A"), glyph_bitmap("B"))

    def test_unknown_codepoint_gets_stable_pseudo_glyph(self):
        a = glyph_bitmap("é")
        b = glyph_bitmap("é")
        assert a.any()
        assert np.array_equal(a, b)

    def test_cache_returns_readonly(self):
        mask = glyph_bitmap("A")
        assert not mask.flags.writeable

    @given(st.characters(min_codepoint=32, max_codepoint=0x2FF))
    @settings(max_examples=100, deadline=None)
    def test_every_char_renders(self, ch):
        mask = glyph_bitmap(ch)
        assert mask.shape == (GLYPH_HEIGHT, GLYPH_WIDTH)
        if ch != " ":
            assert mask.any()


class TestText:
    def test_extent(self):
        assert text_extent("") == (0, GLYPH_HEIGHT)
        assert text_extent("A") == (GLYPH_WIDTH, GLYPH_HEIGHT)
        assert text_extent("AB") == (2 * ADVANCE - 1, GLYPH_HEIGHT)

    def test_render_mask_places_glyphs(self):
        mask = render_text_mask("AB")
        assert np.array_equal(mask[:, :GLYPH_WIDTH], glyph_bitmap("A"))
        assert np.array_equal(mask[:, ADVANCE : ADVANCE + GLYPH_WIDTH],
                              glyph_bitmap("B"))
        # Inter-glyph column is blank.
        assert not mask[:, GLYPH_WIDTH].any()

    def test_render_empty_string(self):
        mask = render_text_mask("")
        assert mask.shape[0] == GLYPH_HEIGHT
        assert not mask.any()
