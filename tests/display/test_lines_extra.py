"""Additional line-drawing coverage: widths, clips, polylines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display import WindowServer
from repro.display.lines import line_spans, polyline_spans
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)


class TestStrokeWidths:
    @given(st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_wide_horizontal_line_area(self, width):
        spans = line_spans(0, 10, 19, 10, width=width)
        assert sum(s.area for s in spans) == 20 * width

    def test_wide_diagonal_thickens_every_run(self):
        for span in line_spans(0, 0, 20, 10, width=3):
            assert span.height == 3


class TestPolylineShapes:
    def test_closed_shape(self):
        pts = [(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)]
        spans = polyline_spans(pts)
        covered = set()
        for s in spans:
            covered.update(s.pixels())
        # All four corners present.
        for corner in [(0, 0), (10, 0), (10, 10), (0, 10)]:
            assert corner in covered
        # Interior untouched.
        assert (5, 5) not in covered

    def test_zigzag_connected(self):
        pts = [(0, 0), (8, 6), (16, 0), (24, 6)]
        covered = set()
        for s in polyline_spans(pts):
            covered.update(s.pixels())
        for p in pts:
            assert p in covered


class TestLinesUnderClip:
    def test_line_respects_clip_region(self):
        ws = WindowServer(64, 32)
        with ws.clip(Rect(0, 0, 20, 32)):
            ws.draw_line(ws.screen, 0, 5, 63, 5, RED)
        assert tuple(ws.screen.fb.data[5, 10]) == RED
        assert tuple(ws.screen.fb.data[5, 30]) != RED

    def test_polyline_chart_through_thinc(self):
        """A line chart (the 'scientific instrumentation' use case)
        survives the wire pixel-exactly."""
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 128, 64)
        ws = WindowServer(128, 64, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        ws.fill_rect(ws.screen, ws.screen.bounds, (255, 255, 255, 255))
        ws.draw_rect_outline(ws.screen, Rect(4, 4, 120, 56),
                             (0, 0, 0, 255))
        series = [(8 + i * 8, 40 - (i * 13) % 28) for i in range(14)]
        ws.draw_polyline(ws.screen, series, (200, 30, 30, 255))
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)
