"""Tests for line rasterisation and the line drawing API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display import WindowServer
from repro.display.lines import (line_spans, polyline_spans,
                                 rect_outline_spans)
from repro.region import Rect

RED = (255, 0, 0, 255)
coords = st.integers(0, 40)


def span_pixels(spans):
    pts = set()
    for span in spans:
        pts.update(span.pixels())
    return pts


class TestLineSpans:
    def test_horizontal_is_one_span(self):
        spans = line_spans(2, 5, 12, 5)
        assert spans == [Rect(2, 5, 11, 1)]

    def test_vertical_is_one_span(self):
        spans = line_spans(5, 2, 5, 12)
        assert spans == [Rect(5, 2, 1, 11)]

    def test_reversed_endpoints_equivalent(self):
        assert span_pixels(line_spans(2, 5, 12, 9)) == \
            span_pixels(line_spans(12, 9, 2, 5))

    def test_diagonal_covers_endpoints(self):
        pts = span_pixels(line_spans(0, 0, 10, 7))
        assert (0, 0) in pts and (10, 7) in pts

    def test_perfect_diagonal_one_pixel_per_row(self):
        pts = span_pixels(line_spans(0, 0, 7, 7))
        assert len(pts) == 8
        assert pts == {(i, i) for i in range(8)}

    def test_shallow_line_is_connected(self):
        """Each row's span must touch or overlap the next row's span."""
        spans = line_spans(0, 0, 20, 4)
        rows = sorted(spans, key=lambda s: s.y)
        for a, b in zip(rows, rows[1:]):
            assert b.y == a.y + 1
            assert a.x <= b.x2 and b.x <= a.x2 + 1

    def test_stroke_width(self):
        spans = line_spans(0, 5, 10, 5, width=3)
        assert spans == [Rect(0, 5, 11, 3)]

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            line_spans(0, 0, 5, 5, width=0)

    @given(coords, coords, coords, coords)
    @settings(max_examples=80, deadline=None)
    def test_pixels_form_connected_path(self, x0, y0, x1, y1):
        pts = span_pixels(line_spans(x0, y0, x1, y1))
        assert (x0, y0) in pts and (x1, y1) in pts
        # 8-connectivity: from any pixel there is a neighbour, unless
        # the line is a single point.
        if len(pts) > 1:
            for (px, py) in pts:
                assert any((px + dx, py + dy) in pts
                           for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                           if (dx, dy) != (0, 0))


class TestOutlineAndPolyline:
    def test_outline_covers_border_only(self):
        spans = rect_outline_spans(Rect(2, 2, 10, 8))
        pts = span_pixels(spans)
        assert (2, 2) in pts and (11, 9) in pts
        assert (5, 5) not in pts  # interior untouched
        # Spans are disjoint.
        assert sum(s.area for s in spans) == len(pts)

    def test_outline_empty_rect(self):
        assert rect_outline_spans(Rect(0, 0, 0, 0)) == []

    def test_polyline_shares_vertices(self):
        pts = span_pixels(polyline_spans([(0, 0), (10, 0), (10, 10)]))
        assert (10, 0) in pts and (0, 0) in pts and (10, 10) in pts

    def test_polyline_needs_two_points(self):
        with pytest.raises(ValueError):
            polyline_spans([(0, 0)])


class TestServerAPI:
    def test_draw_line_renders_and_reaches_driver(self):
        from repro.display import RecordingDriver

        driver = RecordingDriver()
        ws = WindowServer(64, 48, driver=driver)
        ws.draw_line(ws.screen, 2, 2, 20, 2, RED)
        assert tuple(ws.screen.fb.data[2, 10]) == RED
        assert "solid_fill" in driver.names()

    def test_draw_line_through_thinc_pixel_exact(self):
        from repro.core import THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 64, 48)
        ws = WindowServer(64, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        from repro.core import THINCClient as _C

        client = _C(loop, conn)
        ws.draw_line(ws.screen, 1, 1, 50, 30, RED)
        ws.draw_polyline(ws.screen, [(5, 40), (20, 20), (40, 44)],
                         (0, 255, 0, 255))
        ws.draw_rect_outline(ws.screen, Rect(10, 10, 30, 20),
                             (0, 0, 255, 255), width=2)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_diagonal_spans_stay_compact_on_wire(self):
        """A diagonal produces SFILLs the queue merges or keeps tiny."""
        from repro.core import CommandQueue
        from repro.core.translation import THINCDriver

        class Sink:
            def __init__(self):
                self.queue = CommandQueue()

            def submit(self, c):
                self.queue.add(c)

            def cursor_set(self, *a):
                pass

            def video_setup(self, *a):
                pass

            def video_move(self, *a):
                pass

            def video_teardown(self, *a):
                pass

            def note_input(self, *a):
                pass

        sink = Sink()
        ws = WindowServer(256, 256, driver=THINCDriver(sink))
        ws.draw_line(ws.screen, 0, 0, 255, 255, RED)
        total = sum(c.wire_size() for c in sink.queue)
        assert total < 256 * 16  # far below raw pixels
