"""Property tests for window-manager visibility invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display import WindowServer
from repro.display.wm import TITLE_BAR_HEIGHT, WindowManager
from repro.region import Rect, Region

W, H = 160, 120

window_rects = st.builds(
    Rect,
    st.integers(-20, W - 20),
    st.integers(-10, H - 30),
    st.integers(30, 90),
    st.integers(TITLE_BAR_HEIGHT + 10, 80),
)


def build(rects):
    ws = WindowServer(W, H)
    wm = WindowManager(ws)
    windows = [wm.create_window(f"w{i}", r) for i, r in enumerate(rects)]
    return ws, wm, windows


class TestVisibilityInvariants:
    @given(st.lists(window_rects, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_visible_regions_are_disjoint(self, rects):
        ws, wm, windows = build(rects)
        regions = [wm.visible_region(w) for w in windows]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    @given(st.lists(window_rects, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_visible_regions_tile_the_window_area(self, rects):
        """Visible parts + desktop = the whole screen, exactly."""
        ws, wm, windows = build(rects)
        onscreen = Region()
        for w in windows:
            onscreen.add(w.frame.intersect(ws.screen.bounds))
        covered = Region()
        for w in windows:
            covered = covered.union(wm.visible_region(w))
        assert covered == onscreen

    @given(st.lists(window_rects, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_top_window_fully_visible(self, rects):
        ws, wm, windows = build(rects)
        top = windows[-1]
        expected = top.frame.intersect(ws.screen.bounds)
        assert wm.visible_region(top) == Region.from_rect(expected)

    @given(st.lists(window_rects, min_size=1, max_size=5),
           st.integers(0, W - 1), st.integers(0, H - 1))
    @settings(max_examples=40, deadline=None)
    def test_window_at_agrees_with_visible_region(self, rects, x, y):
        ws, wm, windows = build(rects)
        hit = wm.window_at(x, y)
        if hit is None:
            for w in windows:
                assert not wm.visible_region(w).contains_point(x, y)
        else:
            assert wm.visible_region(hit).contains_point(x, y)

    @given(st.lists(window_rects, min_size=2, max_size=4),
           st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_raise_preserves_invariants(self, rects, which):
        ws, wm, windows = build(rects)
        wm.raise_window(windows[which % len(windows)])
        regions = [wm.visible_region(w) for w in wm.windows]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)
        assert wm.visible_region(wm.focused) == Region.from_rect(
            wm.focused.frame.intersect(ws.screen.bounds))

    @given(st.lists(window_rects, min_size=1, max_size=4),
           st.integers(-40, 40), st.integers(-40, 40))
    @settings(max_examples=30, deadline=None)
    def test_move_keeps_screen_consistent(self, rects, dx, dy):
        """After any move, the screen equals a from-scratch repaint."""
        ws, wm, windows = build(rects)
        wm.move_window(windows[-1], dx, dy)
        # Rebuild the same final scene on a fresh server.
        ws2 = WindowServer(W, H)
        wm2 = WindowManager(ws2)
        for w in wm.windows:
            wm2.create_window(w.title, w.frame)
        assert ws2.screen.fb.same_as(ws.screen.fb)
