"""Tests for the framebuffer raster operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display import Framebuffer, solid_pixels
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
BLUE = (0, 0, 255, 255)
BLACK = (0, 0, 0, 255)


@pytest.fixture
def fb():
    return Framebuffer(32, 24)


class TestConstruction:
    def test_initial_fill(self):
        fb = Framebuffer(8, 4, fill=RED)
        assert np.all(fb.data == np.array(RED, dtype=np.uint8))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)
        with pytest.raises(ValueError):
            Framebuffer(5, -1)


class TestFill:
    def test_fill_rect(self, fb):
        fb.fill_rect(Rect(2, 2, 4, 3), RED)
        assert tuple(fb.data[2, 2]) == RED
        assert tuple(fb.data[4, 5]) == RED
        assert tuple(fb.data[2, 6]) == BLACK
        assert tuple(fb.data[5, 2]) == BLACK

    def test_fill_clips_to_bounds(self, fb):
        drawn = fb.fill_rect(Rect(-4, -4, 10, 10), GREEN)
        assert drawn == Rect(0, 0, 6, 6)
        assert tuple(fb.data[0, 0]) == GREEN

    def test_fill_fully_outside(self, fb):
        drawn = fb.fill_rect(Rect(100, 100, 5, 5), GREEN)
        assert drawn.empty
        assert fb.pixels_drawn == 0


class TestTile:
    def test_tile_repeats_pattern(self, fb):
        tile = np.zeros((2, 2, 4), dtype=np.uint8)
        tile[0, 0] = RED
        tile[0, 1] = GREEN
        tile[1, 0] = BLUE
        tile[1, 1] = (9, 9, 9, 255)
        fb.tile_rect(Rect(0, 0, 6, 6), tile)
        assert tuple(fb.data[0, 0]) == RED
        assert tuple(fb.data[0, 2]) == RED
        assert tuple(fb.data[2, 4]) == RED
        assert tuple(fb.data[1, 1]) == (9, 9, 9, 255)

    def test_tile_origin_offset(self, fb):
        tile = np.zeros((2, 2, 4), dtype=np.uint8)
        tile[0, 0] = RED
        fb.tile_rect(Rect(0, 0, 4, 4), tile, origin=(1, 1))
        # With origin (1,1), tile pixel (0,0) lands at fb (1,1).
        assert tuple(fb.data[1, 1]) == RED
        assert tuple(fb.data[0, 0]) != RED

    def test_tile_validates_shape(self, fb):
        with pytest.raises(ValueError):
            fb.tile_rect(Rect(0, 0, 4, 4), np.zeros((2, 2, 3), np.uint8))
        with pytest.raises(ValueError):
            fb.tile_rect(Rect(0, 0, 4, 4), np.zeros((0, 2, 4), np.uint8))


class TestStipple:
    def test_opaque_stipple(self, fb):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        fb.stipple_rect(Rect(0, 0, 2, 2), mask, RED, GREEN)
        assert tuple(fb.data[0, 0]) == RED
        assert tuple(fb.data[0, 1]) == GREEN
        assert tuple(fb.data[1, 1]) == RED

    def test_transparent_stipple_leaves_zeros(self, fb):
        fb.fill_rect(fb.bounds, BLUE)
        mask = np.array([[1, 0]], dtype=bool)
        fb.stipple_rect(Rect(0, 0, 2, 1), mask, RED, None)
        assert tuple(fb.data[0, 0]) == RED
        assert tuple(fb.data[0, 1]) == BLUE

    def test_stipple_tiles_small_masks(self, fb):
        mask = np.array([[1]], dtype=bool)
        drawn = fb.stipple_rect(Rect(0, 0, 4, 4), mask, RED, None)
        assert drawn.area == 16
        assert np.all(fb.data[:4, :4, 0] == 255)

    def test_rejects_non_2d_mask(self, fb):
        with pytest.raises(ValueError):
            fb.stipple_rect(Rect(0, 0, 2, 2),
                            np.zeros((2, 2, 2), bool), RED, None)


class TestPutAndCopy:
    def test_put_pixels_roundtrip(self, fb):
        block = solid_pixels(4, 4, GREEN)
        fb.put_pixels(Rect(3, 3, 4, 4), block)
        assert np.array_equal(fb.read_pixels(Rect(3, 3, 4, 4)), block)

    def test_put_pixels_shape_check(self, fb):
        with pytest.raises(ValueError):
            fb.put_pixels(Rect(0, 0, 4, 4), solid_pixels(3, 4, GREEN))

    def test_put_pixels_clips_off_edge(self, fb):
        block = solid_pixels(4, 4, GREEN)
        drawn = fb.put_pixels(Rect(30, 22, 4, 4), block)
        assert drawn == Rect(30, 22, 2, 2)
        assert tuple(fb.data[23, 31]) == GREEN

    def test_copy_area(self, fb):
        fb.fill_rect(Rect(0, 0, 4, 4), RED)
        fb.copy_area(Rect(0, 0, 4, 4), 10, 10)
        assert np.array_equal(fb.read_pixels(Rect(10, 10, 4, 4)),
                              solid_pixels(4, 4, RED))

    def test_copy_area_overlapping_is_safe(self, fb):
        # Paint a gradient and shift it right by 1 over itself (scroll).
        for x in range(8):
            fb.fill_rect(Rect(x, 0, 1, 4), (x * 10, 0, 0, 255))
        fb.copy_area(Rect(0, 0, 7, 4), 1, 0)
        for x in range(1, 8):
            assert fb.data[0, x, 0] == (x - 1) * 10

    def test_copy_area_clips_source_and_dest_consistently(self, fb):
        fb.fill_rect(Rect(0, 0, 32, 24), RED)
        fb.fill_rect(Rect(0, 0, 2, 2), GREEN)
        # Source hangs off the top-left; destination shifts in step.
        drawn = fb.copy_area(Rect(-2, -2, 6, 6), 10, 10)
        assert drawn == Rect(12, 12, 4, 4)
        assert tuple(fb.data[12, 12]) == GREEN


class TestComposite:
    def test_opaque_composite_replaces(self, fb):
        fb.fill_rect(fb.bounds, BLUE)
        fb.composite(Rect(0, 0, 2, 2), solid_pixels(2, 2, RED))
        assert tuple(fb.data[0, 0]) == RED

    def test_half_alpha_blends(self, fb):
        fb.fill_rect(fb.bounds, (0, 0, 0, 255))
        fb.composite(Rect(0, 0, 1, 1), solid_pixels(1, 1, (255, 255, 255, 128)))
        value = int(fb.data[0, 0, 0])
        assert 120 <= value <= 136  # ~50% grey

    def test_zero_alpha_is_noop_visually(self, fb):
        fb.fill_rect(fb.bounds, BLUE)
        fb.composite(Rect(0, 0, 2, 2), solid_pixels(2, 2, (255, 0, 0, 0)))
        assert tuple(fb.data[0, 0])[:3] == BLUE[:3]


class TestComparison:
    def test_same_as_and_diff_area(self):
        a = Framebuffer(8, 8)
        b = Framebuffer(8, 8)
        assert a.same_as(b)
        assert a.diff_area(b) == 0
        b.fill_rect(Rect(0, 0, 2, 2), RED)
        assert not a.same_as(b)
        assert a.diff_area(b) == 4

    def test_diff_area_size_mismatch(self):
        with pytest.raises(ValueError):
            Framebuffer(4, 4).diff_area(Framebuffer(5, 4))

    def test_checksum_changes_with_content(self):
        fb = Framebuffer(8, 8)
        before = fb.checksum()
        fb.fill_rect(Rect(0, 0, 1, 1), RED)
        assert fb.checksum() != before


class TestPixelAccounting:
    @given(st.integers(-8, 40), st.integers(-8, 40),
           st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_pixels_drawn_matches_clip(self, x, y, w, h):
        fb = Framebuffer(32, 24)
        rect = Rect(x, y, w, h)
        drawn = fb.fill_rect(rect, RED)
        assert fb.pixels_drawn == drawn.area
        assert drawn == rect.intersect(fb.bounds)
