"""Tests for GC clip regions on the window server."""

import numpy as np
import pytest

from repro.display import RecordingDriver, WindowServer, solid_pixels
from repro.region import Rect, Region

RED = (255, 0, 0, 255)
BLUE = (0, 0, 255, 255)
BLACK = (0, 0, 0, 255)


@pytest.fixture
def rig():
    driver = RecordingDriver()
    ws = WindowServer(64, 48, driver=driver)
    return ws, driver


class TestClipBasics:
    def test_fill_clipped_to_region(self, rig):
        ws, driver = rig
        ws.set_clip(Rect(10, 10, 10, 10))
        ws.fill_rect(ws.screen, Rect(0, 0, 64, 48), RED)
        assert tuple(ws.screen.fb.data[15, 15]) == RED
        assert tuple(ws.screen.fb.data[5, 5]) != RED
        ws.set_clip(None)
        ws.fill_rect(ws.screen, Rect(0, 0, 4, 4), BLUE)
        assert tuple(ws.screen.fb.data[1, 1]) == BLUE

    def test_multi_rect_clip_fragments_driver_calls(self, rig):
        ws, driver = rig
        ws.set_clip(Region([Rect(0, 0, 10, 48), Rect(30, 0, 10, 48)]))
        ws.fill_rect(ws.screen, Rect(0, 0, 64, 48), RED)
        fills = [c for c in driver.calls if c.name == "solid_fill"]
        assert len(fills) == 2
        assert tuple(ws.screen.fb.data[0, 5]) == RED
        assert tuple(ws.screen.fb.data[0, 20]) != RED
        assert tuple(ws.screen.fb.data[0, 35]) == RED

    def test_clip_context_manager_restores(self, rig):
        ws, driver = rig
        with ws.clip(Rect(0, 0, 8, 8)):
            ws.fill_rect(ws.screen, Rect(0, 0, 64, 48), RED)
        ws.fill_rect(ws.screen, Rect(20, 20, 4, 4), BLUE)
        assert tuple(ws.screen.fb.data[21, 21]) == BLUE  # unclipped again

    def test_nested_clip_contexts(self, rig):
        ws, driver = rig
        with ws.clip(Rect(0, 0, 32, 48)):
            with ws.clip(Rect(0, 0, 8, 8)):
                ws.fill_rect(ws.screen, ws.screen.bounds, RED)
            # Back to the outer clip.
            ws.fill_rect(ws.screen, Rect(0, 40, 64, 8), BLUE)
        assert tuple(ws.screen.fb.data[4, 4]) == RED
        assert tuple(ws.screen.fb.data[44, 4]) == BLUE
        assert tuple(ws.screen.fb.data[44, 40]) != BLUE  # outside outer

    def test_invalid_clip_type_rejected(self, rig):
        ws, driver = rig
        with pytest.raises(TypeError):
            ws.set_clip("everything")


class TestClippedOps:
    def test_text_clipped_mid_glyph(self, rig):
        ws, driver = rig
        with ws.clip(Rect(0, 0, 8, 48)):
            ws.draw_text(ws.screen, 0, 0, "HH", RED)
        # First glyph drawn, second mostly clipped away.
        assert ws.screen.fb.data[: 7, :8, 0].any()
        assert not ws.screen.fb.data[:7, 9:, 0].any()

    def test_image_clipped(self, rig):
        ws, driver = rig
        with ws.clip(Rect(4, 4, 8, 8)):
            ws.put_image(ws.screen, Rect(0, 0, 16, 16),
                         solid_pixels(16, 16, BLUE))
        assert tuple(ws.screen.fb.data[6, 6]) == BLUE
        assert tuple(ws.screen.fb.data[1, 1]) != BLUE

    def test_tiled_clipped_keeps_phase(self, rig):
        ws, driver = rig
        tile = solid_pixels(4, 4, BLACK)
        tile[0, 0] = RED
        # Unclipped reference.
        reference = WindowServer(64, 48)
        reference.fill_tiled(reference.screen, Rect(0, 0, 32, 32), tile)
        with ws.clip(Rect(8, 8, 16, 16)):
            ws.fill_tiled(ws.screen, Rect(0, 0, 32, 32), tile)
        block = Rect(8, 8, 16, 16)
        assert np.array_equal(ws.screen.fb.read_pixels(block),
                              reference.screen.fb.read_pixels(block))


class TestClipThroughTHINC:
    def test_expose_style_redraw_pixel_exact(self):
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 64, 48)
        ws = WindowServer(64, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)

        ws.fill_rect(ws.screen, ws.screen.bounds, (200, 200, 200, 255))
        # An expose handler repaints through a two-part exposed region.
        exposed = Region([Rect(0, 0, 20, 48), Rect(40, 0, 24, 48)])
        with ws.clip(exposed):
            ws.fill_rect(ws.screen, ws.screen.bounds, BLUE)
            ws.draw_text(ws.screen, 2, 2, "exposed area redraw", RED)
            ws.put_image(ws.screen, Rect(10, 20, 30, 10),
                         solid_pixels(30, 10, BLACK))
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)
