"""Tests for Porter-Duff compositing operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display.compositing import (OPERATORS, apply_operator, atop, in_,
                                       out, over, plus, xor)


def px(r, g, b, a):
    return np.array([[[r, g, b, a]]], dtype=np.uint8)


rgba = st.tuples(*[st.integers(0, 255)] * 4)
images = rgba.map(lambda t: px(*t))

OPAQUE_RED = px(255, 0, 0, 255)
OPAQUE_BLUE = px(0, 0, 255, 255)
CLEAR = px(0, 0, 0, 0)


class TestOver:
    def test_opaque_src_wins(self):
        result = over(OPAQUE_RED, OPAQUE_BLUE)
        assert tuple(result[0, 0]) == (255, 0, 0, 255)

    def test_clear_src_leaves_dst(self):
        result = over(CLEAR, OPAQUE_BLUE)
        assert tuple(result[0, 0]) == (0, 0, 255, 255)

    def test_half_blend(self):
        result = over(px(255, 255, 255, 128), px(0, 0, 0, 255))
        assert 120 <= result[0, 0, 0] <= 136
        assert result[0, 0, 3] == 255

    @given(images, images)
    @settings(max_examples=80, deadline=None)
    def test_output_alpha_at_least_dst_when_dst_opaque(self, src, dst):
        dst = dst.copy()
        dst[..., 3] = 255
        assert over(src, dst)[0, 0, 3] == 255

    @given(images)
    @settings(max_examples=60, deadline=None)
    def test_over_clear_dst_is_src(self, src):
        result = over(src, CLEAR)
        # Straight-alpha round trip loses colour where alpha is 0.
        if src[0, 0, 3] > 0:
            assert np.all(np.abs(result[..., :3].astype(int)
                                 - src[..., :3].astype(int)) <= 1)
        assert result[0, 0, 3] == src[0, 0, 3]


class TestOtherOperators:
    def test_in_masks_by_dst_alpha(self):
        assert in_(OPAQUE_RED, CLEAR)[0, 0, 3] == 0
        assert in_(OPAQUE_RED, OPAQUE_BLUE)[0, 0, 3] == 255

    def test_out_is_complement_of_in(self):
        assert out(OPAQUE_RED, CLEAR)[0, 0, 3] == 255
        assert out(OPAQUE_RED, OPAQUE_BLUE)[0, 0, 3] == 0

    def test_atop_keeps_dst_alpha(self):
        result = atop(px(255, 0, 0, 255), px(0, 0, 255, 200))
        assert result[0, 0, 3] == 200

    def test_xor_opaque_pair_cancels(self):
        assert xor(OPAQUE_RED, OPAQUE_BLUE)[0, 0, 3] == 0

    def test_plus_saturates(self):
        result = plus(px(200, 0, 0, 255), px(200, 0, 0, 255))
        assert result[0, 0, 0] == 255
        assert result[0, 0, 3] == 255


class TestDispatch:
    def test_all_registered(self):
        assert set(OPERATORS) == {"over", "in", "out", "atop", "xor", "plus"}

    def test_apply_operator(self):
        result = apply_operator("over", OPAQUE_RED, OPAQUE_BLUE)
        assert tuple(result[0, 0]) == (255, 0, 0, 255)

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            apply_operator("bogus", OPAQUE_RED, OPAQUE_BLUE)

    @given(images, images, st.sampled_from(sorted(OPERATORS)))
    @settings(max_examples=80, deadline=None)
    def test_outputs_are_valid_rgba(self, src, dst, name):
        result = apply_operator(name, src, dst)
        assert result.dtype == np.uint8
        assert result.shape == src.shape
