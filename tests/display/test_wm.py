"""Tests for the stacking window manager."""

import pytest

from repro.display import WindowServer
from repro.display.wm import WindowManager
from repro.region import Rect

CONTENT_A = (250, 200, 200, 255)
CONTENT_B = (200, 250, 200, 255)


@pytest.fixture
def rig():
    ws = WindowServer(200, 150)
    wm = WindowManager(ws)
    return ws, wm


def px(ws, x, y):
    return tuple(ws.screen.fb.data[y, x])


class TestLifecycle:
    def test_desktop_painted_initially(self, rig):
        ws, wm = rig
        assert px(ws, 100, 75) == wm.desktop_color

    def test_window_appears_with_frame_and_content(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60),
                               content_color=CONTENT_A)
        assert px(ws, 60, 25) != wm.desktop_color  # title bar
        assert px(ws, 60, 50) == CONTENT_A  # content area
        assert wm.focused is win

    def test_close_restores_desktop(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60))
        wm.close_window(win)
        assert px(ws, 60, 50) == wm.desktop_color
        assert wm.windows == []
        assert ws.pixmaps == {}

    def test_too_small_window_rejected(self, rig):
        ws, wm = rig
        with pytest.raises(ValueError):
            wm.create_window("tiny", Rect(0, 0, 10, 10))

    def test_unmanaged_window_operations_rejected(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60))
        wm.close_window(win)
        with pytest.raises(ValueError):
            wm.close_window(win)
        with pytest.raises(ValueError):
            wm.move_window(win, 5, 5)


class TestStacking:
    def test_top_window_obscures_lower(self, rig):
        ws, wm = rig
        wm.create_window("below", Rect(20, 20, 80, 60),
                         content_color=CONTENT_A)
        wm.create_window("above", Rect(50, 40, 80, 60),
                         content_color=CONTENT_B)
        # Overlap area shows the upper window's content.
        assert px(ws, 80, 70) == CONTENT_B

    def test_raise_uncovers_content(self, rig):
        ws, wm = rig
        below = wm.create_window("below", Rect(20, 20, 80, 60),
                                 content_color=CONTENT_A)
        wm.create_window("above", Rect(50, 40, 80, 60),
                         content_color=CONTENT_B)
        wm.raise_window(below)
        assert wm.focused is below
        assert px(ws, 80, 60) == CONTENT_A

    def test_window_at_respects_stacking(self, rig):
        ws, wm = rig
        below = wm.create_window("below", Rect(20, 20, 80, 60))
        above = wm.create_window("above", Rect(50, 40, 80, 60))
        assert wm.window_at(60, 50) is above
        assert wm.window_at(25, 25) is below
        assert wm.window_at(190, 140) is None

    def test_visible_region_subtracts_higher_windows(self, rig):
        ws, wm = rig
        below = wm.create_window("below", Rect(20, 20, 80, 60))
        wm.create_window("above", Rect(50, 40, 80, 60))
        visible = wm.visible_region(below)
        assert visible.area < below.frame.area
        assert not visible.contains_point(60, 50)


class TestMovement:
    def test_move_carries_content(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60),
                               content_color=CONTENT_A)
        wm.move_window(win, 40, 30)
        assert win.frame == Rect(60, 50, 80, 60)
        assert px(ws, 100, 80) == CONTENT_A
        # The vacated area shows the desktop again.
        assert px(ws, 25, 25) == wm.desktop_color

    def test_move_uses_copy_not_pixels(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60))
        before = ws.op_counts.get("copy_area", 0)
        wm.move_window(win, 10, 10)
        assert ws.op_counts["copy_area"] > before

    def test_move_exposes_lower_window(self, rig):
        ws, wm = rig
        wm.create_window("below", Rect(20, 20, 80, 60),
                         content_color=CONTENT_A)
        above = wm.create_window("above", Rect(50, 40, 80, 60),
                                 content_color=CONTENT_B)
        wm.move_window(above, 60, 40)
        # The previously covered corner of `below` is repainted.
        assert px(ws, 80, 60) == CONTENT_A

    def test_move_partially_offscreen(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60),
                               content_color=CONTENT_A)
        wm.move_window(win, 150, 0)
        # Only the onscreen sliver is drawn; no exceptions, desktop
        # repaired behind.
        assert px(ws, 25, 50) == wm.desktop_color
        assert px(ws, 180, 50) == CONTENT_A


class TestDrawing:
    def test_draw_in_window_flushes_visible_part(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 100, 80),
                               content_color=CONTENT_A)

        def paint(server, backing):
            server.fill_rect(backing, Rect(0, 0, 40, 20), (0, 0, 255, 255))

        wm.draw_in_window(win, paint)
        content = win.content_rect
        assert px(ws, content.x + 5, content.y + 5) == (0, 0, 255, 255)

    def test_draw_in_obscured_window_does_not_bleed_through(self, rig):
        ws, wm = rig
        below = wm.create_window("below", Rect(20, 20, 80, 60),
                                 content_color=CONTENT_A)
        wm.create_window("above", Rect(20, 20, 80, 60),
                         content_color=CONTENT_B)

        def paint(server, backing):
            server.fill_rect(backing, backing.bounds, (255, 0, 255, 255))

        wm.draw_in_window(below, paint)
        # Fully covered: the top window's content still shows.
        assert px(ws, 60, 50) == CONTENT_B
        # But the backing store was updated for later exposes.
        wm.raise_window(below)
        assert px(ws, 60, 50) == (255, 0, 255, 255)


class TestThroughTHINC:
    def test_desktop_session_pixel_exact_over_network(self):
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 200, 150)
        ws = WindowServer(200, 150, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)

        wm = WindowManager(ws)
        a = wm.create_window("editor", Rect(10, 10, 100, 80),
                             content_color=CONTENT_A)
        b = wm.create_window("terminal", Rect(60, 50, 100, 80),
                             content_color=CONTENT_B)
        wm.draw_in_window(a, lambda s, d: s.draw_text(
            d, 4, 4, "hello world", (0, 0, 0, 255)))
        wm.move_window(b, 25, 15)
        wm.raise_window(a)
        wm.close_window(b)
        loop.run_until_idle(max_time=10)
        assert client.fb.same_as(ws.screen.fb)


class TestResize:
    def test_grow_preserves_content(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60),
                               content_color=CONTENT_A)
        wm.draw_in_window(win, lambda s, d: s.fill_rect(
            d, Rect(0, 0, 10, 10), (0, 0, 255, 255)))
        wm.resize_window(win, 120, 90)
        assert win.frame == Rect(20, 20, 120, 90)
        content = win.content_rect
        assert px(ws, content.x + 5, content.y + 5) == (0, 0, 255, 255)
        # Newly grown area carries the default content colour.
        assert px(ws, content.x + 100, content.y + 70) != wm.desktop_color

    def test_shrink_exposes_desktop(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 100, 80),
                               content_color=CONTENT_A)
        wm.resize_window(win, 60, 50)
        assert px(ws, 110, 90) == wm.desktop_color

    def test_shrink_exposes_lower_window(self, rig):
        ws, wm = rig
        wm.create_window("below", Rect(20, 20, 80, 60),
                         content_color=CONTENT_A)
        above = wm.create_window("above", Rect(30, 30, 90, 70),
                                 content_color=CONTENT_B)
        wm.resize_window(above, 40, 40)
        assert px(ws, 90, 70) == CONTENT_A

    def test_resize_too_small_rejected(self, rig):
        ws, wm = rig
        win = wm.create_window("app", Rect(20, 20, 80, 60))
        with pytest.raises(ValueError):
            wm.resize_window(win, 10, 10)

    def test_resize_through_thinc_pixel_exact(self):
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 200, 150)
        ws = WindowServer(200, 150, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        wm = WindowManager(ws)
        win = wm.create_window("app", Rect(20, 20, 100, 80),
                               content_color=CONTENT_A)
        wm.resize_window(win, 140, 100)
        wm.resize_window(win, 60, 50)
        loop.run_until_idle(max_time=10)
        assert client.fb.same_as(ws.screen.fb)


class TestInteractiveDesktop:
    def test_click_to_focus_over_the_network(self):
        """Full loop: client clicks, server routes to the WM, the
        raised window's newly exposed content reaches the client."""
        from repro.core import THINCClient, THINCServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 200, 150)
        ws = WindowServer(200, 150, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        wm = WindowManager(ws)
        below = wm.create_window("below", Rect(20, 20, 80, 60),
                                 content_color=CONTENT_A)
        wm.create_window("above", Rect(50, 40, 80, 60),
                         content_color=CONTENT_B)

        def route_click(session, msg):
            target = wm.window_at(msg.x, msg.y)
            if target is not None:
                wm.raise_window(target)

        server.input_handler = route_click
        # Click on the visible corner of the lower window.
        client.send_input("mouse-click", 25, 25)
        loop.run_until_idle(max_time=5)
        assert wm.focused is below
        assert client.fb.same_as(ws.screen.fb)
        assert tuple(client.fb.data[60, 80]) == CONTENT_A  # uncovered
