"""The fuzz harness as a test: a quick scenario per run, plus the
crash-corpus regression replay and determinism checks."""

import os

from repro.fuzz import (CoveragePool, FuzzConfig, Mutator, outcome_signature,
                        replay_corpus, run_fuzz, seed_corpus)
from repro.protocol import wire

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestMutator:
    def test_same_seed_same_stream(self):
        a = Mutator(42, seed_corpus())
        b = Mutator(42, seed_corpus())
        assert list(a.cases(50)) == list(b.cases(50))

    def test_different_seeds_diverge(self):
        a = list(Mutator(1, seed_corpus()).cases(20))
        b = list(Mutator(2, seed_corpus()).cases(20))
        assert a != b

    def test_coverage_pool_accretes_new_outcomes(self):
        pool = CoveragePool(seed_corpus())
        before = len(pool.entries)
        # A disallowed type id is an outcome no valid seed produces.
        assert pool.offer(wire.frame_message(250, b"x"))
        assert not pool.offer(wire.frame_message(251, b"y"))  # same sig
        assert len(pool.entries) == before + 1

    def test_signature_distinguishes_outcomes(self):
        ok = outcome_signature(wire.encode_message(
            wire.HeartbeatMessage(1, 0.5)))
        bad = outcome_signature(wire.frame_message(250, b"x"))
        assert ok != bad
        assert ok[1] == ""                      # parsed cleanly
        assert bad[1] == "FieldRangeError"      # typed rejection


class TestHarness:
    def test_fuzzed_run_upholds_the_contract(self):
        report = run_fuzz(FuzzConfig(seed=7, cases=150, duration=1.0))
        assert report.ok, report.summary()
        assert report.honest_identical
        assert report.twin_identical
        assert report.budget_ok
        # The run actually exercised the hostile paths.
        assert report.wire_errors > 0
        assert report.quarantined > 0

    def test_reports_are_deterministic(self):
        cfg = dict(seed=11, cases=60, duration=0.8)
        a = run_fuzz(FuzzConfig(**cfg))
        b = run_fuzz(FuzzConfig(**cfg))
        assert a.ok and b.ok
        assert a.wire_errors == b.wire_errors
        assert a.quarantined == b.quarantined
        assert a.new_signatures == b.new_signatures
        assert a.mutation_stats == b.mutation_stats

    def test_crash_corpus_replays_clean(self):
        results = replay_corpus(CORPUS_DIR)
        assert len(results) >= 4               # the seeded regressions
        for name, report in results:
            assert report.ok, f"{name}: {report.summary()}"
