"""Relay edge: routing, denial, opacity, severing, bounded pumps."""

from repro.cluster import ShardCoordinator
from repro.core.resilience import ResilienceConfig, ResilientClient
from repro.net import Connection, EventLoop, LAN_DESKTOP

from tests.helpers import make_shard_rig


def quick_config():
    return ResilienceConfig(
        heartbeat_interval=0.1, liveness_timeout=0.35, check_interval=0.05,
        backoff_base=0.05, backoff_jitter=0.2, detach_window=5.0)


class TestDialPath:
    def test_fresh_dials_spread_and_register_splices(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=4, schedule_workloads=False)
        loop.run_until(0.5)
        relay = coord.relay
        assert relay.stats["routed_fresh"] == 4
        assert relay.stats["denied"] == 0
        assert set(relay.splices) == {rc.token for rc in rcs}
        assert [len(s.sessions) for s in coord.shards] == [2, 2]

    def test_clients_cannot_tell_relay_from_server(self):
        # The litmus test for wire-protocol transparency: an encrypted
        # session through the relay still converges pixel-perfectly
        # (the relay never holds the key, so any parsing past the
        # prelude would corrupt the stream).
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=0, encrypt_key=b"fabric-secret")
        config = quick_config()

        def dial():
            conn = Connection(loop, LAN_DESKTOP)
            coord.relay.accept(conn)
            return conn

        enc = ResilientClient(loop, dial, config=config,
                              decrypt_key=b"fabric-secret", seed=9)
        enc.start()
        loop.run_until(9.0)
        shard = coord.route_token(enc.token)
        assert enc.client.fb.same_as(screens[shard].screen.fb)

    def test_garbage_prelude_is_dropped_not_crashed(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64,
                                 resilience=quick_config())
        conn = Connection(coord.loop, LAN_DESKTOP)
        coord.relay.accept(conn)
        conn.up.write(b"\xff" * 64)
        coord.loop.run_until(0.5)
        assert coord.relay.stats["routed_fresh"] == 0
        assert not coord.relay.splices
        assert all(not s.sessions for s in coord.shards)

    def test_full_fabric_denies_with_typed_message(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=0, schedule_workloads=False)
        for server in coord.shards:
            server.governor.check_admission = lambda: "full"
        config = quick_config()

        def dial():
            conn = Connection(loop, LAN_DESKTOP)
            coord.relay.accept(conn)
            return conn

        rc = ResilientClient(loop, dial, config=config, seed=3)
        rc.start()
        loop.run_until(1.0)
        assert coord.relay.stats["denied"] > 0
        assert rc.stats["denials"] > 0       # the typed denial arrived
        assert rc.token == 0                 # never attached


class TestSevering:
    def test_sever_forces_redial_and_reattach(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, schedule_workloads=False)
        loop.run_until(0.5)
        rc = rcs[0]
        token = rc.token
        dials_before = rc.stats["dials"]
        coord.relay.sever(token)
        assert token not in coord.relay.splices
        loop.run_until(4.0)
        # Same token, new splice: the resilience plane resumed it.
        assert rc.token == token
        assert rc.stats["dials"] > dials_before
        assert coord.relay.stats["routed_resumed"] >= 1
        assert token in coord.relay.splices

    def test_sever_unknown_token_is_a_noop(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64)
        coord.relay.sever(12345)
        assert coord.relay.stats["severed"] == 0
