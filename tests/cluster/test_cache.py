"""Shared prepare cache: content identity, LRU bounds, plane wiring."""

import pytest

from repro.cluster import SharedPrepareCache
from repro.protocol.commands import SFillCommand
from repro.region import Rect

RED = (255, 0, 0, 255)
BLUE = (0, 0, 255, 255)
KEY_A = ("scale", 1, 1)
KEY_B = ("scale", 2, 2)


def fill(x=0, color=RED):
    return SFillCommand(Rect(x, 0, 8, 8), color)


class TestContentKeying:
    def test_miss_then_hit(self):
        cache = SharedPrepareCache()
        cmd = fill()
        assert cache.get(cmd, KEY_A) is None
        cache.put(cmd, KEY_A, "entry")
        assert cache.get(cmd, KEY_A) == "entry"
        assert cache.stats() == {"hits": 1, "misses": 1,
                                 "evictions": 0, "entries": 1}

    def test_equal_content_shares_across_command_objects(self):
        # The fabric case: two shards build identical commands from
        # mirrored screens — distinct objects, same wire bytes.
        cache = SharedPrepareCache()
        cache.put(fill(), KEY_A, "entry")
        assert cache.get(fill(), KEY_A) == "entry"

    def test_different_content_and_scale_are_distinct(self):
        cache = SharedPrepareCache()
        cache.put(fill(color=RED), KEY_A, "red")
        assert cache.get(fill(color=BLUE), KEY_A) is None
        assert cache.get(fill(color=RED), KEY_B) is None
        assert cache.get(fill(color=RED), KEY_A) == "red"

    def test_content_crc_is_stamped_once(self):
        cache = SharedPrepareCache()
        cmd = fill()
        cache.put(cmd, KEY_A, "e")
        stamp = cmd._content_crc
        cache.get(cmd, KEY_A)
        assert cmd._content_crc == stamp


class TestLRU:
    def test_eviction_is_lru_and_bounded(self):
        cache = SharedPrepareCache(max_entries=2)
        a, b, c = fill(0), fill(8), fill(16)
        cache.put(a, KEY_A, "a")
        cache.put(b, KEY_A, "b")
        assert cache.get(a, KEY_A) == "a"   # refresh a
        cache.put(c, KEY_A, "c")            # evicts b, the cold one
        assert cache.get(b, KEY_A) is None
        assert cache.get(a, KEY_A) == "a"
        assert cache.get(c, KEY_A) == "c"
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            SharedPrepareCache(max_entries=0)


class TestPlaneWiring:
    def test_cross_shard_adoption_saves_prepare_work(self):
        # Two real shards, mirrored draws: the second shard's plane
        # must adopt the first one's prepared entry via the shared
        # cache instead of re-preparing identical content.
        from repro.core import THINCClient, THINCServer
        from repro.display import WindowServer
        from repro.net import Connection, EventLoop, LAN_DESKTOP

        loop = EventLoop()
        shared = SharedPrepareCache()
        shards, screens, clients = [], [], []
        for _ in range(2):
            server = THINCServer(loop, 64, 48)
            server.plane.shared_cache = shared
            screens.append(WindowServer(64, 48, driver=server.driver,
                                        clock=loop.clock))
            conn = Connection(loop, LAN_DESKTOP)
            server.attach_client(conn)
            clients.append(THINCClient(loop, conn))
            shards.append(server)
        loop.run_until_idle(max_time=10)
        baseline = shards[1].plane.stats.cache_misses
        for ws in screens:
            ws.fill_rect(ws.screen, Rect(4, 4, 16, 16), RED)
        loop.run_until_idle(max_time=10)
        assert shared.hits > 0
        # Shard 1 burned no prepare CPU on the mirrored fill.
        assert shards[1].plane.stats.cache_misses == baseline
        for client, ws in zip(clients, screens):
            assert client.fb.same_as(ws.screen.fb)
