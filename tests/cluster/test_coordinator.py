"""Coordinator: namespacing, placement overflow, routing, fabric log."""

import pytest

from repro.cluster import ShardCoordinator
from repro.net import EventLoop
from repro.protocol import wire

from tests.helpers import make_shard_rig


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardCoordinator(EventLoop(), 0, 96, 64)

    def test_shards_share_one_prepare_cache(self):
        coord = ShardCoordinator(EventLoop(), 3, 96, 64)
        planes = {id(s.plane.shared_cache) for s in coord.shards}
        assert planes == {id(coord.shared_cache)}

    def test_token_namespaces_are_disjoint(self):
        # Shard i mints i+1, i+1+N, ...: a token names its shard.
        coord = ShardCoordinator(EventLoop(), 3, 96, 64)
        for i, server in enumerate(coord.shards):
            plane = server.resilience
            assert plane.config.token_start == i + 1
            assert plane.config.token_stride == 3

    def test_attached_clients_get_disjoint_tokens(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=6, schedule_workloads=False)
        loop.run_until(0.5)
        tokens = [rc.token for rc in rcs]
        assert all(tokens) and len(set(tokens)) == 6
        for token in tokens:
            shard = coord.route_token(token)
            # Minting-shard invariant: token ≡ shard+1 (mod N).
            assert (token - 1) % 2 == shard


class TestPlacement:
    def test_place_is_deterministic(self):
        a = ShardCoordinator(EventLoop(), 4, 96, 64)
        b = ShardCoordinator(EventLoop(), 4, 96, 64)
        keys = [f"dial-{i}" for i in range(1, 40)]
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]

    def test_place_overflows_past_refusing_shards(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64)
        keys = [f"dial-{i}" for i in range(1, 33)]
        natural = {k: coord.place(k) for k in keys}
        assert set(natural.values()) == {0, 1}  # ring actually spreads
        coord.shards[0].governor.check_admission = lambda: "full"
        for k in keys:
            assert coord.place(k) == 1  # overflow lands on the peer

    def test_place_returns_none_when_fabric_is_full(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64)
        for server in coord.shards:
            server.governor.check_admission = lambda: "full"
        assert coord.place("dial-1") is None


class TestRouting:
    def test_route_token_finds_minting_shard_via_guards(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=2, schedule_workloads=False)
        loop.run_until(0.5)
        coord.routes.clear()  # force the guard-table fallback
        for rc in rcs:
            shard = coord.route_token(rc.token)
            assert shard is not None
            assert rc.token in coord.shards[shard].resilience.guards

    def test_route_override_wins_over_guard_scan(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, schedule_workloads=False)
        loop.run_until(0.5)
        coord.note_route(rcs[0].token, 1)
        assert coord.route_token(rcs[0].token) == 1

    def test_unknown_token_routes_nowhere(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64)
        assert coord.route_token(999) is None


class TestMigrateValidation:
    def test_bad_target_and_unknown_token(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, schedule_workloads=False)
        loop.run_until(0.5)
        token = rcs[0].token
        with pytest.raises(ValueError):
            coord.migrate(token, 7)
        with pytest.raises(KeyError):
            coord.migrate(999, 1)
        with pytest.raises(ValueError):
            coord.migrate(token, coord.route_token(token))


class TestFabricLog:
    def test_admission_reports_round_trip_the_codec(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=3, schedule_workloads=False)
        loop.run_until(0.5)
        reports = coord.admission_reports()
        assert len(reports) == 2
        total = 0
        for i, report in enumerate(reports):
            assert isinstance(report, wire.ShardAdmissionReportMessage)
            assert report.shard == i and report.admitting
            total += report.sessions
        assert total == 3
        # Every report took the encode->parse round trip into the log.
        assert reports == coord.fabric_log[-2:]
        assert coord.transfer_bytes > 0

    def test_stats_shape(self):
        coord = ShardCoordinator(EventLoop(), 2, 96, 64)
        stats = coord.stats()
        assert stats["shards"] == 2 and stats["migrations"] == 0
        assert len(stats["per_shard"]) == 2
        assert "shared_cache" in stats and "relay" in stats
