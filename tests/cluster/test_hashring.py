"""Consistent-hash ring: determinism, balance, minimal disruption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing


class TestBasics:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup("anything")

    def test_single_node_owns_everything(self):
        ring = HashRing([0])
        assert all(ring.lookup(f"k{i}") == 0 for i in range(50))

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_membership_protocol(self):
        ring = HashRing([0, 1])
        assert len(ring) == 2 and 0 in ring and 2 not in ring
        assert ring.nodes == frozenset({0, 1})

    def test_add_is_idempotent_remove_is_strict(self):
        ring = HashRing([0])
        ring.add(0)
        assert len(ring) == 1
        with pytest.raises(KeyError):
            ring.remove(9)

    def test_deterministic_across_instances_and_insertion_order(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        for i in range(200):
            assert a.lookup(f"key-{i}") == b.lookup(f"key-{i}")


class TestBalanceAndDisruption:
    def test_keys_spread_over_shards(self):
        # The fabric's actual key shape: sequential dial identities.
        ring = HashRing([0, 1])
        owners = [ring.lookup(f"dial-{i}") for i in range(1, 65)]
        counts = {n: owners.count(n) for n in (0, 1)}
        # Not a statistical claim — a regression pin on the mixer: raw
        # CRC-32 of near-identical labels piled 25/32 onto one shard.
        assert min(counts.values()) >= 16, counts

    def test_adding_a_node_only_steals_keys(self):
        before = HashRing([0, 1, 2])
        after = HashRing([0, 1, 2, 3])
        moved = 0
        for i in range(300):
            old, new = before.lookup(f"k{i}"), after.lookup(f"k{i}")
            if old != new:
                assert new == 3  # keys only ever move *to* the newcomer
                moved += 1
        assert 0 < moved < 300

    def test_removing_a_node_strands_only_its_keys(self):
        full = HashRing([0, 1, 2])
        sans = HashRing([0, 1])
        for i in range(300):
            if full.lookup(f"k{i}") != 2:
                assert sans.lookup(f"k{i}") == full.lookup(f"k{i}")


class TestPreference:
    def test_preference_starts_at_owner_and_covers_all_nodes(self):
        ring = HashRing(range(4))
        for i in range(40):
            order = list(ring.preference(f"k{i}"))
            assert order[0] == ring.lookup(f"k{i}")
            assert sorted(order) == [0, 1, 2, 3]

    def test_preference_on_empty_ring_is_empty(self):
        assert list(HashRing().preference("k")) == []

    @settings(max_examples=50, deadline=None)
    @given(st.text(min_size=1, max_size=20),
           st.integers(min_value=1, max_value=6))
    def test_preference_is_a_permutation(self, key, n):
        order = list(HashRing(range(n)).preference(key))
        assert sorted(order) == list(range(n))
