"""Live migration: fidelity vs an uninterrupted twin, under chaos.

The contract under test is the ISSUE's headline: a session migrated
between shards mid-workload ends **pixel-identical** to a session that
was never migrated at all.  The rig makes that comparison literal —
every shard screen runs the same scripted workload, so the co-resident
client that never moved *is* the uninterrupted twin.

``make chaos`` runs this file at THINC_CHAOS_SEED 11, 23 and 47 with
the queue sanitizer armed; each seed selects a different random fault
schedule layered *on top of* the migration.
"""

import os

import numpy as np

from repro.net.faults import FaultPlan
from repro.protocol import wire

from tests.helpers import assert_pixel_identical, make_shard_rig

SETTLE = 12.0


def migrate_first(loop, coord, rcs, at=1.0, settle=SETTLE):
    """Attach, migrate the first client's session at *at*, settle.

    Returns ``(token, source, target, successor)``.
    """
    loop.run_until(at)
    token = rcs[0].token
    assert token, "client never attached"
    source = coord.route_token(token)
    target = (source + 1) % len(coord.shards)
    successor = coord.migrate(token, target)
    loop.run_until(settle)
    return token, source, target, successor


class TestMigrationFidelity:
    def test_migrated_session_matches_uninterrupted_twin(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=2)
        token, source, target, successor = migrate_first(loop, coord, rcs)
        # Pixel-identical to the live screen on the *new* shard...
        assert coord.route_token(token) == target
        assert_pixel_identical(rcs[0].client, screens[target])
        # ...and byte-identical to the twin that never migrated.
        assert_pixel_identical(rcs[1].client, screens[
            coord.route_token(rcs[1].token)])
        assert np.array_equal(rcs[0].client.fb.data, rcs[1].client.fb.data)
        # The client kept its token: migration looked like a blip.
        assert rcs[0].token == token

    def test_migration_outage_is_bounded_by_detach_window(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=1)
        loop.run_until(1.0)
        token = rcs[0].token
        target = (coord.route_token(token) + 1) % 2
        severed_at = loop.now
        coord.migrate(token, target)
        guard = coord.shards[target].resilience.guards[token]
        loop.run_until(SETTLE)
        # The successor guard saw the reattach well inside the detach
        # window (liveness timeout + backoff, not the 5 s budget).
        assert guard.detached_at is None  # reattached
        assert rcs[0].stats["dials"] >= 2
        assert loop.now > severed_at
        st = coord.shards[target].resilience.stats
        assert st.resyncs_replay + st.resyncs_snapshot >= 1

    def test_migrated_counters_and_journal_survive(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=1)
        loop.run_until(1.0)
        token = rcs[0].token
        source = coord.route_token(token)
        before = dict(
            coord.shards[source].resilience.guards[token].session.stats)
        successor = coord.migrate(token, (source + 1) % 2)
        after = successor.stats
        for key in ("messages_sent", "bytes_sent", "flush_periods"):
            assert after[key] >= before[key] > 0
        loop.run_until(SETTLE)
        assert_pixel_identical(rcs[0].client, screens[
            coord.route_token(token)])

    def test_there_and_back_again(self):
        loop, coord, screens, rcs = make_shard_rig(shards=2, clients=1)
        loop.run_until(0.8)
        token = rcs[0].token
        home = coord.route_token(token)
        away = (home + 1) % 2
        coord.migrate(token, away)
        loop.run_until(6.0)
        assert coord.route_token(token) == away
        coord.migrate(token, home)
        loop.run_until(SETTLE + 6.0)
        assert coord.route_token(token) == home
        assert len(coord.migrations) == 2
        assert_pixel_identical(rcs[0].client, screens[home])

    def test_fabric_log_orders_the_handoff(self):
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, schedule_workloads=False)
        loop.run_until(0.5)
        token = rcs[0].token
        coord.migrate(token, (coord.route_token(token) + 1) % 2)
        kinds = [type(m).__name__ for m in coord.fabric_log]
        begin = kinds.index("MigrateBeginMessage")
        xfer = kinds.index("SessionTransferMessage")
        done = kinds.index("MigrateCompleteMessage")
        assert begin < xfer < done
        transfer = coord.fabric_log[xfer]
        assert isinstance(transfer, wire.SessionTransferMessage)
        assert transfer.token == token and len(transfer.state) > 0
        assert coord.transfer_bytes >= len(transfer.state)


class TestMigrationUnderChaos:
    """Migration layered over random fault schedules.

    ``make chaos`` sweeps THINC_CHAOS_SEED over {11, 23, 47}; the
    default run uses seed 0.  Either way the outcome contract is the
    same: pixel-identical to the twin that saw the same faults but
    never migrated.
    """

    CHAOS_SEED = int(os.environ.get("THINC_CHAOS_SEED", "0"))

    def test_migration_survives_random_faults(self):
        plan = FaultPlan.random(seed=1000 + self.CHAOS_SEED, horizon=2.0)
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=2, plan=plan,
            workload_seed=self.CHAOS_SEED or 7)
        token, source, target, successor = migrate_first(
            loop, coord, rcs, at=1.0, settle=SETTLE + 4.0)
        assert coord.route_token(token) == target
        for rc in rcs:
            assert_pixel_identical(rc.client, screens[
                coord.route_token(rc.token)])
        assert np.array_equal(rcs[0].client.fb.data, rcs[1].client.fb.data)

    def test_migration_during_fault_window(self):
        # Fire the migration while a loss burst is actively mangling
        # the access link: the redial itself rides through the faults.
        from repro.net.faults import LossBurst
        plan = FaultPlan([LossBurst(start=0.9, duration=0.6,
                                    drop_rate=0.4)],
                         seed=self.CHAOS_SEED or 5)
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, plan=plan)
        token, source, target, successor = migrate_first(
            loop, coord, rcs, at=1.0, settle=SETTLE + 4.0)
        assert coord.route_token(token) == target
        assert_pixel_identical(rcs[0].client, screens[target])
