"""The adaptive codec plane end to end: per-tag wire round-trips,
split size hints, encoding-aware prepare caching, posture-driven
servers, and the display fuzz corpus contract."""

import numpy as np
import pytest
from dataclasses import replace

from tests.helpers import make_rig
from repro.codec import Encoding, EncoderPolicy, LinkPosture
from repro.codec.encodings import psnr
from repro.cluster.cache import SharedPrepareCache
from repro.fuzz import display_seed_corpus
from repro.net import LAN_DESKTOP, PDA_80211G
from repro.protocol.commands import RawCommand, decode_command
from repro.region import Rect

LOSSLESS_TAGS = (Encoding.NONE, Encoding.PNG, Encoding.RLE)


def random_rgba(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


def photo_workload(ws, seed=0):
    rng = np.random.default_rng(seed)
    ws.put_image(ws.screen, ws.screen.bounds,
                 rng.integers(0, 256,
                              (ws.screen.bounds.height,
                               ws.screen.bounds.width, 4), dtype=np.uint8))


class TestWireRoundTrips:
    @pytest.mark.parametrize("tag", LOSSLESS_TAGS)
    def test_lossless_tags_are_byte_exact(self, tag):
        img = random_rgba(24, 16, seed=int(tag))
        cmd = RawCommand(Rect(3, 5, 24, 16), img, tag)
        out = decode_command(cmd.encode())
        assert isinstance(out, RawCommand)
        assert out.encoding is tag
        assert np.array_equal(out.pixels, img)

    def test_lossy_tag_meets_psnr_floor(self):
        ramp = np.linspace(0, 255, 64, dtype=np.uint8)
        img = np.empty((32, 64, 4), dtype=np.uint8)
        img[:] = ramp[None, :, None]
        cmd = RawCommand(Rect(0, 0, 64, 32), img, Encoding.LOSSY)
        out = decode_command(cmd.encode())
        assert out.encoding is Encoding.LOSSY
        assert psnr(img, out.pixels) >= 30.0

    def test_lossy_then_lossless_refresh_is_exact(self):
        """The convergence contract: a lossy pass followed by a
        lossless refresh of the same rect restores exact pixels."""
        img = random_rgba(32, 32, seed=9)
        fb = np.zeros_like(img)
        lossy = decode_command(
            RawCommand(Rect(0, 0, 32, 32), img, Encoding.LOSSY).encode())
        fb[:] = lossy.pixels
        assert not np.array_equal(fb, img)
        refresh = decode_command(
            RawCommand(Rect(0, 0, 32, 32), img, Encoding.PNG).encode())
        fb[:] = refresh.pixels
        assert np.array_equal(fb, img)

    def test_rejects_out_of_range_tag(self):
        data = bytearray(
            RawCommand(Rect(0, 0, 4, 4), random_rgba(4, 4)).encode())
        data[9] = 0xEE  # type u8 + rect 4xu16, then the tag byte
        with pytest.raises(ValueError):
            decode_command(bytes(data))

    def test_with_encoding_resets_payload_memo(self):
        cmd = RawCommand(Rect(0, 0, 8, 8), random_rgba(8, 8),
                         Encoding.PNG)
        cmd.encode()
        other = cmd.with_encoding(Encoding.RLE)
        assert other.encoding is Encoding.RLE
        assert other._payload is None
        assert cmd.with_encoding(Encoding.PNG) is cmd


class TestSplitSizeHints:
    @pytest.mark.parametrize("tag", (Encoding.NONE, Encoding.RLE))
    def test_cheap_encodings_get_exact_tail_hints(self, tag):
        """NONE and RLE tails have cheap exact sizes, so the scheduler
        estimate must equal the bytes the tail actually encodes to."""
        img = np.zeros((64, 32, 4), dtype=np.uint8)
        img[::3] = 77  # banded: compressible but not solid
        cmd = RawCommand(Rect(0, 0, 32, 64), img, tag)
        head, rest = cmd.split(cmd.wire_size() // 2)
        assert rest is not None
        hinted = rest.wire_size()
        assert hinted == len(rest.encode())

    def test_split_preserves_pixels_and_encoding(self):
        img = random_rgba(16, 40, seed=1)
        cmd = RawCommand(Rect(0, 0, 16, 40), img, Encoding.LOSSY)
        head, rest = cmd.split(cmd.wire_size() // 3)
        assert head.encoding is rest.encoding is Encoding.LOSSY
        assert np.array_equal(np.vstack([head.pixels, rest.pixels]), img)


class TestEncodingAwareCaching:
    def test_shared_cache_keys_include_the_encoding(self):
        """A PNG entry may never satisfy an RLE lookup for the same
        content — the tag joins the fabric cache key outright."""
        cache = SharedPrepareCache()
        img = np.zeros((8, 8, 4), dtype=np.uint8)
        img[::2] = 9
        png = RawCommand(Rect(0, 0, 8, 8), img, Encoding.PNG)
        rle = RawCommand(Rect(0, 0, 8, 8), img, Encoding.RLE)
        scale_key = ("native",)
        cache.put(png, scale_key, ["png-entry"])
        assert cache.get(png, scale_key) == ["png-entry"]
        assert cache.get(rle, scale_key) is None

    def test_adaptive_server_caches_per_chosen_encoding(self):
        loop, conn, mon, server, ws, client = make_rig(
            adaptive_encoding=True)
        photo_workload(ws)
        loop.run_until_idle(max_time=10)
        for key in server.plane._cache:
            pid, encoding = key[0], key[1]
            assert encoding in {-1} | {int(e) for e in Encoding}


class TestAdaptiveServer:
    def test_lan_adaptive_is_pixel_exact(self):
        """Every rung the ladder uses on a LAN link (SFILL demotion,
        RLE, NONE, PNG) is lossless, so an adaptive server must
        converge to exactly the baseline framebuffer."""
        base_loop, _, _, _, base_ws, base_client = make_rig()
        adapt_loop, _, _, server, ws, client = make_rig(
            adaptive_encoding=True)
        for target_ws, target_loop in ((base_ws, base_loop),
                                       (ws, adapt_loop)):
            target_ws.fill_rect(target_ws.screen,
                                Rect(0, 0, 48, 64), (200, 30, 30, 255))
            photo_workload_rect(target_ws)
            target_loop.run_until_idle(max_time=10)
        assert client.fb.same_as(base_client.fb)
        policy = server.encoder_policy
        assert policy.demotions + sum(policy.counts.values()) > 0

    def test_congested_link_goes_lossy_then_refresh_restores(self):
        slow = replace(PDA_80211G, bandwidth_bps=256e3)
        # The small rig's driver emits 96x8 bands; size the lossy
        # floor below them so the ladder can reach its bottom rung.
        loop, conn, mon, server, ws, client = make_rig(
            link=slow, encoder_policy=EncoderPolicy(min_lossy_pixels=256))
        for seed in range(4):
            photo_workload(ws, seed=seed)
            loop.schedule(0.05, lambda: None)
            loop.run_until(loop.now + 0.05)
        loop.run_until_idle(max_time=120)
        assert server.encoder_policy.counts[Encoding.LOSSY] > 0
        # Settle, then a refresh under a quiet link restores exactness.
        loop.schedule(1.0, lambda: None)
        loop.run_until_idle(max_time=120)
        client.request_refresh(Rect(0, 0, 96, 64))
        loop.run_until_idle(max_time=120)
        screen = ws.screen.fb.read_pixels(ws.screen.bounds)
        assert np.array_equal(client.fb.read_pixels(client.fb.bounds),
                              screen)

    def test_posture_probe_memoises(self):
        loop, conn, mon, server, ws, client = make_rig(
            adaptive_encoding=True)
        first = server._encoder_posture()
        server._posture_value = LinkPosture.DEGRADED  # would change it
        assert server._encoder_posture() is LinkPosture.DEGRADED
        loop.schedule(server.posture_interval * 2, lambda: None)
        loop.run_until_idle(max_time=1)
        assert server._encoder_posture() is first

    def test_off_by_default(self):
        loop, conn, mon, server, ws, client = make_rig()
        assert server.encoder_policy is None
        assert server.plane.policy is None


def photo_workload_rect(ws, seed=3):
    rng = np.random.default_rng(seed)
    ws.put_image(ws.screen, Rect(48, 0, 48, 64),
                 rng.integers(0, 256, (64, 48, 4), dtype=np.uint8))


class TestDisplayCorpusContract:
    def test_every_seed_decodes_or_raises_value_error(self):
        """The decoder's whole contract against hostile display bytes:
        return a command or raise ValueError — nothing else."""
        corpus = display_seed_corpus()
        outcomes = []
        for payload in corpus:
            try:
                cmd = decode_command(payload)
                outcomes.append(type(cmd).__name__)
            except ValueError as exc:
                outcomes.append(f"rejected: {exc.args[0][:30]}")
        # The four valid per-tag seeds decode; the malformed tail of
        # the corpus is rejected, never crashes.
        assert outcomes[:4] == ["RawCommand"] * 4
        assert all(o.startswith("rejected") for o in outcomes[4:])
        assert len(outcomes) == len(corpus)

    def test_corpus_covers_every_encoding_tag(self):
        tags = set()
        for payload in display_seed_corpus():
            try:
                tags.add(decode_command(payload).encoding)
            except ValueError:
                pass
        assert tags == set(Encoding)
