"""The lossy RAW encoding: fidelity floors, bounded decoding, and the
integer colour-conversion fast path staying faithful to the float one."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import encodings
from repro.codec.encodings import lossy_decode, lossy_encode, psnr
from repro.protocol import compression as comp
from repro.video import yuv as yuvmod

MAX_BYTES = 1 << 20


def random_rgba(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


def gradient_rgba(w, h):
    ramp = np.linspace(0, 255, w, dtype=np.uint8)
    img = np.empty((h, w, 4), dtype=np.uint8)
    img[..., 0] = ramp
    img[..., 1] = ramp[::-1]
    img[..., 2] = np.linspace(0, 255, h, dtype=np.uint8)[:, None]
    img[..., 3] = 255
    return img


class TestFidelity:
    def test_gradient_psnr_floor(self):
        img = gradient_rgba(64, 48)
        out = lossy_decode(lossy_encode(img, qstep=8), MAX_BYTES)
        assert psnr(img, out) >= 30.0

    def test_noise_psnr_floor(self):
        img = random_rgba(64, 48, seed=3)
        out = lossy_decode(lossy_encode(img, qstep=8), MAX_BYTES)
        assert psnr(img, out) >= 10.0

    def test_solid_block_nearly_exact(self):
        img = np.full((16, 16, 4), (40, 90, 200, 255), dtype=np.uint8)
        out = lossy_decode(lossy_encode(img, qstep=1), MAX_BYTES)
        assert int(np.abs(out.astype(int) - img.astype(int)).max()) <= 4

    def test_alpha_rides_at_full_resolution(self):
        """Transparent UI degrades in colour, never in shape: alpha
        error is bounded by the quantiser alone (no subsampling)."""
        img = random_rgba(32, 32, seed=5)
        img[..., 3] = (np.arange(32)[:, None] * 8).astype(np.uint8)
        out = lossy_decode(lossy_encode(img, qstep=8), MAX_BYTES)
        err = np.abs(out[..., 3].astype(int) - img[..., 3].astype(int))
        assert int(err.max()) <= 8

    def test_odd_dimensions_preserved(self):
        img = gradient_rgba(33, 17)
        out = lossy_decode(lossy_encode(img), MAX_BYTES)
        assert out.shape == img.shape and out.dtype == np.uint8

    def test_smaller_than_png_on_photographic_content(self):
        rng = np.random.default_rng(11)
        base = gradient_rgba(96, 96).astype(np.int16)
        noisy = np.clip(base + rng.integers(-20, 21, base.shape), 0,
                        255).astype(np.uint8)
        assert len(lossy_encode(noisy)) < len(comp.png_compress(noisy))

    @given(st.integers(1, 24), st.integers(1, 24), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, w, h, seed):
        img = random_rgba(w, h, seed)
        out = lossy_decode(lossy_encode(img), MAX_BYTES)
        assert out.shape == img.shape
        err = np.abs(out[..., 3].astype(int) - img[..., 3].astype(int))
        assert int(err.max()) <= 8  # alpha bound holds for every shape


class TestIntegerColourPath:
    def test_matches_float_conversion_within_one(self):
        img = random_rgba(64, 64, seed=7)
        rgb = img[..., :3]
        # The float path subsamples the same way: average RGB first.
        yi, vi, ui = encodings._rgb_to_yv12_int(rgb)
        yf, vf, uf = yuvmod.rgb_to_yv12(rgb)
        for ours, theirs in ((yi, yf), (vi, vf), (ui, uf)):
            delta = np.abs(ours.astype(int) - theirs.astype(int))
            assert int(delta.max()) <= 1


class TestBoundedDecode:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            lossy_encode(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_rejects_bad_qstep(self):
        with pytest.raises(ValueError):
            lossy_encode(random_rgba(4, 4), qstep=0)
        with pytest.raises(ValueError):
            lossy_encode(random_rgba(4, 4), qstep=256)

    def test_rejects_truncated_payload(self):
        data = lossy_encode(random_rgba(16, 16, 1))
        with pytest.raises(ValueError):
            lossy_decode(data[:4], MAX_BYTES)
        with pytest.raises(ValueError):
            lossy_decode(data[: len(data) // 2], MAX_BYTES)

    def test_rejects_empty_geometry(self):
        data = bytearray(lossy_encode(random_rgba(8, 8, 1)))
        data[0:2] = (0).to_bytes(2, "big")  # declared height 0
        with pytest.raises(ValueError):
            lossy_decode(bytes(data), MAX_BYTES)

    def test_rejects_zero_qstep_header(self):
        data = bytearray(lossy_encode(random_rgba(8, 8, 1)))
        data[4] = 0
        with pytest.raises(ValueError):
            lossy_decode(bytes(data), MAX_BYTES)

    def test_rejects_geometry_beyond_limit(self):
        data = lossy_encode(random_rgba(16, 16, 1))
        with pytest.raises(ValueError):
            lossy_decode(data, max_pixel_bytes=16 * 16 * 4 - 1)

    def test_rejects_oversized_plane_stream(self):
        """One declared geometry, more plane bytes than it implies."""
        import struct
        import zlib
        img = random_rgba(8, 8, 1)
        good = lossy_encode(img)
        h, w, qstep = struct.unpack_from(">HHB", good, 0)
        raw = zlib.decompressobj().decompress(good[5:])
        evil = struct.pack(">HHB", h, w, qstep) + \
            zlib.compress(raw + b"\x00", 2)
        with pytest.raises(ValueError):
            lossy_decode(evil, MAX_BYTES)

    def test_protocol_wrapper_binds_global_limit(self):
        img = random_rgba(8, 8, 2)
        out = comp.lossy_decompress(comp.lossy_compress(img))
        assert out.shape == img.shape


class TestPsnr:
    def test_identical_is_infinite(self):
        img = random_rgba(4, 4, 1)
        assert psnr(img, img) == float("inf")

    def test_monotone_in_error(self):
        img = random_rgba(16, 16, 1)
        near = np.clip(img.astype(int) + 1, 0, 255).astype(np.uint8)
        far = np.clip(img.astype(int) + 16, 0, 255).astype(np.uint8)
        assert psnr(img, near) > psnr(img, far)
