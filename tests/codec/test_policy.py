"""The content classifier, the link-posture probe, and the selection
ladder that joins them."""

import numpy as np
import pytest

from repro.codec import Encoding, EncoderPolicy, LinkPosture
from repro.codec.classify import SAMPLE_BUDGET, classify


def solid(w=32, h=32, color=(10, 20, 30, 255)):
    return np.full((h, w, 4), color, dtype=np.uint8)


def chrome(w=64, h=64):
    """Two-tone desktop chrome: long horizontal runs, tiny palette."""
    img = np.full((h, w, 4), (240, 240, 240, 255), dtype=np.uint8)
    img[::8, :] = (80, 80, 80, 255)
    return img


def noise(w=64, h=64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (h, w, 4), dtype=np.uint8)


class TestClassifier:
    def test_solid_block(self):
        stats = classify(solid(color=(1, 2, 3, 4)))
        assert stats.solid_color == (1, 2, 3, 4)
        assert stats.unique_colors == 1

    def test_solid_check_is_exact(self):
        """One stray pixel anywhere defeats the solid demotion — it is
        a semantic rewrite, so sampling may not decide it."""
        img = solid(64, 64)
        img[63, 63] = (0, 0, 0, 0)
        assert classify(img).solid_color is None

    def test_chrome_is_flat(self):
        stats = classify(chrome())
        assert stats.solid_color is None
        assert stats.flat
        assert stats.unique_colors <= 2

    def test_noise_is_busy(self):
        stats = classify(noise())
        assert not stats.flat
        assert stats.run_ratio > 0.5

    def test_gradient_energy_signals_texture(self):
        # Vertical ramp: smooth in scan order (the axis the sampled
        # gradient walks), unlike a horizontal ramp with its row wraps.
        ramp = np.linspace(0, 255, 64, dtype=np.uint8)
        img = np.empty((64, 64, 4), dtype=np.uint8)
        img[:] = ramp[:, None, None]
        smooth = classify(img).gradient
        assert classify(noise()).gradient > smooth > 0.0

    def test_empty_block(self):
        stats = classify(np.zeros((0, 0, 4), dtype=np.uint8))
        assert stats.unique_colors == 1

    def test_large_blocks_are_sampled_deterministically(self):
        img = noise(512, 512, seed=2)  # 4x the sample budget
        assert img.size // 4 > SAMPLE_BUDGET
        first = classify(img)
        assert classify(img) == first
        assert not first.flat


class TestPosture:
    def make(self):
        return EncoderPolicy(saturation=0.85, backlog_horizon=0.1,
                             plentiful_headroom=0.25, lan_floor_bps=50e6)

    def test_unknown_link_is_lossless(self):
        policy = self.make()
        assert policy.posture_for(None, None) is LinkPosture.LOSSLESS
        assert policy.posture_for(1e9, None) is LinkPosture.LOSSLESS

    def test_saturated_measured_rate_degrades(self):
        policy = self.make()
        assert policy.posture_for(0.9e6, 1e6) is LinkPosture.DEGRADED
        assert policy.posture_for(0.5e6, 1e6) is LinkPosture.LOSSLESS

    def test_backlog_beyond_drain_horizon_degrades(self):
        """A queue in front of the link proves congestion before the
        measured rate does: > 0.1 s of drain at 1 Mb/s is 12.5 kB."""
        policy = self.make()
        assert policy.posture_for(0.0, 1e6, backlog_bytes=20_000) \
            is LinkPosture.DEGRADED
        assert policy.posture_for(0.0, 1e6, backlog_bytes=1_000) \
            is LinkPosture.LOSSLESS

    def test_idle_lan_is_plentiful(self):
        policy = self.make()
        assert policy.posture_for(1e6, 100e6) is LinkPosture.PLENTIFUL

    def test_idle_slow_link_is_not_plentiful(self):
        policy = self.make()
        assert policy.posture_for(0.0, 1e6) is LinkPosture.LOSSLESS

    def test_busy_lan_is_lossless(self):
        policy = self.make()
        assert policy.posture_for(50e6, 100e6) is LinkPosture.LOSSLESS

    def test_saturation_validation(self):
        with pytest.raises(ValueError):
            EncoderPolicy(saturation=0.0)
        with pytest.raises(ValueError):
            EncoderPolicy(saturation=1.5)


class TestSelectionLadder:
    def test_solid_demotes_to_sfill(self):
        policy = EncoderPolicy()
        for posture in LinkPosture:
            choice = policy.select(solid(color=(9, 9, 9, 255)), posture)
            assert choice.encoding is Encoding.NONE
            assert choice.solid_color == (9, 9, 9, 255)
        assert policy.demotions == len(LinkPosture)

    def test_flat_takes_rle_in_every_posture(self):
        policy = EncoderPolicy()
        for posture in LinkPosture:
            assert policy.select(chrome(), posture).encoding \
                is Encoding.RLE

    def test_busy_block_follows_the_posture(self):
        policy = EncoderPolicy(min_lossy_pixels=1024)
        block = noise()  # 64x64 = 4096 pixels
        assert policy.select(block, LinkPosture.LOSSLESS).encoding \
            is Encoding.PNG
        assert policy.select(block, LinkPosture.DEGRADED).encoding \
            is Encoding.LOSSY
        assert policy.select(block, LinkPosture.PLENTIFUL).encoding \
            is Encoding.NONE

    def test_small_blocks_stay_lossless(self):
        """Below min_lossy_pixels the artefact cost outweighs the
        byte savings (and raw rows their CPU savings)."""
        policy = EncoderPolicy(min_lossy_pixels=1024)
        small = noise(16, 16)
        assert policy.select(small, LinkPosture.DEGRADED).encoding \
            is Encoding.PNG
        assert policy.select(small, LinkPosture.PLENTIFUL).encoding \
            is Encoding.PNG

    def test_bool_posture_compatibility(self):
        policy = EncoderPolicy()
        assert policy.select(noise(), True).encoding is Encoding.LOSSY
        assert policy.select(noise(), False).encoding is Encoding.PNG

    def test_counts_tally_choices(self):
        policy = EncoderPolicy()
        policy.select(noise(), LinkPosture.LOSSLESS)
        policy.select(noise(), LinkPosture.DEGRADED)
        policy.select(chrome(), LinkPosture.LOSSLESS)
        policy.select(solid(), LinkPosture.LOSSLESS)
        assert policy.counts[Encoding.PNG] == 1
        assert policy.counts[Encoding.LOSSY] == 1
        assert policy.counts[Encoding.RLE] == 1
        assert policy.demotions == 1
