"""The batched codec kernels against their per-pixel/per-run oracles.

Each vectorised kernel is checked three ways: against a hand-computed
golden vector (so the byte format itself is pinned), against a naive
reference implementation transliterated from the pre-vectorisation
loops (so the rewrite provably changed speed and nothing else), and
with hypothesis round-trips.  A source-level guard then asserts the
kernels module has not regrown a per-pixel Python loop.
"""

import ast
import inspect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import kernels
from repro.protocol import compression as comp


def random_rgba(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


# -- reference implementations (the pre-vectorisation loops) ----------------

def _ref_paeth_unfilter(filtered, height, width, channels):
    """Per-pixel transliteration of the PNG Paeth unfilter."""
    f = filtered.reshape(height, width, channels).astype(np.int16)
    out = np.zeros((height, width, channels), dtype=np.int16)
    for y in range(height):
        for x in range(width):
            for c in range(channels):
                a = out[y, x - 1, c] if x > 0 else 0
                b = out[y - 1, x, c] if y > 0 else 0
                cc = out[y - 1, x - 1, c] if x > 0 and y > 0 else 0
                p = a + b - cc
                pa, pb, pc = abs(p - a), abs(p - b), abs(p - cc)
                if pa <= pb and pa <= pc:
                    pred = a
                elif pb <= pc:
                    pred = b
                else:
                    pred = cc
                out[y, x, c] = (f[y, x, c] + pred) & 0xFF
    return out.astype(np.uint8)


def _ref_rle_encode(pixels):
    """Per-run transliteration of the RLE encoder."""
    flat = np.ascontiguousarray(pixels, dtype=np.uint8).reshape(-1, 4)
    out = bytearray()
    index = 0
    while index < len(flat):
        run = 1
        while (index + run < len(flat)
               and (flat[index + run] == flat[index]).all()
               and run < 0xFFFF):
            run += 1
        out += run.to_bytes(2, "big") + flat[index].tobytes()
        index += run
    return bytes(out)


# -- golden vectors ---------------------------------------------------------

class TestGoldenVectors:
    def test_rle_bytes_are_pinned(self):
        """(count u16 BE, rgba) pairs, exactly."""
        img = np.zeros((1, 3, 4), dtype=np.uint8)
        img[0, :2] = (1, 2, 3, 4)
        img[0, 2] = (9, 8, 7, 6)
        assert kernels.rle_encode(img) == (
            b"\x00\x02\x01\x02\x03\x04" b"\x00\x01\x09\x08\x07\x06")

    def test_oversize_run_chunks_at_0xffff(self):
        img = np.full((1, 0x10001, 4), 5, dtype=np.uint8)
        body = kernels.rle_encode(img)
        assert body == (b"\xff\xff\x05\x05\x05\x05"
                        b"\x00\x02\x05\x05\x05\x05")

    def test_paeth_filter_golden(self):
        """First pixel passes through; second is left-predicted."""
        img = np.array([[[10, 20, 30, 40], [13, 22, 29, 40]]],
                       dtype=np.uint8)
        filtered = kernels.paeth_filter(img)
        assert filtered.tolist() == [[10, 20, 30, 40, 3, 2, 255, 0]]

    def test_up_filter_golden(self):
        img = np.array([[[100, 0, 0, 0]], [[90, 0, 0, 0]]], dtype=np.uint8)
        filtered = kernels.up_filter(img)
        assert filtered[0, 0] == 100 and filtered[1, 0] == 246  # -10 mod 256


# -- equivalence with the legacy loops --------------------------------------

class TestLoopEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shape", [(1, 1), (3, 17), (16, 16), (7, 5)])
    def test_paeth_unfilter_matches_reference(self, shape, seed):
        h, w = shape
        img = random_rgba(w, h, seed)
        filtered = kernels.paeth_filter(img)
        ours = kernels.paeth_unfilter(filtered, h, w, 4)
        ref = _ref_paeth_unfilter(filtered, h, w, 4)
        assert np.array_equal(ours, ref)
        assert np.array_equal(ours, img)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_rle_encode_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        # Low-cardinality pixels so real runs form.
        img = rng.integers(0, 3, size=(11, 13, 4), dtype=np.uint8)
        img[:, :, 3] = 255
        assert kernels.rle_encode(img) == _ref_rle_encode(img)

    def test_rle_encode_matches_reference_on_noise(self):
        img = random_rgba(9, 6, seed=4)
        assert kernels.rle_encode(img) == _ref_rle_encode(img)


# -- round-trips and batch equivalence --------------------------------------

class TestRoundTrips:
    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_paeth_roundtrip(self, w, h, seed):
        img = random_rgba(w, h, seed)
        out = kernels.paeth_unfilter(kernels.paeth_filter(img), h, w, 4)
        assert np.array_equal(out, img)

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_up_roundtrip(self, w, h, seed):
        img = random_rgba(w, h, seed)
        out = kernels.up_unfilter(kernels.up_filter(img), h, w, 4)
        assert np.array_equal(out, img)

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 2**16),
           st.integers(2, 64))
    @settings(max_examples=40, deadline=None)
    def test_rle_roundtrip(self, w, h, seed, cardinality):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, cardinality, (h, w, 4), dtype=np.uint8)
        body = kernels.rle_encode(img)
        out = kernels.rle_decode(body, h * w).reshape(h, w, 4)
        assert np.array_equal(out, img)

    def test_rle_size_is_exact(self):
        for seed in range(4):
            rng = np.random.default_rng(seed)
            img = rng.integers(0, 4, (13, 7, 4), dtype=np.uint8)
            assert kernels.rle_encoded_size(img) == \
                len(kernels.rle_encode(img))

    def test_rle_decode_rejects_bad_coverage(self):
        body = kernels.rle_encode(random_rgba(4, 4, 1))
        with pytest.raises(ValueError):
            kernels.rle_decode(body, 17)
        with pytest.raises(ValueError):
            kernels.rle_decode(body + b"\x00", 16)

    def test_batch_up_filter_matches_per_image(self):
        blocks = [random_rgba(8, 6, s) for s in range(5)]
        batched = kernels.batch_up_filter(np.stack(blocks))
        for block, rows in zip(blocks, batched):
            assert np.array_equal(rows, kernels.up_filter(block))

    def test_png_batch_bytes_identical_to_single(self):
        blocks = [random_rgba(8, 8, s) for s in range(4)]
        batch = comp.png_compress_batch(blocks)
        single = [comp.png_compress(b) for b in blocks]
        assert batch == single


# -- the no-per-pixel-loop guard --------------------------------------------

class TestNoPerPixelLoops:
    def _for_loops(self, module):
        tree = ast.parse(inspect.getsource(module))
        return [node for node in ast.walk(tree)
                if isinstance(node, ast.For)]

    def test_kernels_has_only_the_wavefront_loop(self):
        """The single allowed Python loop is the Paeth anti-diagonal
        wavefront — O(h + w) iterations, not O(h * w)."""
        loops = self._for_loops(kernels)
        assert len(loops) == 1
        assert loops[0].target.id == "d"

    def test_compression_module_has_no_statement_loops(self):
        assert self._for_loops(comp) == []
