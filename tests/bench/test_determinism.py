"""Simulation determinism: identical runs produce identical traces.

Everything in the testbed — workload generation, translation, the
event loop's tie-breaking, the loss process — is deterministic, so any
benchmark result is exactly reproducible.  This is also what makes the
shape assertions in benchmarks/ stable.
"""

from repro.bench.testbed import run_av_benchmark, run_web_benchmark
from repro.net import LAN_DESKTOP, LinkParams
from repro.video.stream import SyntheticVideoClip


class TestWebDeterminism:
    def test_identical_page_runs(self):
        a = run_web_benchmark("THINC", LAN_DESKTOP, "a", page_count=3,
                              width=512, height=384)
        b = run_web_benchmark("THINC", LAN_DESKTOP, "b", page_count=3,
                              width=512, height=384)
        assert [p.latency for p in a.pages] == [p.latency for p in b.pages]
        assert [p.bytes_transferred for p in a.pages] == \
            [p.bytes_transferred for p in b.pages]

    def test_baseline_runs_deterministic_too(self):
        a = run_web_benchmark("VNC", LAN_DESKTOP, "a", page_count=2,
                              width=512, height=384)
        b = run_web_benchmark("VNC", LAN_DESKTOP, "b", page_count=2,
                              width=512, height=384)
        assert a.mean_latency == b.mean_latency
        assert a.total_bytes == b.total_bytes


class TestAVDeterminism:
    def test_identical_av_runs(self):
        clip = SyntheticVideoClip(width=32, height=24, fps=24, duration=0.5)
        a = run_av_benchmark("THINC", LAN_DESKTOP, "a", clip=clip,
                             width=128, height=96)
        b = run_av_benchmark("THINC", LAN_DESKTOP, "b", clip=clip,
                             width=128, height=96)
        assert a.bytes_transferred == b.bytes_transferred
        assert a.actual_duration == b.actual_duration
        assert a.av_quality == b.av_quality

    def test_lossy_runs_deterministic(self):
        """Even the loss process is a seeded RNG, not wall-clock noise."""
        clip = SyntheticVideoClip(width=32, height=24, fps=24, duration=0.5)
        lossy = LinkParams("w", bandwidth_bps=5e6, rtt=0.02).with_loss(0.03)
        a = run_av_benchmark("THINC", lossy, "a", clip=clip,
                             width=128, height=96)
        b = run_av_benchmark("THINC", lossy, "b", clip=clip,
                             width=128, height=96)
        assert a.bytes_transferred == b.bytes_transferred
        assert a.av_quality == b.av_quality
