"""Smoke tests for the figure-regeneration experiment module.

Full-scale figure runs live in benchmarks/; these tests only verify the
experiment plumbing (tables render, rows appear, caching works) at the
smallest possible scale.
"""

import pytest

from repro.bench import experiments


class TestFig4Smoke:
    @pytest.fixture(scope="class")
    def table(self):
        return experiments.fig4_web_remote(page_count=1)

    def test_all_sites_in_table(self, table):
        for code in ("NY", "PA", "MA", "MN", "NM", "CA", "CAN", "IE",
                     "PR", "FI", "KR"):
            assert code in table

    def test_title_and_note(self, table):
        assert "Figure 4" in table
        assert "256 KB TCP windows" in table

    def test_latencies_rendered_in_ms(self, table):
        assert " ms" in table


class TestConfigTables:
    def test_web_configs_cover_three_networks(self):
        labels = [c[0] for c in experiments._WEB_CONFIGS]
        assert labels == ["LAN Desktop", "WAN Desktop", "802.11g PDA"]

    def test_pda_viewport_matches_paper(self):
        assert experiments.PDA_VIEWPORT == (320, 240)

    def test_av_pda_platform_list_matches_paper(self):
        # "Figures 5 and 6 also show 802.11g PDA small-screen results
        # for ICA, RDP, GoToMyPC, and THINC."
        assert set(experiments.AV_PDA_PLATFORMS) == {
            "THINC", "RDP", "ICA", "GoToMyPC"}


class TestCaching:
    def test_web_figures_cached_by_size(self):
        experiments._web_cache.clear()
        # Two calls at the same size return the same object.
        first = experiments.web_figures(page_count=1)
        second = experiments.web_figures(page_count=1)
        assert first is second
        experiments._web_cache.clear()
