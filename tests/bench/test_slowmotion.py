"""Tests for slow-motion benchmarking result types."""

import pytest

from repro.bench.slowmotion import (AVRunResult, PageMeasurement,
                                    WebRunResult, measure_page)
from repro.net import PacketMonitor


def av(frames_received=100, frames_sent=100, actual=10.0, ideal=10.0,
       nbytes=10**6, audio=True, aq=1.0, scale=1.0):
    return AVRunResult(platform="T", network="lan",
                       frames_sent=frames_sent,
                       frames_received=frames_received,
                       ideal_duration=ideal, actual_duration=actual,
                       bytes_transferred=nbytes, audio_supported=audio,
                       audio_quality=aq, full_duration_scale=scale)


class TestWebRunResult:
    def test_means(self):
        r = WebRunResult("T", "lan", pages=[
            PageMeasurement(0, 0.0, 0.1, 0.12, 1000),
            PageMeasurement(1, 1.0, 0.3, 0.36, 3000),
        ])
        assert r.mean_latency == pytest.approx(0.2)
        assert r.mean_latency_with_processing == pytest.approx(0.24)
        assert r.mean_page_bytes == pytest.approx(2000)
        assert r.total_bytes == 4000


class TestAVRunResult:
    def test_perfect_quality(self):
        assert av().av_quality == pytest.approx(1.0)

    def test_drops_scale_quality(self):
        assert av(frames_received=50).av_quality == pytest.approx(0.5)

    def test_stretch_scales_quality(self):
        assert av(actual=20.0).av_quality == pytest.approx(0.5)

    def test_audio_lateness_degrades_slightly(self):
        good = av(aq=1.0).av_quality
        bad = av(aq=0.0).av_quality
        assert bad == pytest.approx(0.9)
        assert good > bad

    def test_video_only_platform_ignores_audio(self):
        assert av(audio=False, aq=0.0).av_quality == pytest.approx(1.0)

    def test_bandwidth(self):
        r = av(nbytes=10**6, actual=8.0)
        assert r.bandwidth_mbps == pytest.approx(1.0)

    def test_extrapolation(self):
        r = av(nbytes=10**6, scale=6.95)
        assert r.total_bytes_full_clip == pytest.approx(6.95e6)


class TestMeasurePage:
    def test_reads_trace_window(self):
        mon = PacketMonitor()
        mon.record(1.0, "client->server", 40)
        mon.record(1.1, "server->client", 1000)
        mon.record(1.4, "server->client", 500)
        m = measure_page(mon, 0, click_time=1.0, end_time=2.0,
                         processing_time_delta=0.05)
        assert m.latency == pytest.approx(0.4)
        assert m.latency_with_processing == pytest.approx(0.45)
        assert m.bytes_transferred == 1540

    def test_no_response_measures_zero(self):
        mon = PacketMonitor()
        m = measure_page(mon, 0, click_time=1.0, end_time=2.0,
                         processing_time_delta=0.0)
        assert m.latency == 0.0
        assert m.bytes_transferred == 0
