"""Tests for the Table 2 remote-site models."""

from repro.bench.sites import (DEFAULT_WINDOW, PLANETLAB_WINDOW,
                               REMOTE_SITES, site_link)


class TestTable2:
    def test_all_eleven_sites_present(self):
        assert len(REMOTE_SITES) == 11
        codes = [s.code for s in REMOTE_SITES]
        assert codes == ["NY", "PA", "MA", "MN", "NM", "CA", "CAN", "IE",
                         "PR", "FI", "KR"]

    def test_planetlab_flags_match_paper(self):
        planetlab = {s.code for s in REMOTE_SITES if s.planetlab}
        assert planetlab == {"NY", "PA", "MA", "MN", "CAN", "KR"}

    def test_distances_match_paper(self):
        by_code = {s.code: s.distance_miles for s in REMOTE_SITES}
        assert by_code["NY"] == 5
        assert by_code["KR"] == 6885
        assert by_code["FI"] == 4123

    def test_rtt_grows_with_distance(self):
        ordered = sorted(REMOTE_SITES, key=lambda s: s.distance_miles)
        rtts = [s.rtt for s in ordered]
        assert rtts == sorted(rtts)

    def test_rtt_plausible_ranges(self):
        by_code = {s.code: s for s in REMOTE_SITES}
        assert by_code["NY"].rtt < 0.01
        assert 0.05 < by_code["FI"].rtt < 0.2
        assert 0.15 < by_code["KR"].rtt < 0.3


class TestSiteLinks:
    def test_windows_match_constraints(self):
        for site in REMOTE_SITES:
            link = site_link(site)
            if site.planetlab:
                assert link.tcp_window == PLANETLAB_WINDOW
            else:
                assert link.tcp_window == DEFAULT_WINDOW

    def test_korea_is_window_limited_below_video_rate(self):
        """The Figure 7 anomaly: 256 KB / RTT < the ~24 Mbps stream."""
        kr = next(s for s in REMOTE_SITES if s.code == "KR")
        link = site_link(kr)
        assert link.throughput * 8 / 1e6 < 24

    def test_finland_supports_video_rate(self):
        fi = next(s for s in REMOTE_SITES if s.code == "FI")
        link = site_link(fi)
        assert link.throughput * 8 / 1e6 > 24
