"""Tests for table formatting helpers."""

from repro.bench.reporting import (format_mbytes, format_ms, format_pct,
                                   format_table)


class TestFormatters:
    def test_ms(self):
        assert format_ms(0.0621) == "62 ms"
        assert format_ms(2.5) == "2500 ms"

    def test_bytes(self):
        assert format_mbytes(117e6) == "117.0 MB"
        assert format_mbytes(35_100) == "35.1 KB"

    def test_pct(self):
        assert format_pct(0.998) == "99.8%"
        assert format_pct(1.0) == "100.0%"


class TestTable:
    def test_alignment_and_structure(self):
        table = format_table("T", ["a", "bee"],
                             [["x", 1], ["long", 22]])
        lines = table.splitlines()
        assert lines[1] == "T"
        header = next(l for l in lines if l.startswith("a"))
        rows = lines[lines.index(header) + 2 :]
        assert rows[0].startswith("x")
        assert rows[1].startswith("long")
        # Columns align: 'bee' column starts at the same offset.
        assert header.index("bee") == rows[1].index("22")

    def test_note_rendered(self):
        table = format_table("T", ["a"], [["1"]], note="hello")
        assert table.endswith("note: hello")

    def test_empty_rows_ok(self):
        table = format_table("T", ["a", "b"], [])
        assert "T" in table


class TestBarChart:
    def test_bars_scale_to_peak(self):
        from repro.bench.reporting import bar_chart

        chart = bar_chart("t", [("a", 1.0), ("b", 2.0)], unit="s")
        lines = chart.splitlines()
        bar_a = lines[2].count("#")
        bar_b = lines[3].count("#")
        assert bar_b > bar_a
        assert "2s" in lines[3]

    def test_empty(self):
        from repro.bench.reporting import bar_chart

        assert "(no data)" in bar_chart("t", [])

    def test_zero_values_render(self):
        from repro.bench.reporting import bar_chart

        chart = bar_chart("t", [("a", 0.0)])
        assert "a" in chart
