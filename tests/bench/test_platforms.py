"""Tests for the uniform platform adapters."""

import pytest

from repro.baselines.gotomypc import MIN_VIEWPORT, RELAY_EXTRA_RTT
from repro.bench.platforms import PLATFORMS, make_platform
from repro.net import EventLoop, LAN_DESKTOP
from repro.region import Rect

RED = (255, 0, 0, 255)


class TestRegistry:
    def test_all_eight_platforms(self):
        assert set(PLATFORMS) == {"THINC", "VNC", "GoToMyPC", "SunRay",
                                  "X", "NX", "RDP", "ICA"}

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            make_platform("Tarantella", EventLoop(), LAN_DESKTOP)


class TestCapabilityMatrix:
    """Paper Section 8: which systems support what."""

    def test_audio_support(self):
        no_audio = {"VNC", "GoToMyPC"}
        for name, cls in PLATFORMS.items():
            assert cls.supports_audio == (name not in no_audio), name

    def test_color_depth(self):
        for name, cls in PLATFORMS.items():
            expected = 8 if name == "GoToMyPC" else 24
            assert cls.color_depth == expected, name

    def test_resize_models(self):
        assert PLATFORMS["THINC"].resize_model == "server"
        assert PLATFORMS["ICA"].resize_model == "client"
        assert PLATFORMS["GoToMyPC"].resize_model == "client"
        assert PLATFORMS["RDP"].resize_model == "clip"
        assert PLATFORMS["X"].resize_model == "none"
        assert PLATFORMS["SunRay"].resize_model == "none"


class TestPlatformBehaviour:
    @pytest.mark.parametrize("name", sorted(PLATFORMS))
    def test_end_to_end_update_flow(self, name):
        loop = EventLoop()
        platform = make_platform(name, loop, LAN_DESKTOP,
                                 width=128, height=96)
        platform.window_server.fill_rect(platform.window_server.screen,
                                         Rect(0, 0, 32, 32), RED)
        loop.run_until_idle(max_time=10)
        assert platform.bytes_transferred() > 0
        assert platform.last_update_time() > 0

    @pytest.mark.parametrize("name", sorted(PLATFORMS))
    def test_input_round_trip(self, name):
        loop = EventLoop()
        platform = make_platform(name, loop, LAN_DESKTOP,
                                 width=128, height=96)
        seen = []
        platform.set_input_handler(lambda x, y: seen.append((x, y)))
        platform.send_client_input(12, 34)
        loop.run_until_idle(max_time=5)
        assert seen == [(12, 34)]

    def test_gotomypc_link_includes_relay(self):
        loop = EventLoop()
        platform = make_platform("GoToMyPC", loop, LAN_DESKTOP)
        assert platform.link.effective_rtt == pytest.approx(
            LAN_DESKTOP.rtt + RELAY_EXTRA_RTT)

    def test_gotomypc_viewport_floor(self):
        loop = EventLoop()
        platform = make_platform("GoToMyPC", loop, LAN_DESKTOP,
                                 viewport=(320, 240))
        assert platform.viewport == MIN_VIEWPORT

    def test_audio_dropped_by_unsupporting_platforms(self):
        loop = EventLoop()
        platform = make_platform("VNC", loop, LAN_DESKTOP,
                                 width=128, height=96)
        platform.submit_audio(0.0, b"\x00" * 1000)
        loop.run_until_idle(max_time=2)
        assert platform.audio_chunks_received() == 0

    def test_audio_delivered_by_supporting_platforms(self):
        loop = EventLoop()
        platform = make_platform("SunRay", loop, LAN_DESKTOP,
                                 width=128, height=96)
        platform.submit_audio(0.0, b"\x00" * 1000)
        loop.run_until_idle(max_time=2)
        assert platform.audio_chunks_received() == 1

    def test_thinc_feature_toggles(self):
        loop = EventLoop()
        platform = make_platform("THINC", loop, LAN_DESKTOP, width=128,
                                 height=96, offscreen_awareness=False,
                                 compress_raw=False)
        driver = platform.server.driver
        assert not driver.offscreen_awareness
        assert not driver.compress_raw
