"""Integration tests for the benchmark testbed (small workloads)."""

import pytest

from repro.baselines import LocalPCModel
from repro.bench.testbed import (run_av_benchmark, run_typing_benchmark,
                                 run_web_benchmark)
from repro.core.scheduler import FIFOScheduler
from repro.net import LAN_DESKTOP, WAN_DESKTOP, LinkParams
from repro.video.stream import SyntheticVideoClip


class TestWebRunner:
    def test_thinc_small_run(self):
        r = run_web_benchmark("THINC", LAN_DESKTOP, "lan", page_count=3,
                              width=512, height=384)
        assert len(r.pages) == 3
        assert r.mean_latency > 0
        assert r.mean_page_bytes > 1000
        assert r.mean_latency_with_processing >= r.mean_latency

    def test_pages_are_separable(self):
        r = run_web_benchmark("THINC", LAN_DESKTOP, "lan", page_count=3,
                              width=512, height=384)
        clicks = [p.click_time for p in r.pages]
        assert clicks == sorted(clicks)
        assert all(b - a >= 0.7 for a, b in zip(clicks, clicks[1:]))

    def test_wan_latency_exceeds_lan(self):
        lan = run_web_benchmark("THINC", LAN_DESKTOP, "lan", page_count=3,
                                width=512, height=384)
        wan = run_web_benchmark("THINC", WAN_DESKTOP, "wan", page_count=3,
                                width=512, height=384, wan_mode=True)
        assert wan.mean_latency > lan.mean_latency

    def test_platform_kwargs_forwarded(self):
        on = run_web_benchmark("THINC", LAN_DESKTOP, "lan", page_count=2,
                               width=512, height=384)
        off = run_web_benchmark("THINC", LAN_DESKTOP, "lan", page_count=2,
                                width=512, height=384,
                                offscreen_awareness=False)
        assert off.mean_page_bytes > on.mean_page_bytes


class TestAVRunner:
    def test_thinc_perfect_on_lan(self):
        clip = SyntheticVideoClip(width=64, height=48, fps=24, duration=1.0)
        r = run_av_benchmark("THINC", LAN_DESKTOP, "lan", width=256,
                             height=192, clip=clip)
        assert r.av_quality > 0.99
        assert r.frames_received == clip.frame_count
        assert r.audio_supported and r.audio_quality > 0.9

    def test_quality_collapses_on_starved_link(self):
        clip = SyntheticVideoClip(width=64, height=48, fps=24, duration=1.0)
        thin = LinkParams("thin", bandwidth_bps=0.3e6, rtt=0.01)
        r = run_av_benchmark("THINC", thin, "thin", width=256, height=192,
                             clip=clip, send_buffer=7000)
        assert r.av_quality < 0.8

    def test_max_frames_and_extrapolation(self):
        clip = SyntheticVideoClip(width=64, height=48, fps=24, duration=2.0)
        r = run_av_benchmark("THINC", LAN_DESKTOP, "lan", width=256,
                             height=192, clip=clip, max_frames=12)
        assert r.frames_sent == 12
        assert r.full_duration_scale == pytest.approx(clip.frame_count / 12)
        assert r.total_bytes_full_clip > r.bytes_transferred


class TestTypingRunner:
    def test_all_echoes_delivered(self):
        latencies = run_typing_benchmark(LAN_DESKTOP, keys=5)
        assert len(latencies) == 5
        assert all(l > 0 for l in latencies)

    def test_srsf_beats_fifo_under_congestion(self):
        import statistics

        dsl = LinkParams("dsl", bandwidth_bps=8e6, rtt=0.03)
        srsf = run_typing_benchmark(dsl, keys=10)
        fifo = run_typing_benchmark(dsl, scheduler_factory=FIFOScheduler,
                                    keys=10)
        assert statistics.mean(srsf) < statistics.mean(fifo)


class TestLocalPCModel:
    def test_page_metrics(self):
        model = LocalPCModel()
        latency, nbytes = model.page_metrics(100_000, 1_000_000,
                                             LAN_DESKTOP)
        assert nbytes == 100_000
        assert 0 < latency < 1.0

    def test_slow_client_dominates_latency(self):
        fast = LocalPCModel(cpu_slowdown=1.0)
        slow = LocalPCModel(cpu_slowdown=3.0)
        f, _ = fast.page_metrics(100_000, 1_000_000, LAN_DESKTOP)
        s, _ = slow.page_metrics(100_000, 1_000_000, LAN_DESKTOP)
        assert s > f

    def test_video_perfect_when_link_carries_bitrate(self):
        model = LocalPCModel()
        quality, nbytes = model.video_metrics(34.75, LAN_DESKTOP)
        assert quality == 1.0
        assert nbytes < 6e6

    def test_video_degrades_below_bitrate(self):
        model = LocalPCModel()
        modem = LinkParams("modem", bandwidth_bps=0.5e6, rtt=0.1)
        quality, _ = model.video_metrics(34.75, modem)
        assert quality < 0.5
