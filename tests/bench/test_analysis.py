"""Tests for the post-run analysis helpers."""

import pytest

from repro.bench.analysis import (bandwidth_timeline, command_mix,
                                  latency_stats)
from repro.net import PacketMonitor
from repro.protocol import wire
from repro.protocol.commands import SFillCommand
from repro.protocol.trace import TraceRecord
from repro.region import Rect

RED = (200, 0, 0, 255)


def make_records():
    msgs = [
        wire.ScreenInitMessage(64, 48),
        SFillCommand(Rect(0, 0, 8, 8), RED),
        SFillCommand(Rect(8, 0, 8, 8), RED),
        wire.AudioChunkMessage(0.0, b"\x00" * 100),
    ]
    return [TraceRecord(0.1 * i, wire.encode_message(m))
            for i, m in enumerate(msgs)]


class TestCommandMix:
    def test_counts_and_shares(self):
        mix = command_mix(make_records())
        assert mix.counts["sfill"] == 2
        assert mix.counts["AudioChunkMessage"] == 1
        assert mix.total_commands == 4
        assert 0 < mix.share("sfill") < 1
        assert mix.share("nonexistent") == 0.0

    def test_table_rows_sorted_by_bytes(self):
        mix = command_mix(make_records())
        rows = mix.table_rows()
        byte_cols = [int(r[2].replace(",", "")) for r in rows]
        assert byte_cols == sorted(byte_cols, reverse=True)

    def test_empty_trace(self):
        mix = command_mix([])
        assert mix.total_commands == 0
        assert mix.share("sfill") == 0.0


class TestLatencyStats:
    def test_order_statistics(self):
        stats = latency_stats([0.010, 0.020, 0.030, 0.040, 0.100])
        assert stats.count == 5
        assert stats.mean == pytest.approx(0.040)
        assert stats.median == pytest.approx(0.030)
        assert stats.maximum == pytest.approx(0.100)
        assert stats.p95 == pytest.approx(0.100)

    def test_single_sample(self):
        stats = latency_stats([0.05])
        assert stats.median == stats.p95 == stats.maximum == 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_stats([])

    def test_row_rendering(self):
        row = latency_stats([0.01, 0.02]).row("srsf")
        assert row[0] == "srsf"
        assert row[1] == "2"
        assert all("ms" in cell for cell in row[2:])


class TestBandwidthTimeline:
    def test_bucketing(self):
        mon = PacketMonitor()
        mon.record(0.1, "server->client", 125_000)  # 1 Mbit
        mon.record(0.2, "server->client", 125_000)
        mon.record(1.1, "server->client", 125_000)
        mon.record(1.2, "client->server", 999_999)  # other direction
        timeline = bandwidth_timeline(mon, bucket=1.0)
        assert timeline == [(0.0, pytest.approx(2.0)),
                            (1.0, pytest.approx(1.0))]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            bandwidth_timeline(PacketMonitor(), bucket=0)
