"""Tests for wire-format framing and control messages."""

import numpy as np
import pytest

from repro.protocol import (AudioChunkMessage, InputMessage, RawCommand,
                            ResizeMessage, ScreenInitMessage, SFillCommand,
                            VideoMoveMessage, VideoSetupMessage,
                            VideoTeardownMessage, encode_message,
                            parse_messages)
from repro.region import Rect


def roundtrip(*messages):
    stream = b"".join(encode_message(m) for m in messages)
    return parse_messages(stream)


class TestControlMessages:
    def test_video_setup(self):
        msg = VideoSetupMessage(7, "YV12", 352, 240, Rect(10, 20, 704, 480))
        (out,) = roundtrip(msg)
        assert out == msg

    def test_video_move(self):
        msg = VideoMoveMessage(7, Rect(0, 0, 100, 80))
        (out,) = roundtrip(msg)
        assert out == msg

    def test_video_teardown(self):
        (out,) = roundtrip(VideoTeardownMessage(9))
        assert out == VideoTeardownMessage(9)

    def test_audio_chunk(self):
        msg = AudioChunkMessage(1.375, b"\x01\x02\x03" * 100)
        (out,) = roundtrip(msg)
        assert out.timestamp == 1.375
        assert out.samples == msg.samples

    def test_input(self):
        msg = InputMessage("mouse-click", 512, 384, 2.5)
        (out,) = roundtrip(msg)
        assert out == msg

    def test_resize_and_init(self):
        outs = roundtrip(ResizeMessage(320, 240), ScreenInitMessage(1024, 768))
        assert outs == [ResizeMessage(320, 240), ScreenInitMessage(1024, 768)]


class TestMixedStreams:
    def test_commands_and_controls_interleave(self):
        rng = np.random.default_rng(0)
        raw = RawCommand(Rect(0, 0, 4, 4),
                         rng.integers(0, 256, (4, 4, 4), dtype=np.uint8))
        outs = roundtrip(
            ScreenInitMessage(64, 48),
            SFillCommand(Rect(0, 0, 64, 48), (10, 20, 30, 255)),
            raw,
            InputMessage("key", 0, 0, 1.0),
        )
        assert isinstance(outs[0], ScreenInitMessage)
        assert isinstance(outs[1], SFillCommand)
        assert isinstance(outs[2], RawCommand)
        assert np.array_equal(outs[2].pixels, raw.pixels)
        assert isinstance(outs[3], InputMessage)

    def test_empty_stream(self):
        assert parse_messages(b"") == []

    def test_truncated_frame_rejected(self):
        data = encode_message(ScreenInitMessage(10, 10))
        with pytest.raises(ValueError):
            parse_messages(data[:-1])
        with pytest.raises(ValueError):
            parse_messages(data + b"\x10")
