"""Tests for the THINC protocol command objects (Table 1 coverage)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.display import Framebuffer, solid_pixels
from repro.protocol import (BitmapCommand, CompositeCommand, CopyCommand,
                            OverwriteClass, PFillCommand, RawCommand,
                            SFillCommand, VideoFrameCommand, decode_command)
from repro.region import Rect
from repro.video import yuv

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
BLUE = (0, 0, 255, 255)


def rgba_block(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


def checker_tile():
    tile = np.zeros((4, 4, 4), dtype=np.uint8)
    tile[:2, :2] = RED
    tile[2:, 2:] = RED
    tile[..., 3] = 255
    return tile


class TestTable1Coverage:
    """Every Table 1 command exists with the documented semantics."""

    def test_all_five_commands_present(self):
        kinds = {cls.kind for cls in (RawCommand, CopyCommand, SFillCommand,
                                      PFillCommand, BitmapCommand)}
        assert kinds == {"raw", "copy", "sfill", "pfill", "bitmap"}

    def test_overwrite_classes(self):
        raw = RawCommand(Rect(0, 0, 2, 2), rgba_block(2, 2))
        copy = CopyCommand(0, 0, Rect(4, 4, 2, 2))
        sfill = SFillCommand(Rect(0, 0, 2, 2), RED)
        pfill = PFillCommand(Rect(0, 0, 8, 8), checker_tile())
        mask = np.ones((2, 2), dtype=bool)
        bmp_opaque = BitmapCommand(Rect(0, 0, 2, 2), mask, RED, GREEN)
        bmp_trans = BitmapCommand(Rect(0, 0, 2, 2), mask, RED, None)
        comp = CompositeCommand(Rect(0, 0, 2, 2), rgba_block(2, 2))
        assert raw.overwrite_class is OverwriteClass.PARTIAL
        assert copy.overwrite_class is OverwriteClass.PARTIAL
        assert sfill.overwrite_class is OverwriteClass.COMPLETE
        assert pfill.overwrite_class is OverwriteClass.PARTIAL
        assert bmp_opaque.overwrite_class is OverwriteClass.PARTIAL
        assert bmp_trans.overwrite_class is OverwriteClass.TRANSPARENT
        assert comp.overwrite_class is OverwriteClass.TRANSPARENT

    def test_transparent_has_empty_opaque_region(self):
        mask = np.ones((2, 2), dtype=bool)
        cmd = BitmapCommand(Rect(0, 0, 2, 2), mask, RED, None)
        assert cmd.opaque_region.is_empty
        opaque = BitmapCommand(Rect(0, 0, 2, 2), mask, RED, GREEN)
        assert opaque.opaque_region.area == 4

    def test_empty_rect_rejected(self):
        with pytest.raises(ValueError):
            SFillCommand(Rect(0, 0, 0, 0), RED)


class TestEncodeDecode:
    def roundtrip(self, cmd):
        return decode_command(cmd.encode())

    def test_raw_roundtrip_compressed(self):
        pixels = rgba_block(7, 5, seed=1)
        cmd = RawCommand(Rect(3, 4, 7, 5), pixels)
        out = self.roundtrip(cmd)
        assert out.dest == cmd.dest
        assert np.array_equal(out.pixels, pixels)

    def test_raw_roundtrip_uncompressed(self):
        pixels = rgba_block(7, 5, seed=2)
        cmd = RawCommand(Rect(0, 0, 7, 5), pixels, compress=False)
        out = self.roundtrip(cmd)
        assert not out.compress
        assert np.array_equal(out.pixels, pixels)

    def test_copy_roundtrip(self):
        cmd = CopyCommand(10, 20, Rect(30, 40, 5, 6))
        out = self.roundtrip(cmd)
        assert (out.src_x, out.src_y) == (10, 20)
        assert out.dest == Rect(30, 40, 5, 6)

    def test_sfill_roundtrip(self):
        out = self.roundtrip(SFillCommand(Rect(1, 2, 3, 4), BLUE))
        assert out.color == BLUE
        assert out.dest == Rect(1, 2, 3, 4)

    def test_pfill_roundtrip_draws_identically(self):
        cmd = PFillCommand(Rect(3, 5, 16, 12), checker_tile(), origin=(1, 2))
        out = self.roundtrip(cmd)
        fb1, fb2 = Framebuffer(32, 32), Framebuffer(32, 32)
        cmd.apply(fb1)
        out.apply(fb2)
        assert fb1.same_as(fb2)

    def test_bitmap_roundtrip(self):
        rng = np.random.default_rng(5)
        mask = rng.integers(0, 2, size=(6, 11)).astype(bool)
        cmd = BitmapCommand(Rect(2, 2, 11, 6), mask, RED, GREEN)
        out = self.roundtrip(cmd)
        assert np.array_equal(out.mask, mask)
        assert out.fg == RED and out.bg == GREEN

    def test_bitmap_transparent_roundtrip(self):
        mask = np.eye(4, dtype=bool)
        cmd = BitmapCommand(Rect(0, 0, 4, 4), mask, RED, None)
        out = self.roundtrip(cmd)
        assert out.bg is None

    def test_composite_roundtrip(self):
        pixels = rgba_block(4, 4, seed=6)
        out = self.roundtrip(CompositeCommand(Rect(1, 1, 4, 4), pixels))
        assert np.array_equal(out.pixels, pixels)

    def test_vframe_roundtrip(self):
        rgb = np.full((12, 16, 3), 90, dtype=np.uint8)
        data = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        cmd = VideoFrameCommand(3, Rect(0, 0, 32, 24), 16, 12, data)
        out = self.roundtrip(cmd)
        assert out.stream_id == 3
        assert out.yuv_bytes == data

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            decode_command(b"\xee" + b"\x00" * 16)

    def test_wire_size_matches_encoding(self):
        for cmd in [
            RawCommand(Rect(0, 0, 4, 4), rgba_block(4, 4)),
            CopyCommand(0, 0, Rect(4, 4, 2, 2)),
            SFillCommand(Rect(0, 0, 9, 9), RED),
            PFillCommand(Rect(0, 0, 8, 8), checker_tile()),
            BitmapCommand(Rect(0, 0, 4, 4), np.eye(4, dtype=bool), RED),
        ]:
            assert cmd.wire_size() == len(cmd.encode())

    def test_copy_is_tiny_regardless_of_area(self):
        cmd = CopyCommand(0, 0, Rect(0, 0, 500, 400))
        assert cmd.wire_size() < 32


class TestApply:
    def test_each_command_draws_like_its_driver_op(self):
        fb = Framebuffer(32, 32)
        SFillCommand(Rect(0, 0, 8, 8), RED).apply(fb)
        assert tuple(fb.data[0, 0]) == RED
        RawCommand(Rect(8, 0, 4, 4), solid_pixels(4, 4, GREEN)).apply(fb)
        assert tuple(fb.data[0, 8]) == GREEN
        CopyCommand(0, 0, Rect(16, 16, 8, 8)).apply(fb)
        assert tuple(fb.data[16, 16]) == RED
        PFillCommand(Rect(0, 16, 8, 8), checker_tile()).apply(fb)
        BitmapCommand(Rect(24, 24, 4, 4), np.ones((4, 4), bool), BLUE).apply(fb)
        assert tuple(fb.data[24, 24]) == BLUE

    def test_vframe_apply_scales(self):
        rgb = np.full((12, 16, 3), 200, dtype=np.uint8)
        data = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        fb = Framebuffer(64, 48)
        VideoFrameCommand(1, Rect(0, 0, 64, 48), 16, 12, data).apply(fb)
        assert abs(int(fb.data[40, 60, 0]) - 200) < 8


class TestClipping:
    def test_raw_clip_extracts_pixels(self):
        pixels = rgba_block(8, 8, seed=7)
        cmd = RawCommand(Rect(10, 10, 8, 8), pixels)
        parts = cmd.clipped([Rect(12, 12, 2, 2)])
        assert len(parts) == 1
        assert parts[0].dest == Rect(12, 12, 2, 2)
        assert np.array_equal(parts[0].pixels, pixels[2:4, 2:4])

    def test_copy_clip_shifts_source(self):
        cmd = CopyCommand(5, 5, Rect(20, 20, 10, 10))
        (part,) = cmd.clipped([Rect(22, 23, 4, 4)])
        assert (part.src_x, part.src_y) == (7, 8)

    def test_clip_draws_same_pixels_as_original(self):
        """Clipped fragments reproduce the original inside their rects."""
        pixels = rgba_block(8, 8, seed=8)
        cmd = RawCommand(Rect(0, 0, 8, 8), pixels)
        keep = [Rect(0, 0, 3, 8), Rect(5, 2, 3, 4)]
        full = Framebuffer(8, 8)
        cmd.apply(full)
        partial = Framebuffer(8, 8)
        for part in cmd.clipped(keep):
            part.apply(partial)
        for r in keep:
            assert np.array_equal(full.read_pixels(r), partial.read_pixels(r))

    def test_clip_outside_returns_nothing(self):
        cmd = SFillCommand(Rect(0, 0, 4, 4), RED)
        assert cmd.clipped([Rect(10, 10, 2, 2)]) == []

    def test_vframe_clip_is_all_or_nothing(self):
        rgb = np.full((12, 16, 3), 90, dtype=np.uint8)
        data = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        cmd = VideoFrameCommand(1, Rect(0, 0, 32, 24), 16, 12, data)
        assert cmd.clipped([Rect(0, 0, 1, 1)]) == [cmd]
        assert cmd.clipped([Rect(100, 100, 4, 4)]) == []


class TestMerging:
    def test_raw_vertical_merge(self):
        """Scan-line image chunks coalesce into one command."""
        top = RawCommand(Rect(0, 0, 8, 2), rgba_block(8, 2, 1))
        bottom = RawCommand(Rect(0, 2, 8, 2), rgba_block(8, 2, 2))
        merged = top.try_merge(bottom)
        assert merged is not None
        assert merged.dest == Rect(0, 0, 8, 4)
        fb1, fb2 = Framebuffer(8, 8), Framebuffer(8, 8)
        top.apply(fb1)
        bottom.apply(fb1)
        merged.apply(fb2)
        assert fb1.same_as(fb2)

    def test_raw_merge_rejects_gap(self):
        a = RawCommand(Rect(0, 0, 8, 2), rgba_block(8, 2, 1))
        b = RawCommand(Rect(0, 3, 8, 2), rgba_block(8, 2, 2))
        assert a.try_merge(b) is None

    def test_sfill_merge_same_color_only(self):
        a = SFillCommand(Rect(0, 0, 4, 4), RED)
        b = SFillCommand(Rect(4, 0, 4, 4), RED)
        c = SFillCommand(Rect(4, 0, 4, 4), GREEN)
        assert a.try_merge(b).dest == Rect(0, 0, 8, 4)
        assert a.try_merge(c) is None

    def test_bitmap_glyph_merge_across_gap(self):
        """Adjacent transparent glyphs merge across the spacing column."""
        m = np.ones((7, 5), dtype=bool)
        a = BitmapCommand(Rect(0, 0, 5, 7), m, RED, None)
        b = BitmapCommand(Rect(6, 0, 5, 7), m, RED, None)
        merged = a.try_merge(b)
        assert merged is not None
        assert merged.dest == Rect(0, 0, 11, 7)
        # Gap column carries zero bits.
        assert not merged.mask[:, 5].any()

    def test_opaque_bitmap_merge_requires_exact_adjacency(self):
        m = np.ones((4, 4), dtype=bool)
        a = BitmapCommand(Rect(0, 0, 4, 4), m, RED, GREEN)
        gap = BitmapCommand(Rect(5, 0, 4, 4), m, RED, GREEN)
        adjacent = BitmapCommand(Rect(4, 0, 4, 4), m, RED, GREEN)
        assert a.try_merge(gap) is None
        assert a.try_merge(adjacent) is not None

    def test_pfill_merge_same_tile(self):
        tile = checker_tile()
        a = PFillCommand(Rect(0, 0, 8, 4), tile)
        b = PFillCommand(Rect(0, 4, 8, 4), tile)
        merged = a.try_merge(b)
        assert merged.dest == Rect(0, 0, 8, 8)

    def test_cross_kind_merge_refused(self):
        a = SFillCommand(Rect(0, 0, 4, 4), RED)
        b = RawCommand(Rect(4, 0, 4, 4), rgba_block(4, 4))
        assert a.try_merge(b) is None


class TestSplitting:
    def test_raw_split_preserves_output(self):
        pixels = rgba_block(16, 16, seed=9)
        cmd = RawCommand(Rect(0, 0, 16, 16), pixels, compress=False)
        head, rest = cmd.split(cmd.wire_size() // 3)
        assert rest is not None
        fb1, fb2 = Framebuffer(16, 16), Framebuffer(16, 16)
        cmd.apply(fb1)
        head.apply(fb2)
        while rest is not None:
            nxt, rest = rest.split(cmd.wire_size() // 3)
            nxt.apply(fb2)
        assert fb1.same_as(fb2)

    def test_small_commands_do_not_split(self):
        cmd = SFillCommand(Rect(0, 0, 100, 100), RED)
        head, rest = cmd.split(4)
        assert head is cmd and rest is None

    def test_single_row_raw_does_not_split(self):
        cmd = RawCommand(Rect(0, 0, 64, 1), rgba_block(64, 1))
        head, rest = cmd.split(10)
        assert head is cmd and rest is None

    @given(st.integers(2, 20), st.integers(2, 20), st.integers(30, 400))
    @settings(max_examples=30, deadline=None)
    def test_split_property(self, w, h, budget):
        cmd = RawCommand(Rect(0, 0, w, h), rgba_block(w, h, seed=w * h),
                         compress=False)
        head, rest = cmd.split(budget)
        if rest is not None:
            assert head.dest.height + rest.dest.height == h
            assert head.dest.y2 == rest.dest.y


class TestValidation:
    def test_raw_shape_mismatch(self):
        with pytest.raises(ValueError):
            RawCommand(Rect(0, 0, 4, 4), rgba_block(3, 4))

    def test_bitmap_mask_mismatch(self):
        with pytest.raises(ValueError):
            BitmapCommand(Rect(0, 0, 4, 4), np.ones((3, 4), bool), RED)

    def test_copy_negative_source(self):
        with pytest.raises(ValueError):
            CopyCommand(-1, 0, Rect(0, 0, 4, 4))

    def test_pfill_bad_tile(self):
        with pytest.raises(ValueError):
            PFillCommand(Rect(0, 0, 4, 4), np.zeros((2, 2, 3), np.uint8))

    def test_vframe_payload_length_checked(self):
        with pytest.raises(ValueError):
            VideoFrameCommand(1, Rect(0, 0, 4, 4), 16, 12, b"short")
