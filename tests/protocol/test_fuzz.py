"""Robustness fuzzing for the protocol parsers.

A thin client is exposed to the network: whatever arrives must either
parse or fail with a clean ValueError — never an IndexError, a numpy
shape explosion, or a hang.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import wire
from repro.protocol.commands import (BitmapCommand, CopyCommand,
                                     PFillCommand, RawCommand,
                                     SFillCommand, decode_command)
from repro.region import Rect

RED = (200, 30, 30, 255)


def sample_messages():
    rng = np.random.default_rng(7)
    return [
        wire.ScreenInitMessage(64, 48),
        SFillCommand(Rect(0, 0, 10, 10), RED),
        RawCommand(Rect(2, 2, 5, 4),
                   rng.integers(0, 256, (4, 5, 4), dtype=np.uint8)),
        CopyCommand(1, 1, Rect(20, 20, 6, 6)),
        PFillCommand(Rect(0, 0, 16, 16),
                     rng.integers(0, 256, (4, 4, 4), dtype=np.uint8)),
        BitmapCommand(Rect(0, 0, 8, 8),
                      rng.integers(0, 2, (8, 8)).astype(bool), RED),
        wire.InputMessage("key", 3, 4, 1.5),
        wire.AudioChunkMessage(0.25, b"\x00" * 64),
        wire.CursorImageMessage(1, 1, 4, 4, b"\x10" * 64),
    ]


class TestRandomBytes:
    @given(st.binary(max_size=512))
    @settings(max_examples=200, deadline=None)
    def test_parse_messages_never_crashes_unexpectedly(self, data):
        try:
            wire.parse_messages(data)
        except ValueError:
            pass  # the accepted failure mode

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=150, deadline=None)
    def test_decode_command_never_crashes_unexpectedly(self, data):
        try:
            decode_command(data)
        except (ValueError, KeyError):
            pass
        except Exception as exc:  # noqa: BLE001 - the point of the test
            # zlib and struct raise their own error types for truncated
            # payloads; anything else is a robustness bug.
            import struct
            import zlib

            assert isinstance(exc, (struct.error, zlib.error)), exc


class TestCorruptedValidStreams:
    @given(st.integers(0, 8), st.integers(0, 255), st.integers(0, 400))
    @settings(max_examples=150, deadline=None)
    def test_single_byte_corruption(self, msg_index, new_byte, position):
        messages = sample_messages()
        stream = b"".join(
            wire.encode_message(m)
            for m in messages[: (msg_index % len(messages)) + 1])
        position %= len(stream)
        corrupted = (stream[:position] + bytes([new_byte])
                     + stream[position + 1 :])
        try:
            wire.parse_messages(corrupted)
        except ValueError:
            pass
        except Exception as exc:  # noqa: BLE001
            import struct
            import zlib

            assert isinstance(exc, (struct.error, zlib.error)), exc


class TestArbitraryChunking:
    @given(st.lists(st.integers(1, 64), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_stream_parser_invariant_under_chunking(self, cuts):
        """Any re-chunking of a valid stream parses identically."""
        stream = b"".join(wire.encode_message(m) for m in sample_messages())
        reference = wire.parse_messages(stream)

        parser = wire.StreamParser()
        out = []
        offset = 0
        cut_iter = iter(cuts * ((len(stream) // sum(cuts)) + 1))
        while offset < len(stream):
            size = next(cut_iter)
            out.extend(parser.feed(stream[offset : offset + size]))
            offset += size
        assert len(out) == len(reference)
        assert [type(m) for m in out] == [type(m) for m in reference]
        assert parser.pending_bytes == 0
