"""Tests for RAW-pixel compression codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import compression as comp


def random_rgba(w, h, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


def flat_rgba(w, h, value=120):
    return np.full((h, w, 4), value, dtype=np.uint8)


class TestPngModel:
    def test_roundtrip_up_filter(self):
        img = random_rgba(17, 13, seed=1)
        out = comp.png_decompress(comp.png_compress(img))
        assert np.array_equal(out, img)

    def test_roundtrip_paeth_filter(self):
        img = random_rgba(9, 7, seed=2)
        out = comp.png_decompress(comp.png_compress(img, row_filter="paeth"))
        assert np.array_equal(out, img)

    def test_flat_content_compresses_hard(self):
        img = flat_rgba(100, 100)
        assert len(comp.png_compress(img)) < img.nbytes / 100

    def test_gradient_beats_plain_zlib(self):
        """The predictive filter should win on smooth content."""
        ramp = np.linspace(0, 255, 128, dtype=np.uint8)
        img = np.stack([np.tile(ramp, (64, 1))] * 4, axis=-1)
        filtered = comp.png_compress(img)
        plain = comp.zlib_compress(img.tobytes())
        assert len(filtered) < len(plain)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            comp.png_compress(np.zeros((4, 4), dtype=np.uint8))

    def test_rejects_unknown_filter(self):
        with pytest.raises(ValueError):
            comp.png_compress(flat_rgba(2, 2), row_filter="sub")

    def test_rejects_truncated_data(self):
        with pytest.raises(ValueError):
            comp.png_decompress(b"\x00\x01")

    @given(st.integers(1, 24), st.integers(1, 24), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, w, h, seed):
        img = random_rgba(w, h, seed=seed)
        assert np.array_equal(comp.png_decompress(comp.png_compress(img)),
                              img)


class TestRle:
    def test_roundtrip(self):
        img = random_rgba(13, 7, seed=3)
        assert np.array_equal(comp.rle_decompress(comp.rle_compress(img)),
                              img)

    def test_flat_content_is_tiny(self):
        img = flat_rgba(64, 64)
        assert len(comp.rle_compress(img)) < 16

    def test_noise_expands(self):
        """RLE on noise is worse than raw — the VNC failure mode."""
        img = random_rgba(32, 32, seed=4)
        assert len(comp.rle_compress(img)) > img.nbytes

    def test_long_runs_chunked(self):
        img = flat_rgba(300, 300)  # 90000 px > 65535 run limit
        out = comp.rle_decompress(comp.rle_compress(img))
        assert np.array_equal(out, img)

    def test_rejects_rgb(self):
        with pytest.raises(ValueError):
            comp.rle_compress(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_rejects_truncated(self):
        data = comp.rle_compress(flat_rgba(4, 4))
        with pytest.raises(ValueError):
            comp.rle_decompress(data[:-3])

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, w, h, seed):
        rng = np.random.default_rng(seed)
        # Low-entropy pixels so runs actually occur.
        img = rng.integers(0, 3, size=(h, w, 4), dtype=np.uint8) * 80
        assert np.array_equal(comp.rle_decompress(comp.rle_compress(img)),
                              img)


class TestZlibHelpers:
    def test_roundtrip(self):
        data = b"thin client " * 100
        assert comp.zlib_decompress(comp.zlib_compress(data)) == data

    def test_levels_trade_size(self):
        data = np.tile(np.arange(256, dtype=np.uint8), 200).tobytes()
        fast = comp.zlib_compress(data, level=1)
        best = comp.zlib_compress(data, level=9)
        assert len(best) <= len(fast)
