"""The protocol spec must match the implementation exactly."""

from repro.protocol import commands, spec, wire


class TestSpecConsistency:
    def test_type_ids_unique(self):
        ids = [s.type_id for s in spec.PROTOCOL_SPEC]
        assert len(ids) == len(set(ids))

    def test_spec_ids_match_implementations(self):
        for entry in spec.PROTOCOL_SPEC:
            assert entry.implementation.type_id == entry.type_id, entry.name

    def test_every_display_command_in_spec(self):
        spec_impls = {s.implementation for s in spec.PROTOCOL_SPEC}
        for cls in commands.COMMAND_TYPES.values():
            assert cls in spec_impls, cls

    def test_every_control_message_in_spec(self):
        spec_impls = {s.implementation for s in spec.PROTOCOL_SPEC}
        for cls in wire._CONTROL_TYPES.values():
            assert cls in spec_impls, cls

    def test_spec_covers_nothing_unimplemented(self):
        known = set(commands.COMMAND_TYPES.values()) | \
            set(wire._CONTROL_TYPES.values())
        for entry in spec.PROTOCOL_SPEC:
            assert entry.implementation in known, entry.name

    def test_directions_valid(self):
        for entry in spec.PROTOCOL_SPEC:
            assert entry.direction in ("s->c", "c->s", "s->s"), entry.name

    def test_fabric_ids_never_client_facing(self):
        assert not spec.FABRIC_TYPE_IDS & spec.UPLINK_TYPE_IDS
        assert not spec.FABRIC_TYPE_IDS & spec.DOWNLINK_TYPE_IDS

    def test_table1_commands_present_by_name(self):
        names = {s.name for s in spec.PROTOCOL_SPEC}
        assert {"RAW", "COPY", "SFILL", "PFILL", "BITMAP"} <= names


class TestReferenceRendering:
    def test_reference_mentions_every_message(self):
        doc = spec.render_protocol_reference()
        for entry in spec.PROTOCOL_SPEC:
            assert f"`{entry.name}`" in doc
            assert entry.summary.split(";")[0].split(".")[0] in doc

    def test_reference_matches_committed_doc(self):
        """docs/PROTOCOL.md is generated; regenerate if this fails."""
        import pathlib

        committed = pathlib.Path("docs/PROTOCOL.md")
        assert committed.exists(), \
            "run: python -c 'from repro.protocol.spec import *; " \
            "open(\"docs/PROTOCOL.md\",\"w\")" \
            ".write(render_protocol_reference())'"
        assert committed.read_text() == spec.render_protocol_reference()
