"""Tests for the RC4 stream cipher."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.protocol.rc4 import RC4, rc4_keystream


class TestKnownVectors:
    """Official test vectors from RFC 6229 / original leaks."""

    def test_key_Key(self):
        # Key "Key", plaintext "Plaintext" -> BBF316E8D940AF0AD3
        out = RC4(b"Key").process(b"Plaintext")
        assert out.hex().upper() == "BBF316E8D940AF0AD3"

    def test_key_Wiki(self):
        out = RC4(b"Wiki").process(b"pedia")
        assert out.hex().upper() == "1021BF0420"

    def test_key_Secret(self):
        out = RC4(b"Secret").process(b"Attack at dawn")
        assert out.hex().upper() == "45A01F645FC35B383552544B9BF5"


class TestBehaviour:
    def test_roundtrip(self):
        key = b"0123456789abcdef"
        data = bytes(range(256)) * 4
        assert RC4(key).process(RC4(key).process(data)) == data

    def test_stream_continuity(self):
        """Two process() calls continue the keystream, not restart it."""
        key = b"continuity"
        once = RC4(key).process(b"A" * 32)
        cipher = RC4(key)
        twice = cipher.process(b"A" * 10) + cipher.process(b"A" * 22)
        assert once == twice

    def test_keystream_helper_matches_instance(self):
        assert rc4_keystream(b"k", 16) == RC4(b"k").keystream(16)

    def test_size_preserved(self):
        assert len(RC4(b"k").process(b"x" * 1000)) == 1000

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            RC4(b"")

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            RC4(b"x" * 257)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, key, data):
        assert RC4(key).process(RC4(key).process(data)) == data

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_different_keys_differ(self, key):
        other = key + b"\x01"
        # The KSA cycles key[i % len]: keys with equal periodic
        # extensions (e.g. b"\x01" vs b"\x01\x01") are the *same* key
        # to RC4, so only genuinely distinct schedules must differ.
        assume(key * len(other) != other * len(key))
        plain = b"\x00" * 64
        assert RC4(key).process(plain) != RC4(other).process(plain)
