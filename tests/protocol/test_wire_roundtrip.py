"""Property tests for the hardened wire codec.

Two laws, checked for *every* control-message class in wire.py:

1. encode → decode is the identity (framed through the real stream
   machinery, not just ``decode_payload``);
2. any mutation of valid framed bytes either parses or raises
   :class:`~repro.protocol.wire.ProtocolError` — never ``struct.error``,
   ``IndexError``, ``UnicodeDecodeError`` or silent garbage.

Plus deterministic spot checks for each typed limit in
``repro.protocol.limits``.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import wire
from repro.protocol.limits import LIMITS
from repro.protocol.spec import UPLINK_TYPE_IDS
from repro.region import Rect

u16 = st.integers(0, 0xFFFF)
u32 = st.integers(0, 0xFFFFFFFF)
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
rects = st.builds(Rect, u16, u16, u16, u16)
viewport_dims = st.integers(1, LIMITS.max_viewport_dim)
retry_after = st.floats(0.0, float(LIMITS.max_retry_after),
                        allow_nan=False, width=64)
ascii_fmt = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=LIMITS.max_pixel_format_len)
shard_ids = st.integers(0, LIMITS.max_shard_id)


def _cursor_messages():
    def build(dims):
        w, h = dims
        return st.builds(wire.CursorImageMessage, u16, u16,
                         st.just(w), st.just(h),
                         st.binary(min_size=w * h * 4, max_size=w * h * 4))
    return st.tuples(st.integers(1, 8), st.integers(1, 8)).flatmap(build)


#: One strategy per control-message class (CheckedFrame added below).
STRATEGIES = {
    wire.VideoSetupMessage: st.builds(
        wire.VideoSetupMessage, u16, ascii_fmt, viewport_dims,
        viewport_dims, rects),
    wire.VideoMoveMessage: st.builds(wire.VideoMoveMessage, u16, rects),
    wire.VideoTeardownMessage: st.builds(wire.VideoTeardownMessage, u16),
    wire.AudioChunkMessage: st.builds(
        wire.AudioChunkMessage, finite, st.binary(max_size=256)),
    wire.InputMessage: st.builds(
        wire.InputMessage, st.sampled_from(wire._INPUT_KINDS), u16, u16,
        finite),
    wire.ResizeMessage: st.builds(
        wire.ResizeMessage, viewport_dims, viewport_dims),
    wire.CursorImageMessage: _cursor_messages(),
    wire.RefreshRequestMessage: st.builds(wire.RefreshRequestMessage,
                                          rects),
    wire.ZoomRequestMessage: st.builds(wire.ZoomRequestMessage, rects),
    wire.ScreenInitMessage: st.builds(
        wire.ScreenInitMessage, viewport_dims, viewport_dims),
    wire.HeartbeatMessage: st.builds(wire.HeartbeatMessage, u32, finite),
    wire.ReconnectRequestMessage: st.builds(
        wire.ReconnectRequestMessage, u32, u32),
    wire.ReconnectAcceptMessage: st.builds(
        wire.ReconnectAcceptMessage, u32,
        st.sampled_from((wire.RESYNC_FRESH, wire.RESYNC_REPLAY,
                         wire.RESYNC_SNAPSHOT))),
    wire.ReconnectDeniedMessage: st.builds(
        wire.ReconnectDeniedMessage, retry_after),
    wire.AttachDeniedMessage: st.builds(
        wire.AttachDeniedMessage,
        st.sampled_from((wire.DENY_SERVER_FULL, wire.DENY_SESSION_BUDGET,
                         wire.DENY_QUARANTINED)),
        retry_after),
    wire.SessionTransferMessage: st.builds(
        wire.SessionTransferMessage, u32, st.binary(max_size=512)),
    wire.MigrateBeginMessage: st.builds(
        wire.MigrateBeginMessage, u32, shard_ids),
    wire.MigrateCompleteMessage: st.builds(
        wire.MigrateCompleteMessage, u32, shard_ids),
    wire.ShardAdmissionReportMessage: st.builds(
        wire.ShardAdmissionReportMessage, shard_ids, u32,
        st.integers(0, 2 ** 64 - 1), st.booleans()),
    wire.SubscribeMessage: st.one_of(
        st.just(wire.SubscribeMessage(wire.SUBSCRIBE_MIRROR)),
        st.tuples(st.integers(1, 64), st.integers(1, 64)).flatmap(
            lambda grid: st.builds(
                wire.SubscribeMessage, st.just(wire.SUBSCRIBE_TILE),
                st.just(grid[0]), st.just(grid[1]),
                st.integers(0, grid[0] * grid[1] - 1)))),
    wire.TileAssignMessage: st.tuples(
        viewport_dims, viewport_dims).flatmap(
            lambda wall: st.tuples(
                st.integers(0, wall[0] - 1),
                st.integers(0, wall[1] - 1)).flatmap(
                    lambda origin: st.builds(
                        wire.TileAssignMessage,
                        st.just(wall[0]), st.just(wall[1]),
                        st.builds(
                            Rect, st.just(origin[0]), st.just(origin[1]),
                            st.integers(1, wall[0] - origin[0]),
                            st.integers(1, wall[1] - origin[1]))))),
    wire.VideoQualityMessage: st.builds(
        wire.VideoQualityMessage, u16,
        st.integers(0, LIMITS.max_qos_rung),
        st.integers(1, LIMITS.max_fps_divisor),
        st.integers(0, LIMITS.max_scale_shift),
        st.integers(0, LIMITS.max_qos_qstep)),
    wire.QosReportMessage: st.builds(
        wire.QosReportMessage, u16, u32,
        st.floats(0.0, 1.0, allow_nan=False, width=64),
        st.floats(0.0, 1.0, allow_nan=False, width=64),
        st.floats(0.0, float(LIMITS.max_av_skew), allow_nan=False,
                  width=64)),
}
STRATEGIES[wire.CheckedFrame] = st.builds(
    wire.CheckedFrame, u32, st.one_of(*STRATEGIES.values()))

messages = st.one_of(*STRATEGIES.values())


def test_every_control_class_has_a_strategy():
    """The property tests cover the codec exhaustively: adding a wire
    message class without a strategy here is a test failure."""
    assert set(STRATEGIES) == set(wire._CONTROL_TYPES.values())


@settings(max_examples=200, deadline=None)
@given(msg=messages)
def test_encode_decode_identity(msg):
    framed = wire.encode_message(msg)
    assert wire.parse_messages(framed) == [msg]


@settings(max_examples=300, deadline=None)
@given(msg=messages, data=st.data())
def test_mutated_frames_raise_only_protocol_error(msg, data):
    buf = bytearray(wire.encode_message(msg))
    for _ in range(data.draw(st.integers(1, 6))):
        mode = data.draw(st.sampled_from(("flip", "set", "truncate",
                                          "extend")))
        if mode == "flip" and buf:
            pos = data.draw(st.integers(0, len(buf) - 1))
            buf[pos] ^= 1 << data.draw(st.integers(0, 7))
        elif mode == "set" and buf:
            pos = data.draw(st.integers(0, len(buf) - 1))
            buf[pos] = data.draw(st.integers(0, 255))
        elif mode == "truncate" and len(buf) > 1:
            del buf[data.draw(st.integers(1, len(buf) - 1)):]
        elif mode == "extend":
            buf += data.draw(st.binary(max_size=16))
    parser = wire.StreamParser()
    try:
        for _ in parser.feed(bytes(buf)):
            pass
    except wire.ProtocolError:
        pass  # the only exception family the contract allows


class TestTypedLimits:
    """Deterministic spot checks, one per decode limit."""

    def test_truncated_payload_is_typed(self):
        framed = wire.encode_message(wire.ResizeMessage(64, 48))
        with pytest.raises(wire.ProtocolError):
            wire.parse_messages(framed[:-1])

    def test_trailing_garbage_is_typed(self):
        msg = wire.HeartbeatMessage(1, 2.0)
        framed = wire.frame_message(msg.type_id,
                                    msg.encode_payload() + b"!")
        with pytest.raises(wire.ProtocolError):
            wire.parse_messages(framed)

    def test_lying_length_field_trips_frame_cap(self):
        huge = wire.frame_message(wire.HeartbeatMessage.type_id, b"")
        buf = bytearray(huge)
        buf[1:5] = struct.pack(">I", LIMITS.max_frame_bytes + 1)
        parser = wire.StreamParser()
        with pytest.raises(wire.FrameTooLargeError):
            parser.feed(bytes(buf))

    def test_pending_cap_bounds_parser_memory(self):
        parser = wire.StreamParser(max_pending=64)
        header = struct.pack(">BI", wire.HeartbeatMessage.type_id, 1 << 20)
        with pytest.raises(wire.FrameTooLargeError):
            parser.feed(header + b"\x00" * 64)

    def test_disallowed_type_id_is_rejected(self):
        parser = wire.StreamParser(allowed=UPLINK_TYPE_IDS)
        framed = wire.encode_message(wire.ScreenInitMessage(64, 48))
        with pytest.raises(wire.FieldRangeError):
            parser.feed(framed)

    def test_nested_checked_frames_rejected(self):
        inner = wire.wrap_checked(
            wire.encode_message(wire.HeartbeatMessage(1, 0.5)), 2)
        nested = wire.wrap_checked(inner, 3)
        with pytest.raises(wire.FieldRangeError):
            wire.parse_messages(nested)

    def test_cursor_dimension_limit(self):
        dim = LIMITS.max_cursor_dim + 1
        payload = struct.pack(">HHHH", 0, 0, dim, dim)
        with pytest.raises(wire.FieldRangeError):
            wire.CursorImageMessage.decode_payload(payload)

    def test_audio_chunk_limit(self):
        payload = struct.pack(">d", 0.0) + b"\x00" * (
            LIMITS.max_audio_chunk_bytes + 1)
        with pytest.raises(wire.FrameTooLargeError):
            wire.AudioChunkMessage.decode_payload(payload)

    def test_non_finite_float_is_rejected(self):
        payload = struct.pack(">Id", 1, float("nan"))
        with pytest.raises(wire.FieldRangeError):
            wire.HeartbeatMessage.decode_payload(payload)

    def test_transfer_state_limit(self):
        payload = struct.pack(">I", 1) + b"\x00" * (
            LIMITS.max_transfer_bytes + 1)
        with pytest.raises(wire.FrameTooLargeError):
            wire.SessionTransferMessage.decode_payload(payload)

    def test_shard_id_limit(self):
        payload = struct.pack(">IH", 1, LIMITS.max_shard_id + 1)
        with pytest.raises(wire.FieldRangeError):
            wire.MigrateBeginMessage.decode_payload(payload)

    def test_fabric_frames_rejected_on_uplink(self):
        parser = wire.StreamParser(allowed=UPLINK_TYPE_IDS)
        framed = wire.encode_message(
            wire.SessionTransferMessage(7, b"state"))
        with pytest.raises(wire.FieldRangeError):
            parser.feed(framed)

    def test_qos_rung_limit(self):
        payload = struct.pack(">HBBBB", 1, LIMITS.max_qos_rung + 1, 1,
                              0, 0)
        with pytest.raises(wire.FieldRangeError):
            wire.VideoQualityMessage.decode_payload(payload)

    def test_fps_divisor_of_zero_is_rejected(self):
        payload = struct.pack(">HBBBB", 1, 0, 0, 0, 0)
        with pytest.raises(wire.FieldRangeError):
            wire.VideoQualityMessage.decode_payload(payload)

    def test_scale_shift_limit(self):
        payload = struct.pack(">HBBBB", 1, 2, 2,
                              LIMITS.max_scale_shift + 1, 0)
        with pytest.raises(wire.FieldRangeError):
            wire.VideoQualityMessage.decode_payload(payload)

    def test_qos_qstep_limit(self):
        payload = struct.pack(">HBBBB", 1, 3, 2, 1,
                              LIMITS.max_qos_qstep + 1)
        with pytest.raises(wire.FieldRangeError):
            wire.VideoQualityMessage.decode_payload(payload)

    def test_qos_report_quality_range(self):
        payload = struct.pack(">HIddd", 1, 10, 1.5, 1.0, 0.0)
        with pytest.raises(wire.FieldRangeError):
            wire.QosReportMessage.decode_payload(payload)

    def test_qos_report_skew_limit(self):
        payload = struct.pack(">HIddd", 1, 10, 1.0, 1.0,
                              LIMITS.max_av_skew * 2)
        with pytest.raises(wire.FieldRangeError):
            wire.QosReportMessage.decode_payload(payload)

    def test_video_quality_rejected_on_uplink(self):
        parser = wire.StreamParser(allowed=UPLINK_TYPE_IDS)
        framed = wire.encode_message(wire.VideoQualityMessage(1, 0))
        with pytest.raises(wire.FieldRangeError):
            parser.feed(framed)

    def test_parser_consumes_good_prefix_before_raising(self):
        good = wire.encode_message(wire.HeartbeatMessage(4, 1.0))
        bad = wire.frame_message(99, b"junk")
        parser = wire.StreamParser()
        with pytest.raises(wire.ProtocolError):
            parser.feed(good + bad)
        # The valid prefix was consumed before the raise; only the
        # failing frame remains pending (so a reset drops exactly the
        # poison bytes, never already-applied messages).
        assert parser.pending_bytes == len(bad)
