"""Tests for protocol trace capture and replay."""

import io

import pytest

from repro.net import Connection, EventLoop, LAN_DESKTOP, SimClock
from repro.protocol import wire
from repro.protocol.trace import (TraceRecorder, TraceReplayer, read_trace,
                                  summarize_trace)
from repro.protocol.commands import SFillCommand
from repro.region import Rect

RED = (255, 0, 0, 255)


def make_trace():
    clock = SimClock()
    sink = io.BytesIO()
    recorder = TraceRecorder(sink, clock)
    recorder.record(wire.encode_message(wire.ScreenInitMessage(64, 48)))
    clock.advance_to(0.5)
    recorder.record(wire.encode_message(
        SFillCommand(Rect(0, 0, 8, 8), RED)))
    clock.advance_to(1.25)
    recorder.record(wire.encode_message(
        SFillCommand(Rect(8, 0, 8, 8), RED)))
    return sink.getvalue(), recorder


class TestRecordAndRead:
    def test_roundtrip(self):
        data, recorder = make_trace()
        records = read_trace(data)
        assert len(records) == 3
        assert recorder.records_written == 3
        assert [r.time for r in records] == [0.0, 0.5, 1.25]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_trace(b"NOTATRACE" + b"\x00" * 32)

    def test_truncated_rejected(self):
        data, _ = make_trace()
        with pytest.raises(ValueError):
            read_trace(data[:-2])

    def test_tee_passes_through(self):
        clock = SimClock()
        sink = io.BytesIO()
        recorder = TraceRecorder(sink, clock)
        seen = []
        tee = recorder.tee(seen.append)
        tee(b"hello")
        assert seen == [b"hello"]
        assert recorder.bytes_written == 5


class TestReplay:
    def test_replay_into_preserves_content(self):
        data, _ = make_trace()
        replayer = TraceReplayer.from_file(data)
        chunks = []
        assert replayer.replay_into(chunks.append) == 3
        messages = wire.parse_messages(b"".join(chunks))
        assert isinstance(messages[0], wire.ScreenInitMessage)
        assert messages[1].kind == "sfill"

    def test_schedule_into_reenacts_timing(self):
        data, _ = make_trace()
        loop = EventLoop()
        times = []
        TraceReplayer.from_file(data).schedule_into(
            loop, lambda d: times.append(loop.now), start_delay=0.1)
        loop.run_until_idle()
        assert times == pytest.approx([0.1, 0.6, 1.35])

    def test_replay_drives_a_real_client(self):
        """A recorded session replayed into a fresh client redraws it."""
        from repro.core import THINCClient

        data, _ = make_trace()
        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        client = THINCClient(loop, conn)
        TraceReplayer.from_file(data).replay_into(client._on_data)
        assert client.total_commands() == 2
        assert tuple(client.fb.data[0, 0]) == RED

    def test_empty_replay(self):
        loop = EventLoop()
        TraceReplayer([]).schedule_into(loop, lambda d: None)
        assert loop.pending() == 0


class TestSummary:
    def test_summarize(self):
        data, _ = make_trace()
        summary = summarize_trace(read_trace(data))
        assert summary["records"] == 3
        assert summary["duration"] == pytest.approx(1.25)
        assert summary["messages"]["sfill"] == 2
        assert summary["messages"]["ScreenInitMessage"] == 1
        assert summary["unparsed_bytes"] == 0
