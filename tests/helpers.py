"""Shared test rig builders and assertions.

One place for the pieces every suite kept rebuilding: the standard
loop/connection/server/client rig, its resilient (fault-injected,
reconnecting) variant, a deterministic scripted workload, and the
golden pixel-exactness assertion.
"""

import numpy as np

from repro.core import THINCClient, THINCServer
from repro.core.resilience import ResilienceConfig, ResilientClient
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.net.faults import dial_factory
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
BLUE = (0, 0, 255, 255)
WHITE = (255, 255, 255, 255)
BLACK = (0, 0, 0, 255)


def make_rig(width=96, height=64, link=LAN_DESKTOP, viewport=None,
             encrypt=False, send_buffer=None, **server_kw):
    """The standard single-client rig over a plain connection.

    Returns ``(loop, conn, mon, server, ws, client)``.
    """
    loop = EventLoop()
    mon = PacketMonitor()
    conn = Connection(loop, link, monitor=mon, send_buffer=send_buffer)
    key = b"thinc-test-key" if encrypt else None
    server = THINCServer(loop, width, height, encrypt_key=key, **server_kw)
    ws = WindowServer(width, height, driver=server.driver, clock=loop.clock)
    server.attach_client(conn, viewport=viewport)
    client = THINCClient(loop, conn, decrypt_key=key)
    return loop, conn, mon, server, ws, client


def make_multi_rig(viewports, width=96, height=64, link=LAN_DESKTOP,
                   **server_kw):
    """One server/window-server pair with a client per viewport spec.

    Returns ``(loop, mon, server, ws, clients)``.
    """
    loop = EventLoop()
    mon = PacketMonitor()
    server = THINCServer(loop, width, height, **server_kw)
    ws = WindowServer(width, height, driver=server.driver, clock=loop.clock)
    clients = []
    for viewport in viewports:
        conn = Connection(loop, link, monitor=mon)
        server.attach_client(conn, viewport=viewport)
        clients.append(THINCClient(loop, conn))
    return loop, mon, server, ws, clients


def make_resilient_rig(width=96, height=64, link=LAN_DESKTOP, plan=None,
                       encrypt=False, send_buffer=None, config=None,
                       client_config=None, record_trace=False, seed=0,
                       **server_kw):
    """A resilience-plane rig: fault-injected dials and a reconnecting
    client.  The first dial happens at t=0 via ``rc.start()``.

    Returns ``(loop, dial, server, ws, rc)`` where ``rc`` is the
    :class:`ResilientClient` (the inner THINCClient is ``rc.client``).
    Drive it with ``loop.run_until(t)`` — the plane and the client run
    perpetual timers, so ``run_until_idle`` never returns.
    """
    loop = EventLoop()
    key = b"thinc-test-key" if encrypt else None
    config = config or ResilienceConfig(
        heartbeat_interval=0.1, liveness_timeout=0.35, check_interval=0.05,
        backoff_base=0.05, backoff_jitter=0.2, detach_window=5.0)
    server = THINCServer(loop, width, height, encrypt_key=key,
                         resilience=config, **server_kw)
    ws = WindowServer(width, height, driver=server.driver, clock=loop.clock)
    dial = dial_factory(loop, link, server.resilience.accept, plan=plan,
                        send_buffer=send_buffer, record_trace=record_trace)
    rc = ResilientClient(loop, dial, config=client_config or config,
                         decrypt_key=key, seed=seed)
    rc.start()
    return loop, dial, server, ws, rc


def make_shard_rig(shards=2, clients=2, width=96, height=64,
                   link=LAN_DESKTOP, plan=None, config=None, end=1.5,
                   workload_seed=7, schedule_workloads=True, **coord_kw):
    """A shard-fabric rig: N servers behind a relay, resilient clients
    dialling the relay exactly as they would a single server.

    Every shard's window server runs the *same* scripted workload
    (mirrored screens), so a session migrated between shards has an
    exact uninterrupted twin to be compared against.  Fault *plan*
    applies to every client dial (the shared absolute-time schedule,
    as in :func:`make_resilient_rig`).

    Returns ``(loop, coord, screens, rcs)``; drive with
    ``loop.run_until(t)``.
    """
    from repro.cluster import ShardCoordinator

    loop = EventLoop()
    config = config or ResilienceConfig(
        heartbeat_interval=0.1, liveness_timeout=0.35, check_interval=0.05,
        backoff_base=0.05, backoff_jitter=0.2, detach_window=5.0)
    coord = ShardCoordinator(loop, shards, width, height,
                             resilience=config, **coord_kw)
    screens = []
    for server in coord.shards:
        ws = WindowServer(width, height, driver=server.driver,
                          clock=loop.clock)
        if schedule_workloads:
            scripted_workload(loop, ws, end=end, seed=workload_seed)
        screens.append(ws)
    dial = dial_factory(loop, link, coord.relay.accept, plan=plan)
    rcs = []
    for i in range(clients):
        rc = ResilientClient(loop, dial, config=config, seed=i)
        rc.start()
        rcs.append(rc)
    return loop, coord, screens, rcs


def scripted_workload(loop, ws, end=1.5, step=0.05, seed=7):
    """Schedule a deterministic mixed drawing workload over [0, end).

    Draw operations land every *step* seconds so fault windows always
    interleave with live traffic.  Same seed => same draws at the same
    times, which is what makes chaos runs comparable to clean twins.
    """
    rng = np.random.default_rng(seed)
    W, H = ws.screen.bounds.width, ws.screen.bounds.height
    ops = []
    t = step
    while t < end:
        op = int(rng.integers(0, 4))
        x, y = int(rng.integers(0, W - 16)), int(rng.integers(0, H - 16))
        w, h = int(rng.integers(4, 16)), int(rng.integers(4, 16))
        color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
        if op == 0:
            ops.append((t, "fill", (Rect(x, y, w, h), color)))
        elif op == 1:
            img = rng.integers(0, 256, (h, w, 4), dtype=np.uint8)
            ops.append((t, "image", (Rect(x, y, w, h), img)))
        elif op == 2:
            ops.append((t, "text", (x, y, "thinc", color)))
        else:
            ops.append((t, "copy", (Rect(0, 0, 24, 24), x, y)))
        t += step

    def run(op, arg):
        if op == "fill":
            ws.fill_rect(ws.screen, *arg)
        elif op == "image":
            ws.put_image(ws.screen, *arg)
        elif op == "text":
            ws.draw_text(ws.screen, *arg)
        elif op == "copy":
            src, x, y = arg
            ws.copy_area(ws.screen, ws.screen, src, x, y)

    ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
    for t, op, arg in ops:
        loop.schedule_at(t, lambda op=op, arg=arg: run(op, arg))
    return ops


def assert_pixel_identical(client, ws):
    """The golden assertion: client framebuffer == server screen."""
    fb = client.fb
    assert fb is not None, "client never received a framebuffer"
    assert fb.same_as(ws.screen.fb), (
        "client framebuffer diverged from server screen "
        f"({int(np.sum(np.any(fb.data != ws.screen.fb.data, axis=-1)))} "
        "pixels differ)")
