"""Tests for server-side display scaling (Section 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resize import DisplayScaler, resample, scale_rect
from repro.protocol import (BitmapCommand, CompositeCommand, CopyCommand,
                            PFillCommand, RawCommand, SFillCommand,
                            VideoFrameCommand)
from repro.region import Rect
from repro.video import yuv

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)


class TestResample:
    def test_identity(self):
        img = np.arange(4 * 4 * 4, dtype=np.uint8).reshape(4, 4, 4)
        assert np.array_equal(resample(img, 4, 4), img)

    def test_downscale_averages(self):
        """2x downscale of a checkerboard gives the mid grey (AA)."""
        img = np.zeros((4, 4, 4), dtype=np.uint8)
        img[::2, ::2] = 255
        img[1::2, 1::2] = 255
        out = resample(img, 2, 2)
        assert np.all(np.abs(out.astype(int) - 128) <= 1)

    def test_flat_stays_flat(self):
        img = np.full((10, 10, 4), 77, dtype=np.uint8)
        for dims in [(3, 3), (7, 5), (20, 13)]:
            out = resample(img, *dims)
            assert np.all(out == 77)

    def test_upscale_dimensions(self):
        img = np.zeros((3, 5, 4), dtype=np.uint8)
        assert resample(img, 13, 9).shape == (9, 13, 4)

    def test_energy_preserved_on_downscale(self):
        """Area-weighted resampling preserves the mean (no aliasing bias)."""
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, (32, 32, 4), dtype=np.uint8)
        out = resample(img, 8, 8)
        assert abs(float(out.mean()) - float(img.mean())) < 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resample(np.zeros((4, 4, 4), np.uint8), 0, 4)

    @given(st.integers(1, 30), st.integers(1, 30),
           st.integers(1, 30), st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_shape_property(self, sw, sh, dw, dh):
        img = np.zeros((sh, sw, 4), dtype=np.uint8)
        assert resample(img, dw, dh).shape == (dh, dw, 4)


class TestScaleRect:
    def test_half_scale(self):
        assert scale_rect(Rect(0, 0, 10, 10), 0.5, 0.5) == Rect(0, 0, 5, 5)

    def test_never_vanishes(self):
        r = scale_rect(Rect(100, 100, 1, 1), 0.1, 0.1)
        assert r.width >= 1 and r.height >= 1

    @given(st.integers(0, 500), st.integers(0, 500),
           st.integers(1, 100), st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_adjacent_rects_stay_gap_free(self, x, y, w, h):
        """Two rects sharing an edge scale to rects that still cover
        the shared boundary (no seams on the scaled display)."""
        sx = sy = 0.3125  # 320/1024
        a = Rect(x, y, w, h)
        b = Rect(x + w, y, w, h)  # right neighbour
        sa, sb = scale_rect(a, sx, sy), scale_rect(b, sx, sy)
        assert sa.x2 >= sb.x  # no gap


class TestPerCommandPolicy:
    """The Section 6 table: what happens to each command type."""

    def setup_method(self):
        self.scaler = DisplayScaler((1024, 768), (320, 240))

    def test_identity_scaler_passthrough(self):
        scaler = DisplayScaler((640, 480), (640, 480))
        cmd = SFillCommand(Rect(0, 0, 10, 10), RED)
        assert scaler.scale_command(cmd) == [cmd]
        assert scaler.identity

    def test_sfill_sent_unmodified_but_rescaled_coords(self):
        (out,) = self.scaler.scale_command(
            SFillCommand(Rect(0, 0, 1024, 768), RED))
        assert isinstance(out, SFillCommand)
        assert out.dest == Rect(0, 0, 320, 240)
        assert out.color == RED

    def test_raw_resampled_saves_bandwidth(self):
        rng = np.random.default_rng(2)
        pixels = rng.integers(0, 256, (192, 256, 4), dtype=np.uint8)
        cmd = RawCommand(Rect(0, 0, 256, 192), pixels, compress=False)
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, RawCommand)
        assert out.wire_size() < cmd.wire_size() / 4

    def test_pfill_tile_resized(self):
        tile = np.full((16, 16, 4), 99, dtype=np.uint8)
        cmd = PFillCommand(Rect(0, 0, 512, 512), tile)
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, PFillCommand)
        assert out.tile.shape[0] == 5  # 16 * 0.3125
        assert out.tile.shape[1] == 5

    def test_opaque_bitmap_converted_to_raw(self):
        mask = np.eye(32, dtype=bool)
        cmd = BitmapCommand(Rect(0, 0, 32, 32), mask, RED, GREEN)
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, RawCommand)
        # Anti-aliased: intermediate values exist along the diagonal.
        uniques = np.unique(out.pixels[..., 0])
        assert len(uniques) > 2

    def test_transparent_bitmap_becomes_composite(self):
        mask = np.ones((16, 16), dtype=bool)
        mask[:, ::2] = False
        cmd = BitmapCommand(Rect(0, 0, 16, 16), mask, RED, None)
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, CompositeCommand)
        # Alpha carries the coverage.
        assert 0 < out.pixels[..., 3].mean() < 255

    def test_copy_coordinates_scaled(self):
        cmd = CopyCommand(512, 384, Rect(0, 0, 128, 128))
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, CopyCommand)
        assert (out.src_x, out.src_y) == (160, 120)

    def test_video_resampled_and_reencoded(self):
        rgb = np.full((240, 352, 3), 120, dtype=np.uint8)
        data = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        cmd = VideoFrameCommand(1, Rect(0, 0, 1024, 768), 352, 240, data,
                                frame_no=7)
        (out,) = self.scaler.scale_command(cmd)
        assert isinstance(out, VideoFrameCommand)
        assert out.frame_no == 7
        # Source dims shrink with the viewport ratio (352 * 0.3125 = 110).
        assert out.src_width == 110 and out.src_width % 2 == 0
        assert len(out.yuv_bytes) < len(data) / 4

    def test_command_off_viewport_dropped(self):
        # scale_rect clamps into the client viewport; a rect at the far
        # bottom-right still lands inside, so nothing is dropped here —
        # but a rect fully outside a *clipped* viewport is.
        clipping = DisplayScaler((1024, 768), (320, 240))
        out = clipping.scale_command(
            SFillCommand(Rect(1020, 764, 4, 4), RED))
        assert len(out) == 1  # scaled into the last client pixels

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DisplayScaler((0, 768), (320, 240))


class TestScaledDrawingConsistency:
    def test_scaled_commands_roughly_match_scaled_screen(self):
        """Drawing scaled commands approximates resampling the screen."""
        from repro.display import Framebuffer

        rng = np.random.default_rng(3)
        server_fb = Framebuffer(64, 64)
        client_fb = Framebuffer(16, 16)
        scaler = DisplayScaler((64, 64), (16, 16))
        cmds = [
            SFillCommand(Rect(0, 0, 64, 64), (200, 200, 200, 255)),
            RawCommand(Rect(8, 8, 32, 32),
                       rng.integers(0, 256, (32, 32, 4), dtype=np.uint8),
                       compress=False),
            SFillCommand(Rect(40, 40, 16, 16), RED),
        ]
        for cmd in cmds:
            cmd.apply(server_fb)
            for scaled in scaler.scale_command(cmd):
                scaled.apply(client_fb)
        reference = resample(server_fb.data, 16, 16)
        # Mean absolute error should be modest (edges differ slightly).
        err = np.abs(reference.astype(int) - client_fb.data.astype(int))
        assert err.mean() < 40
