"""Property tests for the offscreen machinery (Section 4.1).

The central contract: for any sequence of drawing into a pixmap, a
copy-out must reproduce the pixmap's pixels exactly — via replayed
semantic commands where the queue describes the content, and via RAW
fallback where it does not (undescribed base, tainted blends).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.translation import THINCDriver
from repro.display import Framebuffer, WindowServer
from repro.region import Rect


class QueueSink:
    """Collects submitted commands for direct replay."""

    def __init__(self):
        self.commands = []

    def submit(self, c):
        self.commands.append(c)

    def cursor_set(self, *a):
        pass

    def video_setup(self, *a):
        pass

    def video_move(self, *a):
        pass

    def video_teardown(self, *a):
        pass

    def note_input(self, *a):
        pass


def random_offscreen_ops(ws, pm, rng, count=12):
    """Draw a random mix into the pixmap (including transparent ops)."""
    for _ in range(count):
        op = rng.integers(0, 5)
        x, y = int(rng.integers(0, 24)), int(rng.integers(0, 24))
        w, h = int(rng.integers(1, 10)), int(rng.integers(1, 10))
        color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
        if op == 0:
            ws.fill_rect(pm, Rect(x, y, w, h), color)
        elif op == 1:
            ws.put_image(pm, Rect(x, y, w, h),
                         rng.integers(0, 256, (h, w, 4), dtype=np.uint8))
        elif op == 2:
            ws.draw_text(pm, x, y, "pq", color)
        elif op == 3:
            ws.composite(pm, Rect(x, y, w, h),
                         rng.integers(0, 256, (h, w, 4), dtype=np.uint8))
        else:
            ws.fill_tiled(pm, Rect(x, y, w, h),
                          rng.integers(0, 256, (3, 3, 4), dtype=np.uint8))


class TestCopyOutProperty:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_copy_out_reproduces_pixmap_pixels(self, seed):
        rng = np.random.default_rng(seed)
        sink = QueueSink()
        ws = WindowServer(64, 48, driver=THINCDriver(sink,
                                                     compress_raw=False))
        pm = ws.create_pixmap(32, 32)
        random_offscreen_ops(ws, pm, rng)
        sink.commands.clear()  # nothing onscreen yet anyway

        src = Rect(int(rng.integers(0, 16)), int(rng.integers(0, 16)),
                   int(rng.integers(4, 16)), int(rng.integers(4, 16)))
        dst = (int(rng.integers(0, 30)), int(rng.integers(0, 14)))
        ws.copy_area(pm, ws.screen, src, *dst)

        fb = Framebuffer(64, 48)
        for cmd in sink.commands:
            cmd.apply(fb)
        expected = pm.fb.read_pixels(src)
        got = fb.read_pixels(Rect(dst[0], dst[1], src.width, src.height))
        assert np.array_equal(got, expected)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_repeated_copies_from_one_source(self, seed):
        """A region can source many copies; the queue must survive."""
        rng = np.random.default_rng(seed)
        sink = QueueSink()
        ws = WindowServer(96, 48, driver=THINCDriver(sink,
                                                     compress_raw=False))
        pm = ws.create_pixmap(24, 24)
        random_offscreen_ops(ws, pm, rng, count=8)
        for i in range(3):
            sink.commands.clear()
            ws.copy_area(pm, ws.screen, pm.bounds, 24 * i, 12)
            fb = Framebuffer(96, 48)
            for cmd in sink.commands:
                cmd.apply(fb)
            got = fb.read_pixels(Rect(24 * i, 12, 24, 24))
            assert np.array_equal(got, pm.fb.data)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pixmap_hierarchies(self, seed):
        """Small pixmaps composed into larger ones then flipped out."""
        rng = np.random.default_rng(seed)
        sink = QueueSink()
        ws = WindowServer(64, 48, driver=THINCDriver(sink,
                                                     compress_raw=False))
        small = ws.create_pixmap(12, 12)
        big = ws.create_pixmap(32, 32)
        random_offscreen_ops(ws, small, rng, count=5)
        ws.fill_rect(big, big.bounds,
                     tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,))
        ws.copy_area(small, big, small.bounds,
                     int(rng.integers(0, 20)), int(rng.integers(0, 20)))
        random_offscreen_ops(ws, big, rng, count=4)
        ws.copy_area(big, ws.screen, big.bounds, 8, 8)
        fb = Framebuffer(64, 48)
        for cmd in sink.commands:
            cmd.apply(fb)
        assert np.array_equal(fb.read_pixels(Rect(8, 8, 32, 32)),
                              big.fb.data)


class TestStarvationBehaviour:
    """SRSF can delay large commands behind a stream of small ones —
    the known trade-off of size-based scheduling.  The delivery layer
    bounds the damage: eviction keeps the large command *current*, and
    the moment small traffic pauses it drains.  This test documents
    that behaviour."""

    def test_large_command_drains_when_small_traffic_pauses(self):
        from repro.core import ClientBuffer
        from repro.protocol.commands import RawCommand, SFillCommand

        class Writer:
            def __init__(self):
                self.room = 0
                self.sent = []

            def writable_bytes(self):
                return self.room

            def write(self, data):
                self.room -= len(data)
                self.sent.append(len(data))

        rng = np.random.default_rng(0)
        buf = ClientBuffer()
        big = RawCommand(Rect(0, 0, 64, 64),
                         rng.integers(0, 256, (64, 64, 4), dtype=np.uint8),
                         compress=False)
        buf.add(big)
        writer = Writer()
        # Small updates keep arriving and the room is always just
        # enough for them: the big command waits (SRSF).
        for i in range(10):
            small = SFillCommand(Rect(200 + (i % 10), 0, 4, 4),
                                 (i, i, i, 255))
            buf.add(small)
            writer.room += small.wire_size() + 8
            buf.flush(writer)
        assert buf.pending_commands() >= 1  # the big one still waits
        # Traffic pauses: the backlog drains fully.
        for _ in range(200):
            if buf.pending_commands() == 0:
                break
            writer.room += 4096
            buf.flush(writer)
        assert buf.pending_commands() == 0
