"""Tests for the THINC server: sessions, multi-client, control flow."""

import numpy as np
import pytest

from tests.helpers import GREEN, RED, make_multi_rig
from repro.core import THINCClient
from repro.core.scheduler import FIFOScheduler
from repro.net import Connection, LAN_DESKTOP
from repro.region import Rect


def rig(n_clients=1, viewports=None, **server_kw):
    viewports = viewports or [None] * n_clients
    loop, mon, server, ws, clients = make_multi_rig(viewports, **server_kw)
    return loop, server, ws, clients


class TestMultiClient:
    def test_screen_sharing_two_clients(self):
        """Display output multiplexes to all attached clients."""
        loop, server, ws, (a, b) = rig(n_clients=2)
        ws.fill_rect(ws.screen, Rect(0, 0, 40, 40), RED)
        ws.draw_text(ws.screen, 2, 50, "shared", GREEN)
        loop.run_until_idle(max_time=5)
        assert a.fb.same_as(ws.screen.fb)
        assert b.fb.same_as(ws.screen.fb)

    def test_mixed_viewports(self):
        """A desktop and a PDA can share one session (Section 6)."""
        loop, server, ws, (desktop, pda) = rig(
            n_clients=2, viewports=[None, (48, 32)])
        ws.fill_rect(ws.screen, ws.screen.bounds, RED)
        loop.run_until_idle(max_time=5)
        assert (desktop.fb.width, desktop.fb.height) == (96, 64)
        assert (pda.fb.width, pda.fb.height) == (48, 32)
        assert tuple(pda.fb.data[16, 24]) == RED

    def test_detach_stops_updates(self):
        loop, server, ws, (a,) = rig()
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        loop.run_until_idle(max_time=5)
        server.detach_client(server.sessions[0])
        before = a.stats["messages"]
        ws.fill_rect(ws.screen, Rect(20, 20, 8, 8), GREEN)
        loop.run_until_idle(max_time=5)
        assert a.stats["messages"] == before


class TestSession:
    def test_screen_init_sent_first(self):
        loop, server, ws, (a,) = rig()
        loop.run_until_idle(max_time=2)
        assert (a.fb.width, a.fb.height) == (96, 64)

    def test_session_stats_accumulate(self):
        loop, server, ws, (a,) = rig()
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        loop.run_until_idle(max_time=5)
        session = server.sessions[0]
        assert session.stats["messages_sent"] >= 2  # init + fill
        assert session.stats["bytes_sent"] > 0
        assert session.stats["flush_periods"] >= 1

    def test_pending_reflects_backlog(self):
        loop, server, ws, (a,) = rig()
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        assert server.pending()
        loop.run_until_idle(max_time=5)
        assert not server.pending()

    def test_scheduler_factory_honoured(self):
        loop, server, ws, (a,) = rig(scheduler_factory=FIFOScheduler)
        assert isinstance(server.sessions[0].buffer.scheduler,
                          FIFOScheduler)

    def test_audio_reaches_all_clients(self):
        loop, server, ws, (a, b) = rig(n_clients=2)
        server.submit_audio(0.5, b"\x01\x02" * 500)
        loop.run_until_idle(max_time=5)
        for client in (a, b):
            assert client.audio.chunks_received == 1
            ts, arrival = client.audio.arrivals[0]
            assert ts == 0.5


class TestVideoControl:
    def _frame(self, w, h):
        from repro.video import yuv

        rgb = np.full((h, w, 3), 99, dtype=np.uint8)
        return yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))

    def test_stream_lifecycle_reaches_client(self):
        loop, server, ws, (a,) = rig()
        stream = ws.video_create_stream("YV12", 16, 12, Rect(0, 0, 32, 24))
        ws.video_put_frame(stream, self._frame(16, 12))
        ws.video_move_stream(stream, Rect(8, 8, 32, 24))
        ws.video_destroy_stream(stream)
        loop.run_until_idle(max_time=5)
        assert a.video_stats[stream.stream_id].frames_received == 1
        assert stream.stream_id not in a.video_streams  # torn down

    def test_video_scaled_per_session(self):
        loop, server, ws, (desktop, pda) = rig(
            n_clients=2, viewports=[None, (48, 32)])
        stream = ws.video_create_stream("YV12", 16, 12, Rect(0, 0, 96, 64))
        ws.video_put_frame(stream, self._frame(16, 12))
        loop.run_until_idle(max_time=5)
        # The PDA's frame was re-encoded smaller than the desktop's.
        assert pda.stats["bytes_received"] < desktop.stats["bytes_received"]
        assert pda.video_stats[stream.stream_id].frames_received == 1


class TestResizeControl:
    def test_client_initiated_resize_rescales_video_path(self):
        loop, server, ws, (a,) = rig()
        a.request_resize(48, 32)
        loop.run_until_idle(max_time=5)
        assert server.sessions[0].scaler.sx == pytest.approx(0.5)
        ws.fill_rect(ws.screen, ws.screen.bounds, GREEN)
        loop.run_until_idle(max_time=5)
        assert (a.fb.width, a.fb.height) == (48, 32)
        assert tuple(a.fb.data[10, 10]) == GREEN


class TestMobility:
    def test_late_attach_receives_current_screen(self):
        """The paper's mobility story: a client connecting mid-session
        gets the same persistent desktop."""
        loop, server, ws, (first,) = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, (30, 60, 90, 255))
        ws.draw_text(ws.screen, 4, 4, "persistent session", GREEN)
        loop.run_until_idle(max_time=5)

        conn2 = Connection(loop, LAN_DESKTOP)
        server.attach_client(conn2)
        second = THINCClient(loop, conn2)
        loop.run_until_idle(max_time=5)
        assert second.fb.same_as(ws.screen.fb)
        assert second.fb.same_as(first.fb)

    def test_late_attach_with_small_viewport(self):
        loop, server, ws, (first,) = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, RED)
        loop.run_until_idle(max_time=5)

        conn2 = Connection(loop, LAN_DESKTOP)
        server.attach_client(conn2, viewport=(48, 32))
        pda = THINCClient(loop, conn2)
        loop.run_until_idle(max_time=5)
        assert (pda.fb.width, pda.fb.height) == (48, 32)
        assert tuple(pda.fb.data[16, 24]) == RED

    def test_attach_before_any_drawing_is_clean(self):
        loop, server, ws, (first,) = rig()
        # No drawing yet: nothing to refresh, no crash.
        assert first.total_commands() == 0
