"""Tests for the THINC client's receive path and accounting."""

import numpy as np
import pytest

from repro.core.client import ClientCostModel, THINCClient
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.protocol import wire
from repro.protocol.commands import SFillCommand, VideoFrameCommand
from repro.region import Rect
from repro.video import yuv

RED = (255, 0, 0, 255)


def rig(headless=False, **kw):
    loop = EventLoop()
    conn = Connection(loop, LAN_DESKTOP)
    client = THINCClient(loop, conn, headless=headless, **kw)
    # Drive the client directly through the server->client endpoint.
    return loop, conn, client


def send(loop, conn, *messages):
    for msg in messages:
        conn.down.write(wire.encode_message(msg))
    loop.run_until_idle(max_time=5)


class TestReceivePath:
    def test_screen_init_sizes_framebuffer(self):
        loop, conn, client = rig()
        send(loop, conn, wire.ScreenInitMessage(80, 60))
        assert (client.fb.width, client.fb.height) == (80, 60)

    def test_commands_drawn_and_counted(self):
        loop, conn, client = rig()
        send(loop, conn, wire.ScreenInitMessage(80, 60),
             SFillCommand(Rect(0, 0, 10, 10), RED))
        assert tuple(client.fb.data[5, 5]) == RED
        assert client.stats["commands_by_kind"] == {"sfill": 1}
        assert client.total_commands() == 1

    def test_headless_counts_without_drawing(self):
        loop, conn, client = rig(headless=True)
        send(loop, conn, wire.ScreenInitMessage(80, 60),
             SFillCommand(Rect(0, 0, 10, 10), RED))
        assert client.total_commands() == 1
        assert tuple(client.fb.data[5, 5]) != RED

    def test_messages_split_across_chunks_reassemble(self):
        loop, conn, client = rig()
        data = wire.encode_message(wire.ScreenInitMessage(80, 60)) + \
            wire.encode_message(SFillCommand(Rect(0, 0, 10, 10), RED))
        # Feed the stream byte-by-byte through the parser.
        for i in range(0, len(data), 3):
            client._on_data(data[i : i + 3])
        assert client.total_commands() == 1
        assert tuple(client.fb.data[5, 5]) == RED

    def test_video_stream_registry(self):
        loop, conn, client = rig()
        rgb = np.zeros((12, 16, 3), dtype=np.uint8)
        frame = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        send(loop, conn,
             wire.ScreenInitMessage(80, 60),
             wire.VideoSetupMessage(4, "YV12", 16, 12, Rect(0, 0, 32, 24)),
             VideoFrameCommand(4, Rect(0, 0, 32, 24), 16, 12, frame, 1),
             VideoFrameCommand(4, Rect(0, 0, 32, 24), 16, 12, frame, 2),
             wire.VideoTeardownMessage(4))
        stats = client.video_stats[4]
        assert stats.frames_received == 2
        assert stats.frame_numbers == [1, 2]
        assert stats.first_frame_time <= stats.last_frame_time
        assert 4 not in client.video_streams

    def test_audio_chunks_recorded(self):
        loop, conn, client = rig()
        send(loop, conn, wire.AudioChunkMessage(1.25, b"\x00" * 100))
        assert client.audio.chunks_received == 1
        assert client.audio.bytes_received == 100
        assert client.audio.arrivals[0][0] == 1.25


class TestCostModel:
    def test_processing_time_accumulates(self):
        model = ClientCostModel(per_byte=1e-6, per_pixel=1e-6, fixed=0.0)
        loop, conn, client = rig(cost_model=model)
        send(loop, conn, wire.ScreenInitMessage(80, 60),
             SFillCommand(Rect(0, 0, 10, 10), RED))
        cmd = SFillCommand(Rect(0, 0, 10, 10), RED)
        expected = cmd.wire_size() * 1e-6 + 100 * 1e-6
        assert client.stats["processing_time"] == pytest.approx(expected)

    def test_done_time_includes_processing(self):
        loop, conn, client = rig()
        send(loop, conn, wire.ScreenInitMessage(80, 60),
             SFillCommand(Rect(0, 0, 10, 10), RED))
        assert client.done_time_with_processing() > \
            client.stats["last_update_time"]

    def test_cost_formula(self):
        model = ClientCostModel(per_byte=2.0, per_pixel=3.0, fixed=1.0)
        assert model.cost(10, 100) == pytest.approx(1.0 + 20.0 + 300.0)


class TestRefreshRequest:
    def test_refresh_recovers_corrupted_region(self):
        """Client-side state loss repaired by a region refresh."""
        from repro.core import THINCServer
        from repro.display import WindowServer

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 64, 48)
        ws = WindowServer(64, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        ws.fill_rect(ws.screen, ws.screen.bounds, (70, 80, 90, 255))
        ws.draw_text(ws.screen, 4, 4, "state", (255, 255, 0, 255))
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)
        # Corrupt part of the client framebuffer out-of-band.
        client.fb.fill_rect(Rect(0, 0, 32, 24), (0, 0, 0, 255))
        assert not client.fb.same_as(ws.screen.fb)
        client.request_refresh(Rect(0, 0, 32, 24))
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_refresh_outside_screen_ignored(self):
        from repro.core import THINCServer
        from repro.display import WindowServer

        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 64, 48)
        ws = WindowServer(64, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn)
        ws.fill_rect(ws.screen, Rect(0, 0, 4, 4), RED)
        loop.run_until_idle(max_time=5)
        before = client.total_commands()
        client.request_refresh(Rect(1000, 1000, 8, 8))
        loop.run_until_idle(max_time=5)
        assert client.total_commands() == before
