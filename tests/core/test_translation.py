"""Tests for the THINC translation layer (virtual display driver)."""

import numpy as np
import pytest

from repro.core.translation import THINCDriver
from repro.display import WindowServer, solid_pixels
from repro.display.driver import InputEvent
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
BLUE = (0, 0, 255, 255)
WHITE = (255, 255, 255, 255)


class CollectingSink:
    """An UpdateSink that records everything submitted."""

    def __init__(self):
        self.commands = []
        self.video_events = []
        self.inputs = []

    def submit(self, command):
        self.commands.append(command)

    def video_setup(self, stream):
        self.video_events.append(("setup", stream.stream_id))

    def video_move(self, stream):
        self.video_events.append(("move", stream.stream_id))

    def video_teardown(self, stream):
        self.video_events.append(("teardown", stream.stream_id))

    def note_input(self, event):
        self.inputs.append(event)

    def kinds(self):
        return [c.kind for c in self.commands]


@pytest.fixture
def rig():
    sink = CollectingSink()
    driver = THINCDriver(sink, compress_raw=False)
    ws = WindowServer(64, 48, driver=driver)
    return ws, driver, sink


class TestOneToOneMapping:
    """Section 4: translation is usually a direct mapping."""

    def test_fill_becomes_sfill(self, rig):
        ws, driver, sink = rig
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        assert sink.kinds() == ["sfill"]

    def test_tile_becomes_pfill(self, rig):
        ws, driver, sink = rig
        tile = solid_pixels(4, 4, GREEN)
        ws.fill_tiled(ws.screen, Rect(0, 0, 16, 16), tile)
        assert sink.kinds() == ["pfill"]

    def test_text_becomes_bitmaps(self, rig):
        ws, driver, sink = rig
        ws.draw_text(ws.screen, 2, 2, "ab", RED)
        assert set(sink.kinds()) == {"bitmap"}
        assert all(c.bg is None for c in sink.commands)

    def test_image_becomes_raw(self, rig):
        ws, driver, sink = rig
        ws.put_image(ws.screen, Rect(0, 0, 16, 16),
                     solid_pixels(16, 16, BLUE))
        assert set(sink.kinds()) == {"raw"}

    def test_screen_copy_becomes_copy(self, rig):
        ws, driver, sink = rig
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        ws.copy_area(ws.screen, ws.screen, Rect(0, 0, 8, 8), 20, 20)
        assert sink.kinds() == ["sfill", "copy"]
        assert sink.commands[1].dest == Rect(20, 20, 8, 8)

    def test_composite_over_becomes_composite(self, rig):
        ws, driver, sink = rig
        ws.composite(ws.screen, Rect(0, 0, 4, 4),
                     solid_pixels(4, 4, (255, 0, 0, 128)))
        assert sink.kinds() == ["composite"]

    def test_exotic_composite_falls_back_to_raw(self, rig):
        ws, driver, sink = rig
        ws.composite(ws.screen, Rect(0, 0, 4, 4),
                     solid_pixels(4, 4, (255, 0, 0, 128)), operator="plus")
        assert sink.kinds() == ["raw"]


class TestOffscreenAwareness:
    """Section 4.1: semantic tracking of offscreen drawing."""

    def test_offscreen_drawing_sends_nothing(self, rig):
        ws, driver, sink = rig
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 32, 32), RED)
        ws.draw_text(pm, 2, 2, "hi", BLUE)
        assert sink.commands == []
        assert driver.stats["offscreen_commands"] > 0

    def test_copy_out_replays_semantic_commands(self, rig):
        ws, driver, sink = rig
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 32, 32), RED)
        ws.draw_text(pm, 2, 2, "hi", BLUE)
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 32), 4, 4)
        kinds = set(sink.kinds())
        assert "sfill" in kinds and "bitmap" in kinds
        assert "raw" not in kinds  # no pixel fallback needed
        assert driver.stats["raw_fallbacks"] == 0

    def test_uncovered_offscreen_content_ships_as_raw(self, rig):
        ws, driver, sink = rig
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 16, 32), RED)  # half described
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 32), 0, 0)
        kinds = sink.kinds()
        assert "sfill" in kinds and "raw" in kinds
        assert driver.stats["raw_fallbacks"] == 1

    def test_offscreen_hierarchy_copies_commands(self, rig):
        """Pixmap-to-pixmap copies move semantics between queues."""
        ws, driver, sink = rig
        small = ws.create_pixmap(16, 16)
        big = ws.create_pixmap(32, 32)
        ws.fill_rect(small, Rect(0, 0, 16, 16), GREEN)
        ws.fill_rect(big, Rect(0, 0, 32, 32), WHITE)
        ws.copy_area(small, big, Rect(0, 0, 16, 16), 8, 8)
        ws.copy_area(big, ws.screen, Rect(0, 0, 32, 32), 0, 0)
        assert "raw" not in sink.kinds()
        # Source queue is intact: copy again elsewhere.
        ws.copy_area(big, ws.screen, Rect(0, 0, 32, 32), 32, 16)
        assert "raw" not in sink.kinds()

    def test_screen_to_pixmap_snapshots_pixels(self, rig):
        ws, driver, sink = rig
        ws.fill_rect(ws.screen, Rect(0, 0, 16, 16), RED)
        pm = ws.create_pixmap(16, 16)
        ws.copy_area(ws.screen, pm, Rect(0, 0, 16, 16), 0, 0)
        queue = driver.offscreen_queue(pm)
        assert queue is not None
        assert [c.kind for c in queue] == ["raw"]

    def test_destroy_drops_queue(self, rig):
        ws, driver, sink = rig
        pm = ws.create_pixmap(16, 16)
        ws.fill_rect(pm, Rect(0, 0, 4, 4), RED)
        assert driver.offscreen_queue(pm) is not None
        ws.free_pixmap(pm)
        assert driver.offscreen_queue(pm) is None

    def test_replay_pixel_exact_through_sink(self, rig):
        """Applying the sunk commands reproduces the server screen."""
        from repro.display import Framebuffer

        ws, driver, sink = rig
        pm = ws.create_pixmap(32, 24)
        ws.fill_rect(pm, Rect(0, 0, 32, 24), (10, 20, 30, 255))
        ws.put_image(pm, Rect(4, 4, 8, 8), solid_pixels(8, 8, GREEN))
        ws.draw_text(pm, 2, 14, "xyz", WHITE)
        ws.fill_rect(ws.screen, ws.screen.bounds, (0, 0, 0, 255))
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 24), 10, 10)
        fb = Framebuffer(64, 48)
        fb.fill_rect(fb.bounds, (0, 0, 0, 255))
        for cmd in sink.commands:
            cmd.apply(fb)
        assert fb.same_as(ws.screen.fb)


class TestOffscreenAblation:
    def test_disabled_awareness_ships_raw_pixels(self):
        sink = CollectingSink()
        driver = THINCDriver(sink, compress_raw=False,
                             offscreen_awareness=False)
        ws = WindowServer(64, 48, driver=driver)
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 32, 32), RED)
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 32), 0, 0)
        assert sink.kinds() == ["raw"]
        assert driver.stats["raw_fallbacks"] == 1

    def test_disabled_awareness_still_pixel_correct(self):
        from repro.display import Framebuffer

        sink = CollectingSink()
        driver = THINCDriver(sink, compress_raw=False,
                             offscreen_awareness=False)
        ws = WindowServer(64, 48, driver=driver)
        pm = ws.create_pixmap(32, 32)
        ws.fill_rect(pm, Rect(0, 0, 32, 32), RED)
        ws.draw_text(pm, 2, 2, "ok", BLUE)
        ws.copy_area(pm, ws.screen, Rect(0, 0, 32, 32), 0, 0)
        fb = Framebuffer(64, 48)
        for cmd in sink.commands:
            cmd.apply(fb)
        block = Rect(0, 0, 32, 32)
        assert np.array_equal(fb.read_pixels(block),
                              ws.screen.fb.read_pixels(block))


class TestVideoAndInput:
    def test_video_lifecycle_reaches_sink(self, rig):
        from repro.video import yuv

        ws, driver, sink = rig
        stream = ws.video_create_stream("YV12", 16, 12, Rect(0, 0, 32, 24))
        rgb = np.zeros((12, 16, 3), dtype=np.uint8)
        ws.video_put_frame(stream, yuv.pack_yv12(*yuv.rgb_to_yv12(rgb)))
        ws.video_destroy_stream(stream)
        assert ("setup", stream.stream_id) in sink.video_events
        assert ("teardown", stream.stream_id) in sink.video_events
        assert sink.kinds() == ["vframe"]
        assert sink.commands[0].frame_no == 1

    def test_input_forwarded(self, rig):
        ws, driver, sink = rig
        ws.inject_input(InputEvent("mouse-click", 5, 5, 0.1))
        assert len(sink.inputs) == 1
