"""Tests for the Section 7 authentication and session-sharing model."""

import pytest

from repro.core.auth import (AccountDatabase, AuthError, Authenticator,
                             SessionRegistry)


@pytest.fixture
def stack():
    accounts = AccountDatabase()
    accounts.add_user("alice", "wonderland")
    accounts.add_user("bob", "builder")
    sessions = SessionRegistry()
    sessions.create("alice:0", "alice")
    return accounts, sessions, Authenticator(accounts, sessions)


class TestAccounts:
    def test_verify_correct_password(self, stack):
        accounts, _, _ = stack
        assert accounts.verify("alice", "wonderland")

    def test_reject_wrong_password(self, stack):
        accounts, _, _ = stack
        assert not accounts.verify("alice", "hearts")

    def test_reject_unknown_user(self, stack):
        accounts, _, _ = stack
        assert not accounts.verify("mallory", "x")

    def test_passwords_salted(self):
        db = AccountDatabase()
        db.add_user("a", "same")
        db.add_user("b", "same")
        assert db._users["a"][1] != db._users["b"][1]

    def test_remove_user(self, stack):
        accounts, _, _ = stack
        accounts.remove_user("bob")
        assert "bob" not in accounts

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            AccountDatabase().add_user("", "x")


class TestOwnership:
    def test_owner_connects(self, stack):
        _, sessions, auth = stack
        result = auth.authenticate("alice", "wonderland", "alice:0")
        assert result.role == "owner"
        assert sessions.get("alice:0").connected == ["alice"]

    def test_bad_password_rejected(self, stack):
        _, _, auth = stack
        with pytest.raises(AuthError):
            auth.authenticate("alice", "nope", "alice:0")

    def test_non_owner_rejected(self, stack):
        _, _, auth = stack
        with pytest.raises(AuthError):
            auth.authenticate("bob", "builder", "alice:0")

    def test_unknown_session_rejected(self, stack):
        _, _, auth = stack
        with pytest.raises(AuthError):
            auth.authenticate("alice", "wonderland", "carol:0")


class TestSharing:
    def test_peer_joins_shared_session(self, stack):
        _, sessions, auth = stack
        sessions.get("alice:0").enable_sharing("collab")
        result = auth.authenticate("bob", "builder", "alice:0",
                                   share_password="collab")
        assert result.role == "peer"
        assert "bob" in sessions.get("alice:0").connected

    def test_wrong_session_password_rejected(self, stack):
        _, sessions, auth = stack
        sessions.get("alice:0").enable_sharing("collab")
        with pytest.raises(AuthError):
            auth.authenticate("bob", "builder", "alice:0",
                              share_password="wrong")

    def test_unshared_session_rejects_peers(self, stack):
        _, _, auth = stack
        with pytest.raises(AuthError):
            auth.authenticate("bob", "builder", "alice:0",
                              share_password="anything")

    def test_peer_still_needs_valid_account(self, stack):
        _, sessions, auth = stack
        sessions.get("alice:0").enable_sharing("collab")
        with pytest.raises(AuthError):
            auth.authenticate("mallory", "x", "alice:0",
                              share_password="collab")

    def test_disable_sharing_evicts_new_peers(self, stack):
        _, sessions, auth = stack
        record = sessions.get("alice:0")
        record.enable_sharing("collab")
        record.disable_sharing()
        with pytest.raises(AuthError):
            auth.authenticate("bob", "builder", "alice:0",
                              share_password="collab")

    def test_empty_share_password_rejected(self, stack):
        _, sessions, _ = stack
        with pytest.raises(ValueError):
            sessions.get("alice:0").enable_sharing("")


class TestRegistry:
    def test_duplicate_session_rejected(self, stack):
        _, sessions, _ = stack
        with pytest.raises(ValueError):
            sessions.create("alice:0", "alice")

    def test_destroy(self, stack):
        _, sessions, _ = stack
        sessions.destroy("alice:0")
        assert sessions.get("alice:0") is None
