"""The staged pipeline and its shared prepare plane.

Sharing scaled/compressed payloads across sessions is only a win if it
is invisible: every client must end up with framebuffers identical to
what a private, unshared preparation path would have produced — across
mixed viewports, cache hits, LRU eviction and SRSF reordering — and
same-viewport clients must receive byte-identical wire streams.
"""

import numpy as np

from tests.helpers import (BLUE, GREEN, RED, WHITE,
                           make_multi_rig as make_rig)
from repro.core import STAGE_NAMES, THINCClient, THINCServer
from repro.core.pipeline import StageStats
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.protocol.commands import RawCommand, SFillCommand
from repro.region import Rect

ZOOM_RECT = Rect(16, 8, 48, 32)


def draw_phase(ws, rng):
    """A deterministic mixed workload phase (fills, text, photo, copy)."""
    ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
    ws.fill_rect(ws.screen, Rect(4, 4, 40, 24), RED)
    ws.draw_text(ws.screen, 6, 8, "pipeline", BLUE)
    ws.put_image(ws.screen, Rect(48, 8, 32, 24),
                 rng.integers(0, 256, (24, 32, 4), dtype=np.uint8))
    ws.copy_area(ws.screen, ws.screen, Rect(4, 4, 24, 16), 60, 40)


def run_workload(loop, ws, clients, zoom=()):
    """Two draw phases with an optional mid-run zoom per client index."""
    rng = np.random.default_rng(7)
    draw_phase(ws, rng)
    loop.run_until_idle(max_time=10)
    for index in zoom:
        clients[index].request_zoom(ZOOM_RECT)
    loop.run_until_idle(max_time=10)
    ws.fill_rect(ws.screen, Rect(20, 30, 30, 20), GREEN)
    ws.put_image(ws.screen, Rect(0, 40, 24, 20),
                 rng.integers(0, 256, (20, 24, 4), dtype=np.uint8))
    loop.run_until_idle(max_time=10)


class TestSharedPrepareExactness:
    def test_mixed_viewports_match_unshared_baselines(self):
        """Native, PDA-scaled and zoomed clients sharing one session all
        converge to the framebuffers a dedicated single-client server
        (where no sharing is possible) produces for their viewport."""
        viewports = [None, (48, 32), None]
        loop, mon, server, ws, clients = make_rig(viewports)
        run_workload(loop, ws, clients, zoom=(2,))
        assert server.stats["prepare_cache_hits"] > 0

        for index, viewport in enumerate(viewports):
            bloop, bmon, bserver, bws, bclients = make_rig([viewport])
            run_workload(bloop, bws, bclients,
                         zoom=(0,) if index == 2 else ())
            assert clients[index].fb.same_as(bclients[0].fb), index

    def test_same_viewport_clients_get_byte_identical_streams(self):
        """A cache hit replays the prepared payload verbatim: two
        same-viewport plaintext clients see identical wire bytes."""
        loop = EventLoop()
        server = THINCServer(loop, 96, 64)
        ws = WindowServer(96, 64, driver=server.driver, clock=loop.clock)
        streams = []
        for _ in range(2):
            conn = Connection(loop, LAN_DESKTOP)
            server.attach_client(conn)
            received = []
            conn.down.connect(received.append)
            streams.append(received)
            THINCClient(loop, conn, headless=True)
        rng = np.random.default_rng(11)
        draw_phase(ws, rng)
        loop.run_until_idle(max_time=10)
        assert server.plane.stats.cache_hits > 0
        assert b"".join(streams[0]) == b"".join(streams[1])

    def test_lru_eviction_keeps_pixels_exact(self):
        """A deliberately tiny prepared-command cache forces constant
        eviction and re-preparation; correctness must not depend on the
        cache at all."""
        loop, mon, server, ws, clients = make_rig(
            [None, (48, 32)], prepare_cache_entries=2)
        run_workload(loop, ws, clients)
        assert server.plane.cache_size() <= 2
        assert clients[0].fb.same_as(ws.screen.fb)
        bloop, bmon, bserver, bws, bclients = make_rig([(48, 32)])
        run_workload(bloop, bws, bclients)
        assert clients[1].fb.same_as(bclients[0].fb)

    def test_cache_hit_preserves_submission_order(self):
        """A hit whose prepared payload was ready long ago must not
        overtake an expensive miss submitted just before it: the buffer
        stage has to see commands in submission order or a stale command
        would survive eviction and win."""
        loop, mon, server, ws, clients = make_rig([None, None])
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        loop.run_until_idle(max_time=10)
        one, two = server.sessions
        hits_before = server.plane.stats.cache_hits

        green = SFillCommand(Rect(10, 10, 20, 12), GREEN)
        # Pay for the fill on session one: it is now cached.
        server.plane.submit(green, (one,))
        rng = np.random.default_rng(13)
        photo = RawCommand(ws.screen.bounds,
                           rng.integers(0, 256, (64, 96, 4), dtype=np.uint8))
        # Session two: an expensive full-screen RAW (miss, ready only
        # after its compression time) *then* the cached fill (hit, ready
        # immediately).  The fill was submitted last, so it must land on
        # top of the photo.
        server.plane.submit(photo, (two,))
        server.plane.submit(green, (two,))
        assert server.plane.stats.cache_hits == hits_before + 1
        loop.run_until_idle(max_time=10)
        assert np.all(clients[1].fb.data[10:22, 10:30] == GREEN)
        # And outside the fill the photo shows through.
        assert np.all(clients[1].fb.data[40:, :] ==
                      photo.pixels[40:, :])

    def test_eight_clients_prepare_once(self):
        """Misses (and therefore prepare CPU) match the single-client
        run exactly; the other seven lookups per command are hits."""
        results = {}
        for n in (1, 8):
            loop, mon, server, ws, clients = make_rig([None] * n)
            run_workload(loop, ws, clients)
            results[n] = dict(server.stats)
            for client in clients:
                assert client.fb.same_as(ws.screen.fb)
        assert results[8]["prepare_cache_misses"] == \
            results[1]["prepare_cache_misses"]
        assert results[8]["prepare_cache_hits"] == \
            7 * results[8]["prepare_cache_misses"]
        assert results[8]["cpu_time"] == results[1]["cpu_time"]

    def test_encrypted_sessions_share_prepare_but_not_keystream(self):
        """Encryption is per-session (stage 5, after the shared plane):
        prepared payloads are shared while each cipher stream stays
        independent, and both clients still decode pixel-exactly."""
        loop = EventLoop()
        key = b"pipeline-key"
        server = THINCServer(loop, 96, 64, encrypt_key=key)
        ws = WindowServer(96, 64, driver=server.driver, clock=loop.clock)
        clients = []
        for _ in range(2):
            conn = Connection(loop, LAN_DESKTOP)
            server.attach_client(conn)
            clients.append(THINCClient(loop, conn, decrypt_key=key))
        rng = np.random.default_rng(17)
        draw_phase(ws, rng)
        loop.run_until_idle(max_time=10)
        assert server.plane.stats.cache_hits > 0
        for client in clients:
            assert client.fb.same_as(ws.screen.fb)


class TestInstrumentation:
    def test_stage_stats_roundtrip(self):
        stats = StageStats()
        stats.commands_in += 3
        stats.bytes_out += 100
        as_dict = stats.as_dict()
        assert as_dict["commands_in"] == 3
        assert as_dict["bytes_out"] == 100
        total = StageStats()
        total.accumulate(stats)
        total.accumulate(stats)
        assert total.commands_in == 6

    def test_pipeline_stats_cover_every_stage(self):
        loop, mon, server, ws, clients = make_rig([None, (48, 32)])
        run_workload(loop, ws, clients)
        stats = server.pipeline_stats()
        assert set(STAGE_NAMES) <= set(stats)
        # Translation admitted every driver-submitted command...
        assert stats["translate"]["commands_in"] == \
            server.stats["commands_translated"] > 0
        assert stats["translate"]["driver_ops"] > 0
        # ...the plane looked each one up once per session...
        plane = stats["prepare"]
        assert plane["cache_hits"] + plane["cache_misses"] > 0
        assert plane["cpu_seconds"] > 0
        # ...and the per-session stages drained completely.
        assert stats["buffer"]["commands_in"] > 0
        assert stats["buffer"]["queue_depth"] == 0
        assert stats["frame"]["bytes_out"] > 0
        assert stats["flush"]["bytes_out"] >= stats["frame"]["bytes_out"]
        for session in server.sessions:
            assert session.stats["cpu_time"] >= 0.0
        attributed = sum(s.stats["cpu_time"] for s in server.sessions)
        assert abs(attributed - server.stats["cpu_time"]) < 1e-9

    def test_scheduler_counts_orderings(self):
        loop, mon, server, ws, clients = make_rig([None])
        run_workload(loop, ws, clients)
        scheduler = server.sessions[0].buffer.scheduler
        assert scheduler.stats["orderings"] > 0
