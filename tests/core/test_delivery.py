"""Tests for the client buffer: push delivery and non-blocking flush."""

import numpy as np

from repro.core import ClientBuffer
from repro.display import Framebuffer
from repro.protocol import (BitmapCommand, CopyCommand, RawCommand,
                            SFillCommand, decode_command)
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)


class FakeWriter:
    """A writer with a fixed room per flush period."""

    def __init__(self, room):
        self.room = room
        self.chunks = []

    def writable_bytes(self):
        return self.room

    def write(self, data):
        assert len(data) <= self.room
        self.room -= len(data)
        self.chunks.append(data)


def raw(rect, seed=0):
    rng = np.random.default_rng(seed)
    return RawCommand(rect, rng.integers(0, 256,
                                         (rect.height, rect.width, 4),
                                         dtype=np.uint8), compress=False)


class TestFlushBasics:
    def test_flush_sends_everything_when_room(self):
        buf = ClientBuffer()
        buf.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        buf.add(SFillCommand(Rect(20, 0, 4, 4), GREEN))
        w = FakeWriter(10000)
        result = buf.flush(w)
        assert result.commands_sent == 2
        assert not result.blocked
        assert buf.pending_commands() == 0

    def test_flush_respects_srsf_order(self):
        buf = ClientBuffer()
        big = raw(Rect(0, 0, 64, 64), 1)
        buf.add(big)
        buf.add(SFillCommand(Rect(200, 0, 4, 4), RED))
        w = FakeWriter(10**6)
        buf.flush(w)
        first = decode_command(w.chunks[0])
        assert first.kind == "sfill"

    def test_blocked_flush_stops_and_resumes(self):
        buf = ClientBuffer()
        buf.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        buf.add(raw(Rect(100, 100, 40, 40), 1))
        w = FakeWriter(30)  # room for the fill only
        result = buf.flush(w)
        assert result.blocked
        assert buf.pending_commands() >= 1
        w2 = FakeWriter(10**6)
        result2 = buf.flush(w2)
        assert not result2.blocked
        assert buf.pending_commands() == 0

    def test_large_command_split_on_blockage(self):
        buf = ClientBuffer()
        cmd = raw(Rect(0, 0, 32, 32), 2)
        full_size = cmd.wire_size()
        buf.add(cmd)
        w = FakeWriter(full_size // 2)
        result = buf.flush(w)
        assert result.blocked
        assert result.commands_split == 1
        assert result.bytes_written > 0
        # Remainder was reformatted in place, not re-queued at the back.
        assert buf.pending_commands() == 1
        remainder = next(iter(buf.queue))
        assert remainder.dest.height < 32

    def test_split_then_complete_reassembles_pixels(self):
        buf = ClientBuffer()
        cmd = raw(Rect(0, 0, 16, 16), 3)
        pixels = cmd.pixels.copy()
        buf.add(cmd)
        chunks = []
        for room in [cmd.wire_size() // 3 + 20] * 6:
            w = FakeWriter(room)
            buf.flush(w)
            chunks.extend(w.chunks)
            if buf.pending_commands() == 0:
                break
        fb = Framebuffer(16, 16)
        for chunk in chunks:
            decode_command(chunk).apply(fb)
        assert np.array_equal(fb.read_pixels(Rect(0, 0, 16, 16)), pixels)


class TestEvictionThroughBuffer:
    def test_overwritten_updates_never_sent(self):
        buf = ClientBuffer()
        for i in range(10):
            buf.add(raw(Rect(0, 0, 16, 16), seed=i))
        assert buf.pending_commands() == 1

    def test_pending_bytes_tracks_queue(self):
        buf = ClientBuffer()
        cmd = SFillCommand(Rect(0, 0, 4, 4), RED)
        buf.add(cmd)
        assert buf.pending_bytes() == cmd.wire_size()


class TestDependencies:
    def test_transparent_floor_set(self):
        buf = ClientBuffer()
        buf.add(raw(Rect(0, 0, 64, 64), 1))  # large opaque base
        glyph = BitmapCommand(Rect(4, 4, 5, 7), np.ones((7, 5), bool),
                              RED, None)
        buf.add(glyph)
        assert glyph.sched_floor >= 1
        assert buf.stats["floors_set"] == 1

    def test_copy_depends_on_source_producer(self):
        buf = ClientBuffer()
        buf.add(raw(Rect(0, 0, 64, 64), 1))
        cp = CopyCommand(0, 0, Rect(200, 200, 16, 16))
        buf.add(cp)
        assert cp.sched_floor >= 1

    def test_independent_commands_have_no_floor(self):
        buf = ClientBuffer()
        buf.add(raw(Rect(0, 0, 16, 16), 1))
        other = SFillCommand(Rect(100, 100, 4, 4), RED)
        buf.add(other)
        assert other.sched_floor == -1

    def test_dependency_respected_in_flush_order(self):
        buf = ClientBuffer()
        base = raw(Rect(0, 0, 64, 64), 1)
        buf.add(base)
        glyph = BitmapCommand(Rect(4, 4, 5, 7), np.ones((7, 5), bool),
                              RED, None)
        buf.add(glyph)
        w = FakeWriter(10**7)
        buf.flush(w)
        kinds = [decode_command(c).kind for c in w.chunks]
        assert kinds.index("raw") < kinds.index("bitmap")


class TestRealtime:
    def test_update_near_recent_input_is_realtime(self):
        buf = ClientBuffer()
        buf.note_input(100, 100, time=1.0)
        cmd = SFillCommand(Rect(96, 96, 10, 10), RED)
        buf.add(cmd, now=1.1)
        assert cmd.realtime

    def test_far_update_is_not_realtime(self):
        buf = ClientBuffer()
        buf.note_input(100, 100, time=1.0)
        cmd = SFillCommand(Rect(400, 400, 10, 10), RED)
        buf.add(cmd, now=1.1)
        assert not cmd.realtime

    def test_stale_input_expires(self):
        buf = ClientBuffer()
        buf.note_input(100, 100, time=1.0)
        cmd = SFillCommand(Rect(96, 96, 10, 10), RED)
        buf.add(cmd, now=5.0)
        assert not cmd.realtime

    def test_dependent_command_not_promoted(self):
        buf = ClientBuffer()
        buf.note_input(10, 10, time=1.0)
        buf.add(raw(Rect(0, 0, 64, 64), 1), now=1.0)
        glyph = BitmapCommand(Rect(8, 8, 5, 7), np.ones((7, 5), bool),
                              RED, None)
        buf.add(glyph, now=1.0)
        assert not glyph.realtime  # has a dependency; must not jump

    def test_realtime_flushed_first(self):
        buf = ClientBuffer()
        buf.add(raw(Rect(200, 200, 30, 30), 1), now=0.0)
        buf.note_input(10, 10, time=1.0)
        button = SFillCommand(Rect(8, 8, 10, 10), RED)
        buf.add(button, now=1.0)
        w = FakeWriter(10**7)
        buf.flush(w)
        assert decode_command(w.chunks[0]).kind == "sfill"


class ChunkWriter:
    """A writer whose capacity arrives in random-sized chunks."""

    def __init__(self, rng):
        self.rng = rng
        self.room = 0
        self.chunks = []

    def refill(self):
        self.room += int(self.rng.integers(16, 3000))

    def writable_bytes(self):
        return self.room

    def write(self, data):
        assert len(data) <= self.room
        self.room -= len(data)
        self.chunks.append(data)


class TestDeliveryProperty:
    """Random command streams + random flush capacities stay correct."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_flush_reordering_preserves_final_pixels(self, seed):
        import numpy as np

        from repro.display import Framebuffer

        rng = np.random.default_rng(seed)
        buf = ClientBuffer()
        truth = Framebuffer(64, 48)
        writer = ChunkWriter(rng)

        def random_command():
            kind = rng.integers(0, 4)
            x, y = int(rng.integers(0, 48)), int(rng.integers(0, 32))
            w, h = int(rng.integers(1, 16)), int(rng.integers(1, 16))
            color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
            if kind == 0:
                return SFillCommand(Rect(x, y, w, h), color)
            if kind == 1:
                return RawCommand(
                    Rect(x, y, w, h),
                    rng.integers(0, 256, (h, w, 4), dtype=np.uint8),
                    compress=False)
            if kind == 2:
                mask = rng.integers(0, 2, (h, w)).astype(bool)
                return BitmapCommand(Rect(x, y, w, h), mask, color, None)
            return CopyCommand(int(rng.integers(0, 16)),
                               int(rng.integers(0, 16)), Rect(x, y, w, h))

        client_fb = Framebuffer(64, 48)
        for _ in range(25):
            cmd = random_command()
            cmd.apply(truth)
            buf.add(cmd, now=0.0)
            # Interleave partial flushes with tiny capacities.
            if rng.random() < 0.5:
                writer.refill()
                buf.flush(writer)
        # Drain everything.
        for _ in range(300):
            if buf.pending_commands() == 0:
                break
            writer.refill()
            buf.flush(writer)
        assert buf.pending_commands() == 0
        for chunk in writer.chunks:
            decode_command(chunk).apply(client_fb)
        assert client_fb.same_as(truth)
