"""Tile-index coherence tests for the spatially indexed CommandQueue.

PR 3 gave the queue a uniform tile-grid index (``_TileIndex``) and
position keys (``_qorder``) so eviction, ``commands_for_copy``, and
``uncovered_region`` visit only candidate commands.  These tests drive
every mutation path — add (with eviction, clipping, and tail merging),
remove, replace, drain, clear — and assert after each step that
``CommandQueue.audit_structures()`` finds the index, the pinned-source
map, and the position keys exactly coherent with the queued commands.

A hypothesis property additionally checks the index's *superset
guarantee*: every queued command overlapping a probe rectangle must
appear among ``candidates_rect(probe)`` (the fast paths may visit
extra commands, never miss one).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommandQueue
from repro.core.command_queue import TILE_SHIFT
from repro.protocol import (BitmapCommand, CopyCommand, RawCommand,
                            SFillCommand)
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
W, H = 256, 192  # spans multiple 64-px tiles in both axes


def raw(rect, seed=0):
    rng = np.random.default_rng(seed)
    return RawCommand(rect, rng.integers(0, 256, (rect.height, rect.width, 4),
                                         dtype=np.uint8))


def bitmap(rect, seed=0):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, (rect.height, rect.width), dtype=np.uint8)
    return BitmapCommand(rect, bits, RED, GREEN)


def ok(queue):
    problem = queue.audit_structures()
    assert problem is None, problem


class TestCoherenceThroughMutations:
    def test_add_plain(self):
        q = CommandQueue()
        for i in range(6):
            q.add(SFillCommand(Rect(40 * i, 8 * i, 40, 40), (i, i, i, 255)))
            ok(q)

    def test_add_with_eviction(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 64, 64), 1))
        ok(q)
        # Complete cover of the first command: evicted, index must drop it.
        q.add(raw(Rect(0, 0, 64, 64), 2))
        ok(q)
        assert q.stats["evicted"] == 1 and len(q) == 1

    def test_add_with_clipping(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 100, 100), 1))
        ok(q)
        # Partial cover: the raw command is clipped into fragments whose
        # tile registrations must replace the parent's.
        q.add(SFillCommand(Rect(0, 0, 100, 40), RED))
        ok(q)
        frags = [c for c in q if c.kind == "raw"]
        assert frags and all(c.dest.y >= 40 for c in frags)

    def test_add_with_tail_merge(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 32, 32), RED))
        ok(q)
        # Same colour, adjacent: merges with the tail; the merged
        # command's registration must cover the union footprint.
        q.add(SFillCommand(Rect(32, 0, 32, 32), RED))
        ok(q)
        assert q.stats["merged"] == 1 and len(q) == 1
        assert q._index.candidates_rect(Rect(60, 4, 2, 2))

    def test_copy_pins_tracked(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 64, 64), 1))
        q.add(CopyCommand(0, 0, Rect(128, 0, 64, 64)))
        ok(q)
        # The pinned source protects the raw command from this cover.
        q.add(raw(Rect(0, 0, 64, 64), 2))
        ok(q)
        kinds = sorted(c.kind for c in q)
        assert kinds.count("raw") == 2

    def test_remove(self):
        q = CommandQueue(merge=False)
        cmds = [q.add(raw(Rect(70 * i, 0, 64, 64), i)) for i in range(3)]
        ok(q)
        q.remove(cmds[1])
        ok(q)
        q.remove(cmds[0])
        ok(q)
        assert len(q) == 1
        assert not q._index.candidates_rect(Rect(0, 0, 64, 64))

    def test_replace_with_split_remainder(self):
        q = CommandQueue(merge=False)
        cmd = q.add(raw(Rect(0, 0, 128, 64), 3))
        sent, remainder = cmd.split(cmd.wire_size() // 2)
        q.replace(cmd, remainder)
        ok(q)
        assert q.commands[0] is remainder
        # The replaced original must be fully unregistered.
        for cands in q._index._tiles.values():
            assert cmd not in cands

    def test_drain_and_refill(self):
        q = CommandQueue()
        for i in range(4):
            q.add(raw(Rect(66 * i, 0, 64, 64), i))
        out = q.drain()
        ok(q)
        assert len(out) == 4 and len(q) == 0
        assert not q._index._tiles
        q.add(SFillCommand(Rect(0, 0, 64, 64), RED))
        ok(q)

    def test_clear(self):
        q = CommandQueue()
        q.add(raw(Rect(0, 0, 64, 64), 1))
        q.add(CopyCommand(0, 0, Rect(128, 0, 64, 64)))
        q.clear()
        ok(q)
        assert len(q) == 0 and not q._index._tiles

    def test_mixed_churn(self):
        q = CommandQueue()
        q.add(bitmap(Rect(10, 10, 50, 20), 1))
        ok(q)
        q.add(SFillCommand(Rect(0, 0, 128, 128), RED))
        ok(q)
        q.add(CopyCommand(0, 0, Rect(128, 64, 96, 96)))
        ok(q)
        q.add(raw(Rect(32, 32, 80, 80), 2))
        ok(q)
        survivors = q.drain()
        ok(q)
        assert survivors


class TestCandidateSuperset:
    @given(st.lists(st.tuples(st.integers(0, W - 1), st.integers(0, H - 1),
                              st.integers(1, 96), st.integers(1, 96)),
                    min_size=0, max_size=20),
           st.tuples(st.integers(0, W - 1), st.integers(0, H - 1),
                     st.integers(1, 96), st.integers(1, 96)))
    @settings(max_examples=100, deadline=None)
    def test_overlapping_commands_are_candidates(self, rect_tuples, probe_t):
        q = CommandQueue(merge=False)
        for k, (x, y, w, h) in enumerate(rect_tuples):
            q.add(SFillCommand(Rect(x, y, w, h),
                               (k % 251, (k * 5) % 251, 9, 255)))
        ok(q)
        probe = Rect(*probe_t)
        candidates = q._index.candidates_rect(probe)
        for cmd in q:
            if cmd.dest.overlaps(probe):
                assert cmd in candidates

    def test_tile_shift_matches_docs(self):
        # docs/PERF.md documents 64-px tiles; keep them in sync.
        assert 1 << TILE_SHIFT == 64
