"""Tests for viewport zoom (Section 6's zoom-in interaction)."""

import numpy as np
import pytest

from repro.core import THINCClient, THINCServer
from repro.core.resize import DisplayScaler
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP, PacketMonitor
from repro.protocol.commands import SFillCommand
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 200, 0, 255)
BLUE = (0, 0, 255, 255)


def rig(viewport=(64, 48)):
    loop = EventLoop()
    mon = PacketMonitor()
    conn = Connection(loop, LAN_DESKTOP, monitor=mon)
    server = THINCServer(loop, 128, 96)
    ws = WindowServer(128, 96, driver=server.driver, clock=loop.clock)
    server.attach_client(conn, viewport=viewport)
    client = THINCClient(loop, conn)
    return loop, mon, server, ws, client


class TestScalerView:
    def test_view_rect_maps_into_viewport(self):
        scaler = DisplayScaler((128, 96), (64, 48),
                               view_rect=Rect(64, 48, 64, 48))
        (out,) = scaler.scale_command(
            SFillCommand(Rect(64, 48, 64, 48), RED))
        assert out.dest == Rect(0, 0, 64, 48)

    def test_commands_outside_view_dropped(self):
        scaler = DisplayScaler((128, 96), (64, 48),
                               view_rect=Rect(64, 48, 64, 48))
        assert scaler.scale_command(
            SFillCommand(Rect(0, 0, 32, 32), RED)) == []

    def test_straddling_command_clipped_to_view(self):
        scaler = DisplayScaler((128, 96), (64, 48),
                               view_rect=Rect(64, 48, 64, 48))
        (out,) = scaler.scale_command(
            SFillCommand(Rect(0, 0, 128, 96), RED))
        assert out.dest == Rect(0, 0, 64, 48)

    def test_zoom_in_magnifies(self):
        # 32x24 view into a 64x48 viewport: 2x magnification.
        scaler = DisplayScaler((128, 96), (64, 48),
                               view_rect=Rect(0, 0, 32, 24))
        (out,) = scaler.scale_command(SFillCommand(Rect(4, 4, 8, 8), RED))
        assert out.dest == Rect(8, 8, 16, 16)

    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            DisplayScaler((128, 96), (64, 48),
                          view_rect=Rect(0, 0, 0, 0))

    def test_map_point(self):
        scaler = DisplayScaler((128, 96), (64, 48),
                               view_rect=Rect(64, 48, 64, 48))
        assert scaler.map_point(64, 48) == (0, 0)
        assert scaler.map_point(96, 72) == (32, 24)


class TestZoomProtocol:
    def test_zoom_in_shows_the_region_enlarged(self):
        loop, mon, server, ws, client = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, BLUE)
        ws.fill_rect(ws.screen, Rect(64, 48, 64, 48), RED)
        loop.run_until_idle(max_time=5)
        client.request_zoom(Rect(64, 48, 64, 48))
        loop.run_until_idle(max_time=5)
        # The whole viewport now shows the red quadrant 1:1.
        assert tuple(client.fb.data[10, 10]) == RED
        assert tuple(client.fb.data[40, 60]) == RED

    def test_updates_track_the_zoomed_view(self):
        loop, mon, server, ws, client = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, BLUE)
        loop.run_until_idle(max_time=5)
        client.request_zoom(Rect(0, 0, 64, 48))
        loop.run_until_idle(max_time=5)
        # A change inside the view arrives magnified 1:1...
        ws.fill_rect(ws.screen, Rect(8, 8, 8, 8), GREEN)
        # ...a change outside the view never travels.
        ws.fill_rect(ws.screen, Rect(100, 80, 16, 8), RED)
        loop.run_until_idle(max_time=5)
        assert tuple(client.fb.data[10, 10]) == GREEN
        assert tuple(client.fb.data[40, 60]) == BLUE

    def test_zoom_out_restores_full_desktop(self):
        loop, mon, server, ws, client = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, BLUE)
        ws.fill_rect(ws.screen, Rect(0, 0, 64, 48), RED)
        loop.run_until_idle(max_time=5)
        client.request_zoom(Rect(0, 0, 64, 48))
        loop.run_until_idle(max_time=5)
        client.request_zoom(Rect(0, 0, 0, 0))  # empty = zoom out
        loop.run_until_idle(max_time=5)
        # Top-left quadrant red, elsewhere blue, at half scale.
        assert tuple(client.fb.data[10, 10]) == RED
        assert tuple(client.fb.data[40, 60]) == BLUE

    def test_zoomed_video_is_cropped(self):
        from repro.video.stream import SyntheticVideoClip

        loop, mon, server, ws, client = rig()
        client.request_zoom(Rect(0, 0, 64, 48))
        loop.run_until_idle(max_time=5)
        clip = SyntheticVideoClip(width=32, height=24, fps=12,
                                  duration=0.2)
        stream = ws.video_create_stream("YV12", 32, 24,
                                        Rect(0, 0, 128, 96))
        ws.video_put_frame(stream, clip.yv12_frame(0))
        ws.video_destroy_stream(stream)
        loop.run_until_idle(max_time=5)
        stats = client.video_stats[stream.stream_id]
        assert stats.frames_received == 1
        # The client sees the top-left quarter of the frame, enlarged:
        # compare against the ground-truth screen region.
        from repro.core.resize import resample

        expected = resample(ws.screen.fb.read_pixels(Rect(0, 0, 64, 48)),
                            64, 48)
        err = np.abs(expected[..., :3].astype(int)
                     - client.fb.data[..., :3].astype(int))
        assert err.mean() < 30
