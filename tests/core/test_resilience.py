"""Chaos suite for the session resilience plane.

Every scenario runs a deterministic scripted workload while a fault
plan batters the transport, then lets the chaos settle and demands the
strongest possible outcome: the client framebuffer is pixel-identical
to the server screen — and to a clean twin run of the same workload
that never saw a fault.

Drive these rigs with ``loop.run_until(t)``: heartbeat and liveness
timers run forever, so ``run_until_idle`` would not return.
"""

import os

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import (assert_pixel_identical, make_resilient_rig,
                           scripted_workload)
from repro.core.resilience import ResilienceConfig
from repro.net import LinkParams
from repro.net.faults import (Corruption, Disconnect, FaultPlan, LossBurst,
                              Partition, Stall)

W, H = 96, 64
# The replay-byte bound: what a full-screen RAW snapshot would cost on
# the wire (raw pixels + per-chunk framing/compression overhead).
FULLSCREEN_RAW = W * H * 4 + 4096
SETTLE = 8.0  # all scripted plans are quiet long before this

# A higher-latency link keeps bytes in flight, so abrupt faults have
# something to destroy (on an instant LAN every write is already
# applied before the fault lands).
WAN = LinkParams("test-wan", bandwidth_bps=10e6, rtt=0.08)


def chaos_run(plan, end=1.2, settle=SETTLE, workload_seed=7, **rig_kw):
    loop, dial, server, ws, rc = make_resilient_rig(
        width=W, height=H, plan=plan, **rig_kw)
    scripted_workload(loop, ws, end=end, seed=workload_seed)
    loop.run_until(settle)
    return loop, dial, server, ws, rc


def clean_twin_pixels(end=1.2, workload_seed=7, **rig_kw):
    """The same workload with no faults: the golden screen."""
    loop, dial, server, ws, rc = chaos_run(None, end=end,
                                           workload_seed=workload_seed,
                                           **rig_kw)
    assert_pixel_identical(rc.client, ws)
    return np.array(rc.client.fb.data, copy=True)


def assert_clean_outcome(rc, ws, **twin_kw):
    """Pixel-identical to the live screen AND to the uninterrupted
    twin run, with an intact (gap-free) sequence stream."""
    assert_pixel_identical(rc.client, ws)
    assert np.array_equal(rc.client.fb.data, clean_twin_pixels(**twin_kw))
    assert rc.client.stats["seq_gaps"] == 0


class TestCleanSession:
    def test_no_faults_no_resyncs(self):
        loop, dial, server, ws, rc = chaos_run(None)
        assert_pixel_identical(rc.client, ws)
        st = server.resilience.stats
        assert rc.stats["dials"] == 1
        assert st.attaches == 1
        assert st.resyncs_replay == 0 and st.resyncs_snapshot == 0
        assert st.heartbeats > 0  # liveness traffic flowed

    def test_acks_prune_the_replay_log(self):
        loop, dial, server, ws, rc = chaos_run(None)
        guard = next(iter(server.resilience.guards.values()))
        # Quiescent and fully acked: the journal must be (near) empty,
        # not an ever-growing transcript of the session.
        assert guard.log_bytes <= 64


class TestScriptedScenarios:
    def test_loss_burst_is_transports_problem(self):
        # Partial loss is ordinary TCP weather: retransmits absorb it
        # with no reconnect, no resync, not even a liveness blip.
        plan = FaultPlan([LossBurst(start=0.3, duration=0.4,
                                    drop_rate=0.6)], seed=6)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.0)
        assert_clean_outcome(rc, ws, end=1.0)
        st = server.resilience.stats
        assert rc.stats["dials"] == 1
        assert st.resyncs_replay == 0 and st.resyncs_snapshot == 0

    def test_upstream_stall_reattaches_in_place(self):
        # Heartbeats freeze, the server detaches; when the stalled
        # heartbeats surge out the session re-attaches on the same
        # pipe — the client never notices anything happened.
        plan = FaultPlan([Stall(start=0.4, duration=0.5,
                                direction="up")], seed=1)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.6)
        assert_clean_outcome(rc, ws, end=1.6)
        st = server.resilience.stats
        assert rc.stats["dials"] == 1  # no reconnect needed
        assert st.disconnects == 1 and st.reattaches == 1
        assert st.resyncs_replay == 0 and st.resyncs_snapshot == 0

    def test_downstream_stall_recovers_by_replay(self):
        plan = FaultPlan([Stall(start=0.4, duration=0.8,
                                direction="down")], seed=2)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.6)
        assert_clean_outcome(rc, ws, end=1.6)
        st = server.resilience.stats
        assert rc.stats["dead_detected"] >= 1
        assert st.resyncs_replay >= 1
        assert st.resyncs_snapshot == 0  # queue survived: no fallback
        assert st.max_replay_bytes <= FULLSCREEN_RAW

    def test_partition_heals_without_snapshot(self):
        plan = FaultPlan([Partition(start=0.4, duration=0.6)], seed=3)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.6)
        assert_clean_outcome(rc, ws, end=1.6)
        assert server.resilience.stats.resyncs_snapshot == 0

    def test_mid_frame_disconnect_replays_lost_frames(self):
        # Kill the socket while a full-screen frame is in flight on a
        # fat-latency pipe: the journal must resend the lost suffix.
        def run(plan):
            loop, dial, server, ws, rc = make_resilient_rig(
                width=W, height=H, plan=plan, link=WAN)
            scripted_workload(loop, ws, end=1.2)
            img = np.random.default_rng(5).integers(
                0, 256, (H, W, 4), dtype=np.uint8)
            loop.schedule_at(0.46, lambda: ws.put_image(
                ws.screen, ws.screen.bounds, img))
            loop.run_until(SETTLE)
            assert_pixel_identical(rc.client, ws)
            return server, rc

        server, rc = run(FaultPlan([Disconnect(at=0.5)], seed=9))
        clean_server, clean_rc = run(None)
        assert np.array_equal(rc.client.fb.data, clean_rc.client.fb.data)
        assert rc.client.stats["seq_gaps"] == 0
        st = server.resilience.stats
        assert st.resyncs_replay >= 1 and st.resyncs_snapshot == 0
        assert 0 < st.max_replay_bytes <= FULLSCREEN_RAW

    def test_corrupted_frames_trigger_resync_not_crash(self):
        plan = FaultPlan([Corruption(start=0.4, duration=0.3,
                                     direction="down", rate=1.0)], seed=5)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.2)
        assert_pixel_identical(rc.client, ws)
        assert np.array_equal(rc.client.fb.data, clean_twin_pixels(end=1.2))
        total_errors = (rc.stats["protocol_errors"]
                        + rc.client.stats["protocol_errors"])
        assert total_errors > 0  # damage was detected, typed, survived
        assert server.resilience.stats.resyncs_snapshot == 0

    def test_upstream_corruption_does_not_kill_the_server(self):
        plan = FaultPlan([Corruption(start=0.3, duration=0.4,
                                     direction="up", rate=1.0)], seed=8)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.2)
        assert_pixel_identical(rc.client, ws)

    def test_detach_window_expiry_falls_back_to_snapshot(self):
        # The client stays away past the detach window (huge client
        # backoff forces that): queue and log are dropped, and the
        # reconnect is served by a chunked RAW snapshot instead.
        server_cfg = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=0.35,
            check_interval=0.05, backoff_base=0.05, detach_window=0.8)
        client_cfg = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=0.35,
            check_interval=0.05, backoff_base=2.5, backoff_jitter=0.0)
        plan = FaultPlan([Disconnect(at=0.5)], seed=9)
        loop, dial, server, ws, rc = chaos_run(
            plan, end=1.2, config=server_cfg, client_config=client_cfg)
        assert_pixel_identical(rc.client, ws)
        st = server.resilience.stats
        assert st.queues_dropped == 1
        assert st.resyncs_snapshot == 1 and st.resyncs_replay == 0
        # The snapshot discontinuity is announced, not a stream bug.
        assert rc.client.stats["seq_gaps"] == 0

    def test_encrypted_session_survives_reconnect(self):
        # A reconnect restarts both RC4 keystreams; any desync would
        # garble every byte after the resync and fail pixel equality.
        plan = FaultPlan([Disconnect(at=0.5)], seed=12)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.2, encrypt=True)
        assert_pixel_identical(rc.client, ws)
        assert np.array_equal(rc.client.fb.data,
                              clean_twin_pixels(end=1.2, encrypt=True))
        assert server.resilience.stats.resyncs_replay >= 1

    def test_rapid_flapping_is_denied_backoff(self):
        plan = FaultPlan([Disconnect(at=0.4), Disconnect(at=0.9),
                          Disconnect(at=1.4)], seed=13)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.6, settle=12.0)
        assert_pixel_identical(rc.client, ws)
        st = server.resilience.stats
        assert st.resyncs_replay + st.resyncs_snapshot >= 3


class TestDegradation:
    def test_sustained_backpressure_sheds_audio_then_recovers(self):
        thin = LinkParams("thin", bandwidth_bps=0.4e6, rtt=0.02)
        cfg = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=2.0,
            check_interval=0.05, backoff_base=0.05,
            degrade_high_bytes=20_000, degrade_low_bytes=4_000,
            degrade_after_checks=2)
        loop, dial, server, ws, rc = make_resilient_rig(
            width=W, height=H, link=thin, send_buffer=6000, config=cfg)
        rng = np.random.default_rng(21)

        def hammer(i):
            if i < 14:
                ws.put_image(ws.screen, ws.screen.bounds,
                             rng.integers(0, 256, (H, W, 4),
                                          dtype=np.uint8))
                loop.schedule(0.05, lambda: hammer(i + 1))

        loop.schedule_at(0.1, lambda: hammer(0))
        for i in range(40):
            loop.schedule_at(0.1 + 0.025 * i,
                             lambda t=i: server.submit_audio(
                                 0.1 + 0.025 * t, b"\x00" * 800))
        loop.run_until(20.0)
        st = server.resilience.stats
        session = server.sessions[0]
        assert st.degrade_entered >= 1  # pressure was seen...
        assert st.degrade_exited >= 1  # ...and receded
        assert session.stats["audio_dropped"] > 0  # audio was shed
        assert not session.degraded
        assert_pixel_identical(rc.client, ws)  # display never lies


class TestDeterminism:
    def run_once(self, seed):
        plan = FaultPlan([LossBurst(start=0.2, duration=0.3, drop_rate=0.5),
                          Disconnect(at=0.7),
                          Corruption(start=0.9, duration=0.2, rate=0.5)],
                         seed=seed)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.2,
                                               record_trace=True)
        assert_pixel_identical(rc.client, ws)
        trace = []
        for conn in dial.connections:
            trace.extend(conn.fault_trace())
        return trace, server.resilience.stats.as_dict(), dict(rc.stats)

    def test_same_seed_byte_identical_run(self):
        # The acceptance bar for the whole harness: one seed, one
        # story — packet trace, plane counters and client counters all
        # repeat exactly.
        assert self.run_once(77) == self.run_once(77)

    def test_different_seed_different_trace(self):
        assert self.run_once(77)[0] != self.run_once(78)[0]


class TestSeededSweep:
    # ``make chaos`` runs this file at several THINC_CHAOS_SEED values
    # (with the queue sanitizer armed); each seed is a different
    # random fault schedule against a different workload.
    CHAOS_SEED = int(os.environ.get("THINC_CHAOS_SEED", "0"))

    def test_env_seeded_chaos_run(self):
        plan = FaultPlan.random(seed=1000 + self.CHAOS_SEED, horizon=2.0)
        loop, dial, server, ws, rc = chaos_run(
            plan, end=1.5, settle=12.0, workload_seed=self.CHAOS_SEED)
        assert_pixel_identical(rc.client, ws)
        assert server.resilience.stats.max_replay_bytes <= FULLSCREEN_RAW
        assert rc.client.stats["seq_gaps"] == 0


class TestChaosProperty:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_fault_schedule_always_converges(self, seed):
        # Under ANY seeded-random fault schedule the reconnecting
        # client converges to the live framebuffer, never pays more
        # than one full-screen RAW in replay, and never observes a
        # sequence gap.
        plan = FaultPlan.random(seed=seed, horizon=2.0)
        loop, dial, server, ws, rc = chaos_run(plan, end=1.5, settle=12.0,
                                               workload_seed=seed % 1000)
        assert_pixel_identical(rc.client, ws)
        st = server.resilience.stats
        assert st.max_replay_bytes <= FULLSCREEN_RAW
        assert rc.client.stats["seq_gaps"] == 0
