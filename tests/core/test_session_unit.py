"""The SessionUnit serializable state surface (freeze/thaw/transfer)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FrozenSession, THINCServer
from repro.core.resilience import ResilienceConfig
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.protocol import wire
from repro.protocol.limits import LIMITS
from repro.region import Rect


def sample_frozen(**over):
    base = dict(
        token=7, viewport=(96, 64), view_rect=Rect(0, 0, 96, 64),
        sequenced=True, degraded=False, shed_display=False,
        log_dropped=False, queue_dropped=True, last_seq=41, acked_seq=39,
        pipe_tail=1.25,
        journal=((40, b"frame-40"), (41, b"frame-41")),
        commands=(), replay=(b"replayed",), control=(b"ctl",),
        stats={"messages_sent": 12, "bytes_sent": 3400, "flush_periods": 9,
               "cpu_time": 0.125, "audio_dropped": 0, "display_shed": 1,
               "uplink_dropped": 0, "wire_errors": 2})
    base.update(over)
    return FrozenSession(**base)


class TestRoundTrip:
    def test_exact_round_trip(self):
        frozen = sample_frozen()
        assert FrozenSession.from_bytes(frozen.to_bytes()) == frozen

    def test_flags_round_trip_independently(self):
        for field in ("sequenced", "degraded", "shed_display",
                      "log_dropped", "queue_dropped"):
            frozen = sample_frozen(**{field: True})
            thawed = FrozenSession.from_bytes(frozen.to_bytes())
            assert getattr(thawed, field) is True, field

    @settings(max_examples=60, deadline=None)
    @given(token=st.integers(min_value=0, max_value=2**32 - 1),
           last_seq=st.integers(min_value=0, max_value=2**32 - 1),
           pipe_tail=st.floats(min_value=0, max_value=1e6,
                               allow_nan=False),
           journal=st.lists(st.tuples(
               st.integers(min_value=0, max_value=2**32 - 1),
               st.binary(max_size=64)), max_size=8).map(tuple),
           blobs=st.lists(st.binary(max_size=32), max_size=4).map(tuple))
    def test_round_trip_property(self, token, last_seq, pipe_tail,
                                 journal, blobs):
        frozen = sample_frozen(token=token, last_seq=last_seq,
                               pipe_tail=pipe_tail, journal=journal,
                               replay=blobs, control=blobs)
        assert FrozenSession.from_bytes(frozen.to_bytes()) == frozen


class TestValidation:
    def test_truncated_blob_raises_typed_error(self):
        data = sample_frozen().to_bytes()
        for cut in (0, 1, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(wire.ProtocolError):
                FrozenSession.from_bytes(data[:cut])

    def test_trailing_garbage_rejected(self):
        data = sample_frozen().to_bytes()
        with pytest.raises(wire.ProtocolError):
            FrozenSession.from_bytes(data + b"\x00")

    def test_unknown_version_rejected(self):
        data = sample_frozen().to_bytes()
        with pytest.raises(wire.ProtocolError):
            FrozenSession.from_bytes(b"\x09" + data[1:])

    def test_oversize_transfer_rejected_at_encode(self):
        huge = sample_frozen(
            replay=(b"\x00" * (LIMITS.max_transfer_bytes + 1),))
        with pytest.raises(wire.ProtocolError):
            huge.to_bytes()


class TestLiveFreezeThaw:
    def make_server(self, loop):
        config = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=0.35,
            check_interval=0.05, backoff_base=0.05, backoff_jitter=0.2,
            detach_window=5.0)
        return THINCServer(loop, 96, 64, resilience=config)

    def attach(self, loop, server):
        conn = Connection(loop, LAN_DESKTOP)
        server.resilience.accept(conn)
        got = []
        conn.down.connect(got.append)
        conn.up.write(wire.wrap_checked(wire.encode_message(
            wire.ReconnectRequestMessage(0, 0)), 0))
        loop.run_until_idle(max_time=2.0)
        return server.sessions[-1]

    def test_freeze_detaches_and_thaw_restores_on_a_peer(self):
        loop = EventLoop()
        src, dst = self.make_server(loop), self.make_server(loop)
        session = self.attach(loop, src)
        token = session.guard.token
        frozen = session.freeze()
        assert session.detached
        assert frozen.token == token
        src.resilience.drop_guard(session)
        src.detach_client(session)

        wire_copy = FrozenSession.from_bytes(frozen.to_bytes())
        successor = dst.thaw_session(wire_copy)
        assert successor in dst.sessions
        assert successor.guard is not None
        assert dst.resilience.guards[token].session is successor
        assert successor._writer.last_seq == frozen.last_seq
        assert successor.stats["messages_sent"] == \
            frozen.stats["messages_sent"]
        # The thawed unit freezes back to the same surface (fresh
        # guard bookkeeping aside, the state is the state).
        refrozen = successor.freeze()
        assert dataclasses.asdict(refrozen) == dataclasses.asdict(
            dataclasses.replace(frozen))
