"""Adaptive QoS plane: degrade video before interactivity, recover.

Covers the ladder transforms, the descriptor wire loop, the governor's
QoS-aware shed order, migration of the rung, and the acceptance
scenario from the issue: on a 256 kbit/s link with bursty cross
traffic, input-to-update latency stays within 2x the uncontended run
while video walks the degradation ladder; an uncontended twin stays
byte-identical to the fixed-rate path; and once the faults clear the
session ramps back to full-rate video and converges pixel-exact.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import EncoderPolicy
from repro.core import THINCClient, THINCServer
from repro.core.governor import Budget
from repro.core.qos import MAX_RUNG, QosConfig, QosPlane
from repro.core.session_unit import FrozenSession
from repro.display import WindowServer
from repro.net import Connection, EventLoop, PacketMonitor
from repro.net.faults import FaultPlan, FaultyConnection
from repro.net.link import LinkParams, PDA_80211G
from repro.protocol import wire
from repro.region import Rect
from repro.video import yuv
from repro.video.stream import SyntheticVideoClip

from ..helpers import assert_pixel_identical

#: The issue's contended link: a 256 kbit/s thin pipe.
THIN_256K = replace(PDA_80211G, name="256k thin", bandwidth_bps=256e3)


def make_qos_rig(width=96, height=64, link=None, plan=None,
                 send_buffer=None, **server_kw):
    """A single-client rig whose connection honours a fault plan."""
    loop = EventLoop()
    mon = PacketMonitor()
    link = link or THIN_256K
    if plan is not None:
        conn = FaultyConnection(loop, link, monitor=mon,
                                send_buffer=send_buffer, plan=plan)
    else:
        conn = Connection(loop, link, monitor=mon,
                          send_buffer=send_buffer)
    server = THINCServer(loop, width, height, **server_kw)
    ws = WindowServer(width, height, driver=server.driver,
                      clock=loop.clock)
    server.attach_client(conn)
    client = THINCClient(loop, conn)
    return loop, conn, mon, server, ws, client


def play_clip(loop, ws, clip, dst, start=0.0, end=None):
    """Schedule a full clip presentation; returns the stream handle
    holder (filled at start time)."""
    holder = {}

    def begin():
        holder["stream"] = ws.video_create_stream(
            "YV12", clip.width, clip.height, dst)
        put(0)

    def put(i):
        if i >= clip.frame_count or (end is not None
                                     and loop.now >= end):
            ws.video_destroy_stream(holder["stream"])
            holder["done_at"] = loop.now
            return
        ws.video_put_frame(holder["stream"], clip.yv12_frame(i))
        loop.schedule(clip.frame_interval, lambda: put(i + 1))

    loop.schedule_at(start, begin)
    return holder


class TestConfigAndDefaults:
    def test_off_by_default(self):
        loop, conn, mon, server, ws, client = make_qos_rig()
        assert server.qos is None
        assert not any(k.startswith("qos_") for k in server.stats)

    def test_enabled_exposes_stats(self):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig())
        assert isinstance(server.qos, QosPlane)
        assert server.stats["qos_polls"] == 0

    def test_config_bounds_follow_wire_limits(self):
        with pytest.raises(ValueError):
            QosConfig(fps_divisor=1)
        with pytest.raises(ValueError):
            QosConfig(fps_divisor=17)
        with pytest.raises(ValueError):
            QosConfig(scale_shift=0)
        with pytest.raises(ValueError):
            QosConfig(qstep=65)
        with pytest.raises(ValueError):
            QosConfig(poll_interval=0.0)

    def test_descriptors_tighten_monotonically(self):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig())
        plane = server.qos
        descs = [plane.descriptor(r) for r in range(MAX_RUNG + 1)]
        assert descs[0] == (1, 0, 0)
        for lighter, heavier in zip(descs, descs[1:]):
            assert all(h >= l for l, h in zip(lighter, heavier))
        # Every reachable rung's descriptor encodes within WireLimits.
        for rung in range(MAX_RUNG + 1):
            msg = plane.quality_message(3, rung)
            (back,) = wire.StreamParser().feed(wire.encode_message(msg))
            assert back == msg


class TestLadderTransforms:
    def _frame_cmd(self, w=32, h=24, seed=3):
        from repro.protocol.commands import VideoFrameCommand

        rng = np.random.default_rng(seed)
        rgb = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        return VideoFrameCommand(1, Rect(0, 0, 64, 48), w, h,
                                 yuv.encode_frame("YV12", rgb),
                                 frame_no=4)

    def _plane(self, **kw):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig(**kw))
        return server.qos

    def test_rung0_and_rung1_pass_the_original_object(self):
        plane = self._plane()
        cmd = self._frame_cmd()
        assert plane._transform(cmd, 1) is cmd

    def test_rung2_steps_resolution_down(self):
        plane = self._plane(scale_shift=1)
        cmd = self._frame_cmd(w=32, h=24)
        out = plane._transform(cmd, 2)
        assert (out.src_width, out.src_height) == (16, 12)
        assert out.dest == cmd.dest  # client scaling: no wire change
        assert out.frame_no == cmd.frame_no
        assert len(out.yuv_bytes) < len(cmd.yuv_bytes)

    def test_rung3_quantises_on_top(self):
        plane = self._plane(scale_shift=1, qstep=32)
        cmd = self._frame_cmd(w=32, h=24)
        r2 = plane._transform(cmd, 2)
        r3 = plane._transform(cmd, 3)
        assert (r3.src_width, r3.src_height) == (r2.src_width,
                                                 r2.src_height)
        # The quantised surface has far fewer distinct luma values.
        rgb2 = yuv.decode_frame("YV12", r2.yuv_bytes, 16, 12)
        rgb3 = yuv.decode_frame("YV12", r3.yuv_bytes, 16, 12)
        assert len(np.unique(rgb3)) < len(np.unique(rgb2))

    def test_even_dimensions_preserved(self):
        plane = self._plane(scale_shift=3)
        cmd = self._frame_cmd(w=10, h=6)
        out = plane._transform(cmd, 2)
        assert out.src_width % 2 == 0 and out.src_height % 2 == 0
        assert out.src_width >= 2 and out.src_height >= 2
        # And the payload still decodes at the declared geometry.
        yuv.decode_frame("YV12", out.yuv_bytes,
                         out.src_width, out.src_height)


class TestShedOrderWithGovernor:
    def test_video_rungs_shed_before_audio_degrade(self):
        # A tight degrade line on a slow link: each RAW image blows
        # past it (video alone never does — VFRAME's overwrite
        # eviction keeps its backlog at one frame).  The poll-driven
        # probe is neutered (saturation 1.0, a huge drain horizon) so
        # the queue spike reaches the governor before the ladder acts
        # on its own — isolating the shed-order path.
        budget = Budget(degrade_queue_bytes=512)
        lenient = EncoderPolicy(saturation=1.0, backlog_horizon=1e6)
        loop, conn, mon, server, ws, client = make_qos_rig(
            link=replace(THIN_256K, bandwidth_bps=64e3),
            budget=budget, qos=QosConfig(policy=lenient))
        session = server.sessions[0]
        clip = SyntheticVideoClip(width=16, height=12, fps=12,
                                  duration=1.0)
        play_clip(loop, ws, clip, Rect(64, 40, 32, 24))
        rng = np.random.default_rng(2)
        for k in range(6):
            img = rng.integers(0, 256, (64, 64, 4), dtype=np.uint8)
            loop.schedule_at(0.1 + 0.1 * k,
                             lambda img=img: ws.put_image(
                                 ws.screen, Rect(0, 0, 64, 64), img))
        loop.run_until_idle(max_time=60)
        g = server.governor.stats
        assert g.video_rungs_shed >= 1
        # Whole video rungs are spent before audio-shedding degraded
        # mode may engage; degrade only after the ladder is exhausted.
        if g.degrade_entered:
            assert g.video_rungs_shed >= MAX_RUNG

    def test_governor_untouched_when_qos_off(self):
        budget = Budget(degrade_queue_bytes=512)
        loop, conn, mon, server, ws, client = make_qos_rig(
            link=replace(THIN_256K, bandwidth_bps=64e3), budget=budget)
        rng = np.random.default_rng(2)
        for k in range(4):
            img = rng.integers(0, 256, (64, 64, 4), dtype=np.uint8)
            loop.schedule_at(0.1 + 0.1 * k,
                             lambda img=img: ws.put_image(
                                 ws.screen, Rect(0, 0, 64, 64), img))
        loop.run_until_idle(max_time=60)
        assert server.governor.stats.video_rungs_shed == 0
        assert server.governor.stats.degrade_entered >= 1


class TestMigrationCarriesRung:
    def test_frozen_surface_roundtrips_rung(self):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig())
        session = server.sessions[0]
        session.qos_rung = 2
        frozen = session.freeze()
        assert frozen.qos_rung == 2
        back = FrozenSession.from_bytes(frozen.to_bytes())
        assert back.qos_rung == 2
        thawed = server.thaw_session(back)
        assert thawed.qos_rung == 2

    def test_out_of_range_rung_rejected(self):
        loop, conn, mon, server, ws, client = make_qos_rig()
        frozen = server.sessions[0].freeze()
        blob = bytearray(frozen.to_bytes())
        # The rung byte sits right after the fixed-size counter block.
        from repro.core import session_unit as su

        offset = (su._HEAD.size + su._VIEW.size + su._MARKS.size
                  + su._COUNTERS.size)
        blob[offset] = MAX_RUNG + 1
        with pytest.raises(wire.FieldRangeError):
            FrozenSession.from_bytes(bytes(blob))


def run_scenario(plan=None, qos=None, end=3.5):
    """The issue's scenario: video + interactive traffic on the 256
    kbit/s link, optionally under a fault plan.  Returns the rig plus
    per-op input-to-update latencies (client-side arrival of each
    interactive fill minus its submission time).
    """
    loop, conn, mon, server, ws, client = make_qos_rig(
        link=THIN_256K, plan=plan, qos=qos)
    # ~166 kbit/s offered (0.65 of the link; worst 0.25s window ~0.76),
    # comfortably healthy at full rate but underwater once cross
    # traffic cuts the service rate.
    clip = SyntheticVideoClip(width=32, height=18, fps=24, duration=end)
    play_clip(loop, ws, clip, Rect(48, 24, 48, 32))
    times, arrivals = [], []
    orig = client._execute

    covered = {}

    def spy(cmd, now):
        # Only the interactive echo patches (12x12 RAWs left of the
        # video area) count; recovery refreshes land at x >= 48.  A
        # put_image rasterises in scan-line chunks, so an op "arrives"
        # once its whole tile has been painted.
        if cmd.kind == "raw" and cmd.dest.width == 12 and cmd.dest.x < 48:
            tile = (cmd.dest.x // 12, cmd.dest.y // 12)
            covered[tile] = covered.get(tile, 0) + cmd.dest.area
            if covered[tile] >= 144:
                covered[tile] = 0
                arrivals.append(now)
        orig(cmd, now)

    client._execute = spy
    rng = np.random.default_rng(5)
    t, idx = 0.1, 0
    while t < end - 0.3:
        # Typing-echo style updates: each keystroke paints a fresh
        # 12x12 RAW glyph patch.  Distinct, non-overlapping rects, so
        # merge/overwrite can never collapse two ops into one arrival.
        x = (idx % 4) * 12
        y = (idx // 4) * 12
        patch = rng.integers(0, 256, (12, 12, 4), dtype=np.uint8)
        patch[..., 3] = 255

        def op(x=x, y=y, patch=patch):
            client.send_input("key", x, y)
            ws.put_image(ws.screen, Rect(x, y, 12, 12), patch)

        loop.schedule_at(t, op)
        times.append(t)
        t += 0.16
        idx += 1
    loop.run_until_idle(max_time=300)
    assert len(arrivals) == len(times), "an interactive update was lost"
    latencies = [a - s for s, a in zip(times, arrivals)]
    return loop, mon, server, ws, client, latencies


class TestAcceptanceScenario:
    """The issue's acceptance criteria, end to end."""

    PLAN_SEED = 11

    def _plan(self):
        # 60% burst duty with full drops: while a burst holds the
        # delivery head, the un-acked window throttles the sender to
        # ~window/burst ≈ 12 KB/s against ~21 KB/s offered, so the
        # queue genuinely builds until the ladder acts.
        return FaultPlan.bursty_cross_traffic(
            self.PLAN_SEED, start=0.3, duration=1.2,
            period=0.2, burst=0.12, drop_rate=1.0)

    def _qos(self):
        return QosConfig(seed=7, recover_polls=3, recover_jitter=1)

    def test_uncontended_twin_is_byte_identical(self):
        # QoS enabled on a healthy link must not change one byte on
        # the wire relative to the fixed-rate path.
        _, mon_off, server_off, ws_off, client_off, lat_off = \
            run_scenario(plan=None, qos=None)
        _, mon_on, server_on, ws_on, client_on, lat_on = \
            run_scenario(plan=None, qos=self._qos())
        trace_off = [(r.time, r.direction, r.size)
                     for r in mon_off.records]
        trace_on = [(r.time, r.direction, r.size)
                    for r in mon_on.records]
        assert trace_on == trace_off
        assert client_on.fb.same_as(client_off.fb)
        assert server_on.stats["qos_rungs_down"] == 0
        assert lat_on == lat_off

    def test_congested_ladder_protects_interactivity(self):
        _, _, _, _, _, lat_clean = run_scenario(plan=None,
                                                qos=self._qos())
        loop, mon, server, ws, client, lat = run_scenario(
            plan=self._plan(), qos=self._qos())
        session = server.sessions[0]
        stats = server.stats
        # Video walked the ladder while the link was contended...
        assert stats["qos_rungs_down"] >= 1
        assert stats["qos_frames_dropped"] + \
            stats["qos_frames_degraded"] >= 1
        # ...interactive latency stayed within 2x the uncontended run...
        mean_clean = sum(lat_clean) / len(lat_clean)
        mean = sum(lat) / len(lat)
        assert mean <= 2.0 * mean_clean, (mean, mean_clean)
        # ...and after the fault window the session ramped back to
        # full-rate video and converged pixel-exact.
        assert session.qos_rung == 0
        assert stats["qos_rungs_up"] >= 1
        assert stats["qos_recoveries"] >= 1
        assert_pixel_identical(client, ws)

    def test_contended_without_qos_is_worse_for_video_bytes(self):
        # Sanity on the mechanism: with the ladder active, the
        # contended run ships fewer video payload bytes than the
        # fixed-rate path under the same faults.
        _, mon_off, server_off, _, client_off, _ = run_scenario(
            plan=self._plan(), qos=None)
        _, mon_on, server_on, _, client_on, _ = run_scenario(
            plan=self._plan(), qos=self._qos())
        off = client_off.stats["bytes_by_kind"].get("vframe", 0)
        on = client_on.stats["bytes_by_kind"].get("vframe", 0)
        assert on < off


class TestLadderProperties:
    """Property-based checks over random congestion plans: however the
    network misbehaves, the ladder moves one rung at a time, respects
    its hysteresis spacing, and converges pixel-exact once the plan
    clears."""

    @given(seed=st.integers(min_value=0, max_value=10_000),
           shape=st.sampled_from(["ramp", "bursts", "flaps"]))
    @settings(max_examples=8, deadline=None)
    def test_ladder_is_monotone_hysteretic_and_convergent(self, seed,
                                                          shape):
        makers = {
            "ramp": lambda: FaultPlan.ramped_throttle(
                seed, start=0.3, duration=1.2),
            "bursts": lambda: FaultPlan.bursty_cross_traffic(
                seed, start=0.3, duration=1.2,
                period=0.2, burst=0.12, drop_rate=1.0),
            "flaps": lambda: FaultPlan.flapping_80211g(
                seed, start=0.3, duration=1.2),
        }
        cfg = QosConfig(seed=seed, recover_polls=3, recover_jitter=1)
        loop, conn, mon, server, ws, client = make_qos_rig(
            plan=makers[shape](), qos=cfg)
        session = server.sessions[0]
        plane = server.qos
        transitions = []
        orig = plane._announce

        def spy(sess):
            transitions.append((loop.now, sess.qos_rung))
            orig(sess)

        plane._announce = spy
        # Video well past the fault window so recovery has room.
        clip = SyntheticVideoClip(width=32, height=18, fps=24,
                                  duration=4.5)
        play_clip(loop, ws, clip, Rect(48, 24, 48, 32))
        loop.run_until_idle(max_time=600)

        rungs = [0] + [r for _, r in transitions]
        for prev, cur in zip(rungs, rungs[1:]):
            assert abs(cur - prev) == 1, rungs
        for (t0, r0), (t1, r1) in zip(transitions, transitions[1:]):
            if r1 > r0:  # a further step down needs degrade_polls polls
                spacing = (cfg.degrade_polls - 1) * cfg.poll_interval
            else:  # a step up waits out at least recover_polls polls
                spacing = (cfg.recover_polls - 1) * cfg.poll_interval
            assert t1 - t0 >= spacing - 1e-9, (transitions,)
        # The plan's last window ends by 1.5s; by end of clip the
        # session must be back at full rate and pixel-exact.
        assert session.qos_rung == 0
        assert_pixel_identical(client, ws)


class TestQosReports:
    def test_client_report_reaches_server_stats(self):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig())
        clip = SyntheticVideoClip(width=16, height=12, fps=12,
                                  duration=0.5)
        holder = play_clip(loop, ws, clip, Rect(0, 0, 32, 24))
        loop.run_until_idle(max_time=10)
        stream_id = holder["stream"].stream_id
        msg = client.send_qos_report(stream_id, clip.frame_count,
                                     clip.duration)
        loop.run_until_idle(max_time=5)
        assert 0.0 <= msg.playback_quality <= 1.0
        assert msg.playback_quality > 0.5  # LAN-grade thin link, tiny clip
        assert server.stats["qos_reports"] == 1
        assert server.stats["qos_playback_quality"] == \
            msg.playback_quality
        assert server.qos.reports[stream_id] == msg

    def test_report_ignored_when_qos_off(self):
        loop, conn, mon, server, ws, client = make_qos_rig()
        client.connection.up.write(wire.encode_message(
            wire.QosReportMessage(1, 10, 0.5, 0.5, 0.1)))
        loop.run_until_idle(max_time=5)
        assert server.qos is None  # and no crash handling the report

    def test_client_tracks_quality_descriptors(self):
        loop, conn, mon, server, ws, client = make_qos_rig(
            qos=QosConfig())
        session = server.sessions[0]
        server.qos.streams[7] = Rect(0, 0, 32, 24)
        server.qos._step_down(session, 10.0)
        loop.run_until_idle(max_time=5)
        assert client.video_quality[7].rung == 1
        # Recovery to rung 0 clears the descriptor.
        server.qos._step_up(session, 20.0)
        loop.run_until_idle(max_time=5)
        assert 7 not in client.video_quality
