"""Server hardening: hostile input stays session-scoped.

Covers the blast-radius contract (a poisoned session is quarantined,
co-resident honest sessions converge untouched), the geometry clamps in
``handle_client_message``, and the resilience-plane memory caps (replay
journal and detach-window buffers) driven by the per-session Budget.
"""

import numpy as np

from repro.core import Budget
from repro.core.resilience import ResilienceConfig
from repro.net.faults import Disconnect, FaultPlan
from repro.protocol import wire
from repro.protocol.limits import LIMITS
from repro.region import Rect

from tests.helpers import (GREEN, RED, assert_pixel_identical, make_rig,
                           make_multi_rig, make_resilient_rig,
                           scripted_workload)


class TestBlastRadius:
    def test_poisoned_session_does_not_touch_neighbours(self):
        loop, mon, server, ws, clients = make_multi_rig([None, None])
        victim, honest = server.sessions[0], server.sessions[1]
        scripted_workload(loop, ws, end=1.0)
        # Mid-workload, session 0's uplink turns to garbage.
        loop.schedule_at(0.4, lambda: victim.connection.up.write(
            wire.frame_message(250, b"\xde\xad\xbe\xef")))
        loop.run_until(5.0)
        assert victim.quarantined
        assert victim not in server.sessions
        assert not honest.quarantined
        assert_pixel_identical(clients[1], ws)

    def test_garbage_flood_never_raises_out_of_the_loop(self):
        loop, conn, mon, server, ws, client = make_rig()
        rng = np.random.default_rng(3)
        for i in range(50):
            blob = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            loop.schedule_at(0.01 * i,
                             lambda b=blob: conn.up.write(
                                 b[:conn.up.writable_bytes()]))
        ws.fill_rect(ws.screen, Rect(0, 0, 16, 16), RED)
        loop.run_until(5.0)  # an escaping exception would surface here
        assert server.governor.stats.quarantined == 1


class TestGeometryClamps:
    def test_resize_is_clamped_to_viewport_limits(self):
        loop, conn, mon, server, ws, client = make_rig()
        session = server.sessions[0]
        server.handle_client_message(
            session, wire.ResizeMessage(10 ** 9, 5))
        assert session.viewport == (LIMITS.max_viewport_dim, 5)
        server.handle_client_message(session, wire.ResizeMessage(0, -7))
        assert session.viewport == (1, 1)
        loop.run_until(2.0)  # the pushed refreshes must not crash

    def test_refresh_rect_clamped_to_framebuffer(self):
        loop, conn, mon, server, ws, client = make_rig()
        session = server.sessions[0]
        ws.fill_rect(ws.screen, Rect(0, 0, 96, 64), GREEN)
        # Mostly off-screen, and entirely off-screen: neither crashes.
        server.handle_client_message(
            session, wire.RefreshRequestMessage(Rect(90, 60, 500, 500)))
        server.handle_client_message(
            session, wire.RefreshRequestMessage(Rect(5000, 5000, 10, 10)))
        loop.run_until(3.0)
        assert_pixel_identical(client, ws)

    def test_zoom_rect_clamped_to_framebuffer(self):
        loop, conn, mon, server, ws, client = make_rig()
        session = server.sessions[0]
        ws.fill_rect(ws.screen, Rect(0, 0, 96, 64), RED)
        server.handle_client_message(
            session, wire.ZoomRequestMessage(Rect(80, 50, 400, 400)))
        loop.run_until(2.0)
        view = session.scaler.view
        screen = Rect(0, 0, 96, 64)
        assert view == view.intersect(screen)
        # Entirely off-screen zooms out to the full desktop.
        server.handle_client_message(
            session, wire.ZoomRequestMessage(Rect(900, 900, 50, 50)))
        loop.run_until(4.0)
        assert session.scaler.view == screen


class TestResiliencePlaneCaps:
    def test_replay_journal_bounded_by_budget(self):
        loop, dial, server, ws, rc = make_resilient_rig(
            budget=Budget(max_journal_bytes=5_000))
        rc.start()
        scripted_workload(loop, ws, end=1.5)
        loop.run_until(4.0)
        session = server.sessions[0]
        guard = server.resilience._by_session[session]
        assert guard.log_limit <= 5_000
        assert guard.log_bytes <= guard.log_limit

    def test_detached_session_buffers_capped_before_window_expires(self):
        # The client disconnects and stays away (huge backoff); the
        # detach window is far longer than the test.  The plane must
        # still drop the absent session's queue as soon as it crosses
        # the session budget — absence is not a license to balloon.
        server_cfg = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=0.35,
            check_interval=0.05, backoff_base=0.05, detach_window=600.0)
        client_cfg = ResilienceConfig(
            heartbeat_interval=0.1, liveness_timeout=0.35,
            check_interval=0.05, backoff_base=1000.0, backoff_jitter=0.0)
        loop, dial, server, ws, rc = make_resilient_rig(
            plan=FaultPlan([Disconnect(at=0.5)], seed=4),
            config=server_cfg, client_config=client_cfg,
            budget=Budget(max_queue_bytes=20_000))
        rc.start()
        rng = np.random.default_rng(11)
        # Paint incompressible 16x16 noise tiles over a 6x4 grid: each
        # tile (~1 KB) drains instantly while attached, but once the
        # client is gone the tiles accumulate toward full-screen
        # coverage (~24.8 KB RAW) and cross the 20 KB session budget.
        for i in range(60):
            x, y = 16 * (i % 6), 16 * ((i // 6) % 4)
            loop.schedule_at(0.1 * i, lambda x=x, y=y: ws.put_image(
                ws.screen, Rect(x, y, 16, 16),
                rng.integers(0, 256, (16, 16, 4), dtype=np.uint8)))
        loop.run_until(8.0)
        st = server.resilience.stats
        assert st.disconnects >= 1
        # Dropped within 8 simulated seconds of a 600-second window:
        # the budget, not the window, bounded the absent session.
        assert st.queues_dropped >= 1
        assert server.governor.stats.evicted == 0
        for session in server.sessions:
            assert session.buffer.pending_bytes() <= 20_000
