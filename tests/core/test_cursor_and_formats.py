"""Tests for cursor support and the YUY2 video pixel format."""

import numpy as np
import pytest

from repro.core import THINCClient, THINCServer
from repro.display import WindowServer
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.region import Rect
from repro.video import yuv
from repro.video.stream import SyntheticVideoClip

WHITE = (255, 255, 255, 255)


def rig(viewport=None, size=(96, 64)):
    loop = EventLoop()
    conn = Connection(loop, LAN_DESKTOP)
    server = THINCServer(loop, *size)
    ws = WindowServer(*size, driver=server.driver, clock=loop.clock)
    server.attach_client(conn, viewport=viewport)
    client = THINCClient(loop, conn)
    return loop, server, ws, client


def arrow_cursor():
    img = np.zeros((12, 8, 4), dtype=np.uint8)
    for i in range(8):
        img[i, : i + 1] = (0, 0, 0, 255)
    return img


class TestCursor:
    def test_shape_pushed_to_client(self):
        loop, server, ws, client = rig()
        ws.set_cursor(arrow_cursor(), hotspot=(0, 0))
        loop.run_until_idle(max_time=5)
        assert client.cursor_image is not None
        assert client.cursor_image.shape == (12, 8, 4)
        assert client.cursor_hotspot == (0, 0)

    def test_position_tracked_locally(self):
        loop, server, ws, client = rig()
        client.send_input("mouse-move", 40, 30)
        assert client.cursor_pos == (40, 30)  # before any network events

    def test_cursor_never_touches_framebuffer(self):
        loop, server, ws, client = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        ws.set_cursor(arrow_cursor())
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)  # fb is cursor-free

    def test_render_with_cursor_composites_overlay(self):
        loop, server, ws, client = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        ws.set_cursor(arrow_cursor())
        client.send_input("mouse-move", 40, 30)
        loop.run_until_idle(max_time=5)
        view = client.render_with_cursor()
        assert tuple(view.data[30, 40])[:3] == (0, 0, 0)  # cursor tip
        assert tuple(client.fb.data[30, 40]) == WHITE  # fb untouched

    def test_cursor_scaled_for_small_viewport(self):
        loop, server, ws, client = rig(viewport=(48, 32))
        ws.set_cursor(arrow_cursor(), hotspot=(4, 6))
        loop.run_until_idle(max_time=5)
        assert client.cursor_image.shape[0] <= 8
        hx, hy = client.cursor_hotspot
        assert hx <= 2 and hy <= 3

    def test_validation(self):
        loop, server, ws, client = rig()
        with pytest.raises(ValueError):
            ws.set_cursor(np.zeros((4, 4, 3), np.uint8))
        with pytest.raises(ValueError):
            ws.set_cursor(np.zeros((100, 100, 4), np.uint8))
        with pytest.raises(ValueError):
            ws.set_cursor(arrow_cursor(), hotspot=(50, 0))


class TestYUY2:
    def test_frame_size_is_16bpp(self):
        assert yuv.yuy2_frame_size(352, 240) == 352 * 240 * 2

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError):
            yuv.yuy2_frame_size(3, 4)

    def test_roundtrip_on_flat_blocks(self):
        rng = np.random.default_rng(1)
        small = rng.integers(0, 256, (4, 4, 3), dtype=np.uint8)
        rgb = np.repeat(np.repeat(small, 2, 0), 2, 1)
        out = yuv.yuy2_to_rgb(yuv.rgb_to_yuy2(rgb), 8, 8)
        assert np.max(np.abs(out.astype(int) - rgb.astype(int))) <= 6

    def test_422_retains_more_chroma_than_420(self):
        """Vertical colour stripes: YUY2's full vertical chroma wins."""
        rgb = np.zeros((8, 8, 3), dtype=np.uint8)
        rgb[::2] = (255, 0, 0)
        rgb[1::2] = (0, 0, 255)
        via_yuy2 = yuv.yuy2_to_rgb(yuv.rgb_to_yuy2(rgb), 8, 8)
        via_yv12 = yuv.yv12_to_rgb(*yuv.rgb_to_yv12(rgb))
        err_422 = np.abs(via_yuy2.astype(int) - rgb.astype(int)).mean()
        err_420 = np.abs(via_yv12.astype(int) - rgb.astype(int)).mean()
        assert err_422 < err_420

    def test_format_registry_dispatch(self):
        rgb = np.full((8, 8, 3), 120, dtype=np.uint8)
        for fmt in yuv.FORMATS:
            data = yuv.encode_frame(fmt, rgb)
            assert len(data) == yuv.frame_size(fmt, 8, 8)
            out = yuv.decode_frame(fmt, data, 8, 8)
            assert np.max(np.abs(out.astype(int) - 120)) <= 4
        with pytest.raises(ValueError):
            yuv.frame_size("RGB24", 8, 8)

    def test_yuy2_stream_end_to_end_pixel_exact(self):
        loop, server, ws, client = rig(size=(128, 96))
        clip = SyntheticVideoClip(width=32, height=24, fps=12, duration=0.25)
        stream = ws.video_create_stream("YUY2", 32, 24, Rect(0, 0, 128, 96))

        def put(i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.encoded_frame(i, "YUY2"))
                loop.schedule(clip.frame_interval, lambda: put(i + 1))
            else:
                ws.video_destroy_stream(stream)

        loop.schedule(0, lambda: put(0))
        loop.run_until_idle(max_time=10)
        assert client.video_stats[stream.stream_id].frames_received == \
            clip.frame_count
        assert client.fb.same_as(ws.screen.fb)

    def test_yuy2_scaled_session(self):
        loop, server, ws, client = rig(viewport=(64, 48), size=(128, 96))
        clip = SyntheticVideoClip(width=32, height=24, fps=12, duration=0.1)
        stream = ws.video_create_stream("YUY2", 32, 24, Rect(0, 0, 128, 96))
        ws.video_put_frame(stream, clip.encoded_frame(0, "YUY2"))
        loop.run_until_idle(max_time=5)
        assert client.video_stats[stream.stream_id].frames_received == 1
