"""End-to-end integration: window server -> THINC -> network -> client.

The strongest correctness statement the system can make: after any
workload, once the network drains, the client framebuffer is
pixel-identical to the server's screen — across SRSF reordering,
non-blocking partial flushes, offscreen replay, eviction and merging.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import BLUE, GREEN, RED, WHITE, make_rig
from repro.core import THINCClient, THINCServer
from repro.display import WindowServer, solid_pixels
from repro.net import (Connection, EventLoop, LAN_DESKTOP, LinkParams,
                       WAN_DESKTOP)
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip


class TestPixelExactness:
    def test_simple_drawing(self):
        loop, conn, mon, server, ws, client = make_rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        ws.fill_rect(ws.screen, Rect(10, 10, 30, 20), RED)
        ws.draw_text(ws.screen, 12, 14, "Hello", BLUE)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_double_buffered_page_render(self):
        """Mozilla-style: compose offscreen, flip onscreen."""
        loop, conn, mon, server, ws, client = make_rig()
        page = ws.create_pixmap(96, 64)
        ws.fill_rect(page, page.bounds, WHITE)
        ws.fill_tiled(page, Rect(0, 0, 96, 12),
                      solid_pixels(4, 4, (220, 220, 255, 255)))
        ws.draw_text(page, 4, 2, "Title", (0, 0, 0, 255))
        rng = np.random.default_rng(1)
        ws.put_image(page, Rect(8, 20, 40, 30),
                     rng.integers(0, 256, (30, 40, 4), dtype=np.uint8))
        ws.copy_area(page, ws.screen, page.bounds, 0, 0)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_scrolling_uses_copy_and_stays_exact(self):
        loop, conn, mon, server, ws, client = make_rig()
        rng = np.random.default_rng(2)
        ws.put_image(ws.screen, ws.screen.bounds,
                     rng.integers(0, 256, (64, 96, 4), dtype=np.uint8))
        loop.run_until_idle(max_time=5)
        # Scroll up 10 rows, fill the exposed strip.
        ws.copy_area(ws.screen, ws.screen, Rect(0, 10, 96, 54), 0, 0)
        ws.fill_rect(ws.screen, Rect(0, 54, 96, 10), WHITE)
        before = mon.total_bytes("server->client")
        loop.run_until_idle(max_time=5)
        after = mon.total_bytes("server->client")
        assert client.fb.same_as(ws.screen.fb)
        # The scroll travelled as COPY + SFILL: a few dozen bytes.
        assert after - before < 200

    def test_overdraw_on_slow_link_converges(self):
        """Repeated full-screen updates on a thin pipe: eviction drops
        stale frames but the final state must match."""
        # A small socket buffer keeps the backlog in the client buffer,
        # where eviction can drop it (a huge socket buffer would commit
        # stale frames before they could be overwritten).
        slow = LinkParams("drip", bandwidth_bps=2e6, rtt=0.02)
        loop, conn, mon, server, ws, client = make_rig(link=slow,
                                                       send_buffer=30000)
        rng = np.random.default_rng(3)
        for i in range(12):
            ws.put_image(ws.screen, Rect(0, 0, 96, 64),
                         rng.integers(0, 256, (64, 96, 4), dtype=np.uint8))
        loop.run_until_idle(max_time=30)
        assert client.fb.same_as(ws.screen.fb)
        # Eviction must have saved bandwidth: far less than 12 frames.
        sent = mon.total_bytes("server->client")
        one_frame = 96 * 64 * 4
        assert sent < 6 * one_frame

    def test_wan_latency_does_not_affect_correctness(self):
        loop, conn, mon, server, ws, client = make_rig(link=WAN_DESKTOP)
        rng = np.random.default_rng(4)
        for i in range(5):
            x, y = int(rng.integers(0, 60)), int(rng.integers(0, 40))
            ws.fill_rect(ws.screen, Rect(x, y, 20, 15),
                         tuple(int(v) for v in rng.integers(0, 256, 3))
                         + (255,))
            ws.draw_text(ws.screen, x, y, "wan", WHITE)
        loop.run_until_idle(max_time=10)
        assert client.fb.same_as(ws.screen.fb)

    def test_encrypted_session_pixel_exact(self):
        loop, conn, mon, server, ws, client = make_rig(encrypt=True)
        ws.fill_rect(ws.screen, Rect(0, 0, 50, 30), GREEN)
        ws.draw_text(ws.screen, 4, 4, "secret", RED)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)

    def test_encrypted_bytes_differ_from_plaintext(self):
        received = []
        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 32, 32, encrypt_key=b"k1")
        ws = WindowServer(32, 32, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        conn.down.connect(lambda d: received.append(d))
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), RED)
        loop.run_until_idle(max_time=5)
        stream = b"".join(received)
        assert b"\xff\x00\x00\xff" not in stream  # colour not in clear

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_workload_pixel_exact(self, seed):
        rng = np.random.default_rng(seed)
        loop, conn, mon, server, ws, client = make_rig(width=64, height=48)
        pixmaps = []
        for _ in range(20):
            op = rng.integers(0, 6)
            x, y = int(rng.integers(0, 48)), int(rng.integers(0, 32))
            w, h = int(rng.integers(1, 16)), int(rng.integers(1, 16))
            color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
            if op == 0:
                ws.fill_rect(ws.screen, Rect(x, y, w, h), color)
            elif op == 1:
                ws.put_image(ws.screen, Rect(x, y, w, h),
                             rng.integers(0, 256, (h, w, 4), dtype=np.uint8))
            elif op == 2:
                ws.draw_text(ws.screen, x, y, "zx", color)
            elif op == 3:
                ws.copy_area(ws.screen, ws.screen, Rect(0, 0, 24, 24), x, y)
            elif op == 4:
                pm = ws.create_pixmap(16, 16)
                ws.fill_rect(pm, Rect(0, 0, 16, 16), color)
                ws.draw_text(pm, 1, 1, "q", WHITE)
                pixmaps.append(pm)
            elif op == 5 and pixmaps:
                pm = pixmaps[int(rng.integers(0, len(pixmaps)))]
                ws.copy_area(pm, ws.screen, Rect(0, 0, 16, 16), x, y)
        loop.run_until_idle(max_time=10)
        assert client.fb.same_as(ws.screen.fb)


class TestVideoPlayback:
    def test_video_full_rate_on_lan(self):
        loop, conn, mon, server, ws, client = make_rig(width=128, height=96)
        clip = SyntheticVideoClip(width=32, height=24, fps=24, duration=0.5)
        stream = ws.video_create_stream("YV12", 32, 24, Rect(0, 0, 128, 96))

        def put(i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.yv12_frame(i))
                loop.schedule(clip.frame_interval, lambda: put(i + 1))
            else:
                ws.video_destroy_stream(stream)

        loop.schedule(0, lambda: put(0))
        end = loop.run_until_idle(max_time=10)
        vstats = client.video_stats[stream.stream_id]
        assert vstats.frames_received == clip.frame_count
        assert client.fb.same_as(ws.screen.fb)
        # Playback must not stretch: last frame soon after clip end.
        assert end < clip.duration + 0.5

    def test_video_drops_frames_on_thin_pipe_but_converges(self):
        # 64x48 YV12 at 24 fps needs ~0.9 Mbps; give it half that, and
        # a socket buffer that holds only ~1.5 frames so the backlog
        # lives in the client buffer where eviction can drop frames.
        thin = LinkParams("thin", bandwidth_bps=0.45e6, rtt=0.01)
        loop, conn, mon, server, ws, client = make_rig(
            width=128, height=96, link=thin, send_buffer=7000)
        clip = SyntheticVideoClip(width=64, height=48, fps=24, duration=0.5)
        stream = ws.video_create_stream("YV12", 64, 48, Rect(0, 0, 128, 96))

        def put(i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.yv12_frame(i))
                loop.schedule(clip.frame_interval, lambda: put(i + 1))
            else:
                ws.video_destroy_stream(stream)

        loop.schedule(0, lambda: put(0))
        loop.run_until_idle(max_time=30)
        vstats = client.video_stats[stream.stream_id]
        assert vstats.frames_received < clip.frame_count  # drops occurred
        # The newest frame always wins: final screen still matches.
        assert client.fb.same_as(ws.screen.fb)


class TestServerSideScaling:
    def test_scaled_session_transfers_less(self):
        results = {}
        for viewport in [None, (24, 16)]:
            loop, conn, mon, server, ws, client = make_rig(
                width=96, height=64, viewport=viewport)
            rng = np.random.default_rng(5)
            ws.put_image(ws.screen, ws.screen.bounds,
                         rng.integers(0, 256, (64, 96, 4), dtype=np.uint8))
            loop.run_until_idle(max_time=5)
            results[viewport] = mon.total_bytes("server->client")
        assert results[(24, 16)] < results[None] / 3

    def test_scaled_client_framebuffer_is_viewport_sized(self):
        loop, conn, mon, server, ws, client = make_rig(viewport=(24, 16))
        ws.fill_rect(ws.screen, ws.screen.bounds, RED)
        loop.run_until_idle(max_time=5)
        assert (client.fb.width, client.fb.height) == (24, 16)
        assert tuple(client.fb.data[8, 12]) == RED

    def test_dynamic_resize_request(self):
        loop, conn, mon, server, ws, client = make_rig()
        client.request_resize(48, 32)
        loop.run_until_idle(max_time=5)
        session = server.sessions[0]
        assert session.viewport == (48, 32)
        ws.fill_rect(ws.screen, ws.screen.bounds, BLUE)
        loop.run_until_idle(max_time=5)
        assert tuple(client.fb.data[10, 10]) == BLUE


class TestInputPath:
    def test_client_input_reaches_server_handler(self):
        loop, conn, mon, server, ws, client = make_rig()
        seen = []
        server.input_handler = lambda session, msg: seen.append(msg)
        client.send_input("mouse-click", 12, 34)
        loop.run_until_idle(max_time=5)
        assert len(seen) == 1
        assert (seen[0].x, seen[0].y) == (12, 34)

    def test_input_latency_includes_upstream_half_rtt(self):
        loop, conn, mon, server, ws, client = make_rig(link=WAN_DESKTOP)
        times = []
        server.input_handler = lambda s, m: times.append(loop.now)
        client.send_input("mouse-click", 1, 1)
        loop.run_until_idle(max_time=5)
        assert times[0] >= WAN_DESKTOP.rtt / 2

    def test_headless_client_accounts_without_rendering(self):
        loop = EventLoop()
        conn = Connection(loop, LAN_DESKTOP)
        server = THINCServer(loop, 64, 48)
        ws = WindowServer(64, 48, driver=server.driver, clock=loop.clock)
        server.attach_client(conn)
        client = THINCClient(loop, conn, headless=True)
        ws.fill_rect(ws.screen, Rect(0, 0, 20, 20), RED)
        loop.run_until_idle(max_time=5)
        assert client.total_commands() == 1
        assert client.stats["bytes_received"] > 0


class TestConcurrentVideoStreams:
    def test_two_streams_play_side_by_side(self):
        """Video conferencing: several streams share one session."""
        loop, conn, mon, server, ws, client = make_rig(width=128, height=96)
        clip_a = SyntheticVideoClip(width=32, height=24, fps=12,
                                    duration=0.5, seed=1)
        clip_b = SyntheticVideoClip(width=16, height=12, fps=24,
                                    duration=0.5, seed=2)
        stream_a = ws.video_create_stream("YV12", 32, 24,
                                          Rect(0, 0, 64, 48))
        stream_b = ws.video_create_stream("YUY2", 16, 12,
                                          Rect(64, 48, 64, 48))

        def put(stream, clip, fmt, i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.encoded_frame(i, fmt))
                loop.schedule(clip.frame_interval,
                              lambda: put(stream, clip, fmt, i + 1))
            else:
                ws.video_destroy_stream(stream)

        loop.schedule(0, lambda: put(stream_a, clip_a, "YV12", 0))
        loop.schedule(0, lambda: put(stream_b, clip_b, "YUY2", 0))
        loop.run_until_idle(max_time=10)
        assert client.video_stats[stream_a.stream_id].frames_received == \
            clip_a.frame_count
        assert client.video_stats[stream_b.stream_id].frames_received == \
            clip_b.frame_count
        assert client.fb.same_as(ws.screen.fb)

    def test_moving_stream_repaints_correctly(self):
        loop, conn, mon, server, ws, client = make_rig(width=128, height=96)
        clip = SyntheticVideoClip(width=16, height=12, fps=24, duration=0.5)
        stream = ws.video_create_stream("YV12", 16, 12, Rect(0, 0, 32, 24))
        ws.video_put_frame(stream, clip.yv12_frame(0))
        loop.run_until_idle(max_time=5)
        # The window moves; subsequent frames land at the new place.
        ws.video_move_stream(stream, Rect(64, 48, 32, 24))
        ws.fill_rect(ws.screen, Rect(0, 0, 32, 24), (0, 0, 0, 255))
        ws.video_put_frame(stream, clip.yv12_frame(1))
        ws.video_destroy_stream(stream)
        loop.run_until_idle(max_time=5)
        assert client.fb.same_as(ws.screen.fb)
