"""Per-chokepoint tests for the resource governor's response ladder.

Each test pins one rung: degrade entry/exit at the queue watermark,
coalesce at the hard cap, eviction past the ceiling (or on a re-trip
within the cooldown), audio shedding, control-backlog eviction, uplink
throttling and flood eviction, the wire-error policies (plain vs
resilient), and server-wide admission control with its typed denial.
"""

import numpy as np
import pytest

from repro.core import AdmissionDenied, Budget, ServerBudget, THINCClient
from repro.net import Connection, LAN_DESKTOP
from repro.protocol import wire
from repro.region import Rect

from repro.net.link import LinkParams

from tests.helpers import make_rig, make_resilient_rig

#: A link slow enough (64 kbit/s) that full-screen noise RAWs pile up
#: in the session buffer instead of draining between pipeline events.
SLOW_LINK = LinkParams("slow modem", bandwidth_bps=64_000, rtt=0.01)


def noise(seed=0, w=96, h=64):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (h, w, 4), dtype=np.uint8)


def tight_budget(**kw):
    base = dict(degrade_queue_bytes=2_000, max_queue_bytes=200_000,
                evict_queue_bytes=400_000, coalesce_cooldown=0.5)
    base.update(kw)
    return Budget(**base)


class TestQueueLadder:
    def test_degrade_enter_and_exit(self):
        loop, conn, mon, server, ws, client = make_rig(
            budget=tight_budget())
        session = server.sessions[0]
        ws.put_image(ws.screen, Rect(0, 0, 96, 64), noise())
        loop.run_until(0.2)
        assert session.degraded
        assert server.governor.stats.degrade_entered == 1
        # Audio is shed while degraded (the mildest response).
        session.queue_audio(0.0, b"\x00" * 256)
        assert session.stats["audio_dropped"] == 1
        # Drain, then a small add re-runs the ladder and exits degrade.
        loop.run_until(20.0)
        ws.fill_rect(ws.screen, Rect(0, 0, 4, 4), (9, 9, 9, 255))
        loop.run_until(21.0)
        assert not session.degraded
        assert server.governor.stats.degrade_exited == 1

    def test_ceiling_evicts(self):
        loop, conn, mon, server, ws, client = make_rig(
            link=SLOW_LINK, send_buffer=2048,
            budget=tight_budget(degrade_queue_bytes=1_000,
                                max_queue_bytes=3_000,
                                evict_queue_bytes=6_000))
        session = server.sessions[0]
        ws.put_image(ws.screen, Rect(0, 0, 96, 64), noise())
        loop.run_until(5.0)
        assert session.quarantined
        assert server.governor.stats.evicted == 1
        # The ladder was climbed in order: coalesce was tried first.
        assert server.governor.stats.coalesces >= 1
        assert session not in server.sessions
        # The typed denial reaches the client; later draws don't crash.
        assert client.attach_denied is not None
        assert client.attach_denied.reason == wire.DENY_SESSION_BUDGET
        ws.fill_rect(ws.screen, Rect(0, 0, 8, 8), (1, 2, 3, 255))
        loop.run_until(6.0)

    def test_retrip_within_cooldown_evicts(self):
        loop, conn, mon, server, ws, client = make_rig(
            link=SLOW_LINK, send_buffer=2048,
            budget=tight_budget(max_queue_bytes=20_000,
                                evict_queue_bytes=10_000_000,
                                coalesce_cooldown=60.0))
        session = server.sessions[0]
        # Overlapping tiles defeat queue overwrites; the first overflow
        # coalesces, and the re-trip within the cooldown evicts.
        for i in range(8):
            ws.put_image(ws.screen, Rect(4 * i, 2 * i, 64, 48),
                         noise(i, 64, 48))
        loop.run_until(60.0)
        stats = server.governor.stats
        assert stats.coalesces >= 1
        assert stats.evicted == 1
        assert session.quarantined


class _StubBuffer:
    def __init__(self):
        self.pending = 0
        self.queue = []

    def pending_bytes(self):
        return self.pending


class _StubSession:
    """Just enough session surface for the ladder: the geometry engine
    clips real queues near one screen's worth of bytes, so the pure
    coalesce rung is driven with a synthetic gauge instead."""

    def __init__(self):
        self.buffer = _StubBuffer()
        self.degraded = False
        self.quarantined = False
        self.connection = None
        self.detached = False

    def detach(self):
        self.detached = True


class TestLadderUnit:
    """The queue ladder against a synthetic pending-bytes gauge."""

    def _governor(self, **kw):
        loop, conn, mon, server, ws, client = make_rig(
            budget=tight_budget(max_queue_bytes=30_000,
                                evict_queue_bytes=100_000, **kw))
        refreshes = []
        server._submit_refresh = (
            lambda session, rect=None, chunk_rows=None:
            refreshes.append((session, chunk_rows)))
        return server.governor, _StubSession(), refreshes

    def test_hard_cap_coalesces_then_recovers(self):
        gov, sess, refreshes = self._governor(coalesce_cooldown=0.5)
        sess.buffer.pending = 50_000
        sess.buffer.queue = ["cmd"] * 4
        gov.after_display_add(sess)
        assert gov.stats.coalesces == 1
        assert gov.stats.evicted == 0
        assert sess.buffer.queue == []          # backlog dropped...
        assert refreshes[0][1] == 64            # ...for a banded refresh
        assert not sess.quarantined
        # Once the refresh drains, the session recovers fully.
        sess.buffer.pending = 500
        gov.after_display_add(sess)
        assert not sess.quarantined and not sess.degraded

    def test_recoalesce_within_cooldown_evicts(self):
        gov, sess, refreshes = self._governor(coalesce_cooldown=10.0)
        sess.buffer.pending = 50_000
        gov.after_display_add(sess)
        assert gov.stats.coalesces == 1
        sess.buffer.pending = 50_000            # refilled immediately
        gov.after_display_add(sess)
        assert gov.stats.evicted == 1
        assert sess.quarantined and sess.detached

    def test_absolute_ceiling_skips_coalesce(self):
        gov, sess, refreshes = self._governor()
        sess.buffer.pending = 150_000
        gov.after_display_add(sess)
        assert gov.stats.coalesces == 0
        assert gov.stats.evicted == 1
        assert sess.quarantined


class TestAudioAndControl:
    def test_audio_backlog_sheds_oldest(self):
        loop, conn, mon, server, ws, client = make_rig(
            send_buffer=64, budget=Budget(max_audio_backlog_bytes=2_048))
        session = server.sessions[0]
        for i in range(8):
            session.queue_audio(float(i), bytes([i]) * 512)
        assert session.audio_backlog_bytes <= 2_048
        assert server.governor.stats.audio_shed >= 4
        assert not session.quarantined

    def test_control_backlog_evicts(self):
        loop, conn, mon, server, ws, client = make_rig(
            send_buffer=64, budget=Budget(max_control_backlog_bytes=4_096))
        session = server.sessions[0]
        rgba = bytes(32 * 32 * 4)
        for _ in range(8):
            if session.quarantined:
                break
            session.queue_control(
                wire.CursorImageMessage(0, 0, 32, 32, rgba))
        assert session.quarantined
        assert server.governor.stats.evicted == 1


class TestUplinkGovernance:
    def _flood(self, server, conn, loop, count):
        for i in range(count):
            conn.up.write(wire.encode_message(
                wire.InputMessage("key", i % 96, 0, loop.now)))
            loop.run_until(loop.now + 0.001)

    def test_token_bucket_throttles(self):
        seen = []
        loop, conn, mon, server, ws, client = make_rig(
            budget=Budget(uplink_msgs_per_sec=10.0, uplink_burst=5))
        server.input_handler = lambda s, m: seen.append(m)
        self._flood(server, conn, loop, 50)
        stats = server.governor.stats
        assert stats.uplink_throttled > 0
        assert len(seen) < 50
        assert server.sessions[0].stats["uplink_dropped"] > 0

    def test_sustained_flood_evicts(self):
        loop, conn, mon, server, ws, client = make_rig(
            budget=Budget(uplink_msgs_per_sec=1.0, uplink_burst=2,
                          max_uplink_dropped=10))
        session = server.sessions[0]
        self._flood(server, conn, loop, 40)
        assert session.quarantined
        assert server.governor.stats.evicted == 1

    def test_plain_session_quarantined_on_first_wire_error(self):
        loop, conn, mon, server, ws, client = make_rig()
        session = server.sessions[0]
        conn.up.write(wire.frame_message(99, b"garbage"))
        loop.run_until(1.0)
        assert session.quarantined
        assert session not in server.sessions
        assert session.stats["wire_errors"] == 1
        assert client.attach_denied is not None
        assert client.attach_denied.reason == wire.DENY_QUARANTINED

    def test_resilient_session_has_wire_error_budget(self):
        loop, dial, server, ws, rc = make_resilient_rig(
            budget=Budget(max_uplink_errors=2))
        rc.start()
        loop.run_until(0.5)
        session = server.sessions[0]
        conn = session.connection
        bad = wire.frame_message(99, b"garbage")
        conn.up.write(bad)
        loop.run_until(0.6)
        assert not session.quarantined  # parser reset, error 1/2
        conn.up.write(bad)
        loop.run_until(0.7)
        assert not session.quarantined  # error 2/2
        conn.up.write(bad)
        loop.run_until(0.8)
        assert session.quarantined      # budget exhausted
        assert server.governor.stats.wire_errors == 3


class TestAdmission:
    def test_attach_past_limit_denied_with_typed_message(self):
        loop, conn, mon, server, ws, client = make_rig(
            server_budget=ServerBudget(max_sessions=1, retry_after=2.5))
        late = Connection(loop, LAN_DESKTOP)
        late_client = THINCClient(loop, late)
        with pytest.raises(AdmissionDenied) as exc:
            server.attach_client(late)
        assert exc.value.reason == wire.DENY_SERVER_FULL
        assert exc.value.retry_after == 2.5
        assert len(server.sessions) == 1
        loop.run_until(1.0)
        denial = late_client.attach_denied
        assert denial is not None
        assert denial.reason == wire.DENY_SERVER_FULL
        assert denial.retry_after == 2.5
        assert server.governor.stats.admission_denied == 1

    def test_resilience_plane_denies_fresh_attach(self):
        loop, dial, server, ws, rc = make_resilient_rig(
            server_budget=ServerBudget(max_sessions=0, retry_after=0.2))
        rc.start()
        loop.run_until(2.0)
        assert len(server.sessions) == 0
        assert server.resilience.stats.reconnects_denied > 0
        assert server.governor.stats.admission_denied > 0
        # The client surfaced the denial and kept backing off cleanly.
        assert not rc.attached

    def test_stats_surface_governor_counters(self):
        loop, conn, mon, server, ws, client = make_rig()
        stats = server.stats
        assert stats["sessions"] == 1
        assert stats["governor_admitted"] == 1
        assert "governor_quarantined" in stats
