"""Tests for SRSF scheduling (Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FIFOScheduler, SRSFScheduler
from repro.protocol import RawCommand
from repro.region import Rect

RED = (255, 0, 0, 255)


def sized_raw(nbytes_hint, seq, x=0, y=0):
    """A raw command whose wire size grows with nbytes_hint."""
    side = max(1, int((nbytes_hint / 4) ** 0.5))
    rng = np.random.default_rng(seq)
    cmd = RawCommand(Rect(x, y, side, side),
                     rng.integers(0, 256, (side, side, 4), dtype=np.uint8),
                     compress=False)
    cmd.seq = seq
    return cmd


class TestBuckets:
    def test_small_commands_in_queue_zero(self):
        s = SRSFScheduler()
        assert s.bucket(1) == 0
        assert s.bucket(64) == 0

    def test_power_of_two_boundaries(self):
        s = SRSFScheduler()
        assert s.bucket(65) == 1
        assert s.bucket(128) == 1
        assert s.bucket(129) == 2

    def test_top_bucket_caps(self):
        s = SRSFScheduler()
        assert s.bucket(10**9) == s.num_queues - 1

    def test_monotone(self):
        s = SRSFScheduler()
        buckets = [s.bucket(n) for n in range(1, 100000, 37)]
        assert buckets == sorted(buckets)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SRSFScheduler(num_queues=0)
        with pytest.raises(ValueError):
            SRSFScheduler(base_size=0)


class TestOrdering:
    def test_smaller_commands_first(self):
        s = SRSFScheduler()
        big = sized_raw(50000, seq=0)
        small = sized_raw(20, seq=1, x=200)
        assert s.order([big, small]) == [small, big]

    def test_same_bucket_keeps_arrival_order(self):
        s = SRSFScheduler()
        a = sized_raw(20, seq=0)
        b = sized_raw(24, seq=1, x=100)
        assert s.order([b, a]) == [a, b]

    def test_realtime_preempts(self):
        s = SRSFScheduler()
        bulk = sized_raw(20, seq=0)
        rt = sized_raw(50000, seq=1, x=200)
        rt.realtime = True
        assert s.order([bulk, rt]) == [rt, bulk]

    def test_floor_pins_command_behind_dependency(self):
        s = SRSFScheduler()
        big = sized_raw(50000, seq=0)  # high bucket
        dep = sized_raw(20, seq=1, x=200)  # naturally bucket 0
        dep.sched_floor = s.effective_bucket(big)
        order = s.order([big, dep])
        assert order.index(big) < order.index(dep)

    @given(st.lists(st.tuples(st.integers(10, 200000), st.booleans()),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_order_is_permutation(self, specs):
        s = SRSFScheduler()
        cmds = []
        for i, (size, rt) in enumerate(specs):
            c = sized_raw(size, seq=i, x=(i * 16) % 400, y=(i * 16) // 400)
            c.realtime = rt
            cmds.append(c)
        out = s.order(cmds)
        assert sorted(id(c) for c in out) == sorted(id(c) for c in cmds)
        # All realtime commands precede all normal ones.
        flags = [c.realtime for c in out]
        assert flags == sorted(flags, reverse=True)


class TestFIFO:
    def test_pure_arrival_order(self):
        s = FIFOScheduler()
        big = sized_raw(50000, seq=0)
        small = sized_raw(20, seq=1, x=200)
        small.realtime = True
        assert s.order([small, big]) == [big, small]

    def test_bucket_always_zero(self):
        s = FIFOScheduler()
        assert s.bucket(10**9) == 0
