"""Tests for the command queue's eviction/merging/copy semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommandQueue
from repro.display import Framebuffer
from repro.protocol import BitmapCommand, RawCommand, SFillCommand
from repro.region import Rect

RED = (255, 0, 0, 255)
GREEN = (0, 255, 0, 255)
BLUE = (0, 0, 255, 255)
W, H = 48, 32


def raw(rect, seed=0, compress=False):
    rng = np.random.default_rng(seed)
    return RawCommand(rect, rng.integers(0, 256, (rect.height, rect.width, 4),
                                         dtype=np.uint8), compress)


def replay(queue, size=(W, H)):
    fb = Framebuffer(*size)
    for cmd in queue:
        cmd.apply(fb)
    return fb


class TestOrderingAndSeq:
    def test_arrival_order_preserved(self):
        q = CommandQueue(merge=False)
        a = q.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        b = q.add(SFillCommand(Rect(10, 0, 4, 4), GREEN))
        assert [c.seq for c in q] == [a.seq, b.seq]
        assert a.seq < b.seq

    def test_drain_empties(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        out = q.drain()
        assert len(out) == 1 and len(q) == 0


class TestEviction:
    def test_full_overwrite_evicts(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8), 1))
        q.add(raw(Rect(0, 0, 8, 8), 2))
        assert len(q) == 1
        assert q.stats["evicted"] == 1

    def test_partial_overwrite_clips_partial_commands(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8), 1))
        q.add(SFillCommand(Rect(0, 0, 8, 4), RED))
        # The raw command survives only below the fill.
        raws = [c for c in q if c.kind == "raw"]
        assert all(c.dest.y >= 4 for c in raws)
        assert sum(c.dest.area for c in raws) == 8 * 4

    def test_complete_commands_survive_partial_overlap(self):
        q = CommandQueue(merge=False)
        q.add(SFillCommand(Rect(0, 0, 8, 8), RED))
        q.add(raw(Rect(0, 0, 4, 4), 1))
        kinds = [c.kind for c in q]
        assert kinds == ["sfill", "raw"]

    def test_complete_command_evicted_when_fully_covered(self):
        q = CommandQueue(merge=False)
        q.add(SFillCommand(Rect(2, 2, 4, 4), RED))
        q.add(raw(Rect(0, 0, 10, 10), 1))
        assert [c.kind for c in q] == ["raw"]

    def test_transparent_commands_never_evict(self):
        q = CommandQueue(merge=False)
        q.add(raw(Rect(0, 0, 8, 8), 1))
        q.add(BitmapCommand(Rect(0, 0, 8, 8), np.eye(8, dtype=bool), RED))
        assert len(q) == 2

    def test_transparent_evicted_when_covered(self):
        q = CommandQueue(merge=False)
        q.add(BitmapCommand(Rect(2, 2, 4, 4), np.ones((4, 4), bool), RED))
        q.add(SFillCommand(Rect(0, 0, 10, 10), GREEN))
        assert [c.kind for c in q] == ["sfill"]

    def test_video_frames_overwrite_each_other(self):
        """Successive frames at one spot keep only the newest (drops)."""
        from repro.protocol import VideoFrameCommand
        from repro.video import yuv

        rgb = np.zeros((12, 16, 3), dtype=np.uint8)
        data = yuv.pack_yv12(*yuv.rgb_to_yv12(rgb))
        q = CommandQueue(merge=False)
        for i in range(5):
            q.add(VideoFrameCommand(1, Rect(0, 0, 32, 24), 16, 12, data, i))
        assert len(q) == 1
        assert next(iter(q)).frame_no == 4


class TestReplayInvariant:
    """Replaying the queue matches replaying the full command history."""

    def _commands(self, rng):
        cmds = []
        for _ in range(12):
            kind = rng.integers(0, 4)
            x, y = int(rng.integers(0, W - 8)), int(rng.integers(0, H - 8))
            w, h = int(rng.integers(1, 9)), int(rng.integers(1, 9))
            rect = Rect(x, y, w, h)
            if kind == 0:
                color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
                cmds.append(SFillCommand(rect, color))
            elif kind == 1:
                cmds.append(raw(rect, seed=int(rng.integers(0, 999))))
            elif kind == 2:
                mask = rng.integers(0, 2, (h, w)).astype(bool)
                cmds.append(BitmapCommand(rect, mask, RED, GREEN))
            else:
                mask = rng.integers(0, 2, (h, w)).astype(bool)
                cmds.append(BitmapCommand(rect, mask, BLUE, None))
        return cmds

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_queue_replay_equals_history_replay(self, seed):
        rng = np.random.default_rng(seed)
        cmds = self._commands(rng)
        q = CommandQueue()
        truth = Framebuffer(W, H)
        for cmd in cmds:
            cmd.apply(truth)
            q.add(cmd)
        assert replay(q).same_as(truth)
        # Clipping may split a command into at most 4 fragments, so the
        # queue can never grow past that bound on the history length.
        assert len(q) <= 4 * len(cmds)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_merge_disabled_also_correct(self, seed):
        rng = np.random.default_rng(seed)
        cmds = self._commands(rng)
        q = CommandQueue(merge=False)
        truth = Framebuffer(W, H)
        for cmd in cmds:
            cmd.apply(truth)
            q.add(cmd)
        assert replay(q).same_as(truth)


class TestMerging:
    def test_scanline_chunks_merge(self):
        q = CommandQueue()
        base = np.arange(8 * 8 * 4, dtype=np.uint8).reshape(8, 8, 4)
        for y in range(0, 8, 2):
            q.add(RawCommand(Rect(0, y, 8, 2), base[y : y + 2], False))
        assert len(q) == 1
        assert next(iter(q)).dest == Rect(0, 0, 8, 8)
        assert q.stats["merged"] == 3

    def test_glyph_run_merges(self):
        q = CommandQueue()
        m = np.ones((7, 5), dtype=bool)
        for i in range(6):
            q.add(BitmapCommand(Rect(i * 6, 0, 5, 7), m, RED, None))
        assert len(q) == 1
        assert next(iter(q)).dest.width == 6 * 6 - 1

    def test_merge_returns_stored_command(self):
        q = CommandQueue()
        a = SFillCommand(Rect(0, 0, 4, 4), RED)
        b = SFillCommand(Rect(4, 0, 4, 4), RED)
        q.add(a)
        stored = q.add(b)
        assert stored is not b
        assert stored.dest == Rect(0, 0, 8, 4)


class TestOffscreenCopy:
    def test_copy_preserves_commands_and_translates(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 16, 16), RED))
        q.add(BitmapCommand(Rect(2, 2, 5, 7),
                            np.ones((7, 5), bool), BLUE, None))
        out = q.commands_for_copy(Rect(0, 0, 16, 16), 10, 10)
        assert {c.kind for c in out} == {"sfill", "bitmap"}
        assert all(c.dest.x >= 10 and c.dest.y >= 10 for c in out)
        # Source queue untouched (a region can source many copies).
        assert len(q) == 2

    def test_copy_clips_to_source_rect(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 16, 16), RED))
        out = q.commands_for_copy(Rect(4, 4, 4, 4), -4, -4)
        assert len(out) == 1
        assert out[0].dest == Rect(0, 0, 4, 4)

    def test_uncovered_region_reported(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 8, 16), RED))
        uncovered = q.uncovered_region(Rect(0, 0, 16, 16))
        assert uncovered.area == 8 * 16
        assert uncovered.bounds == Rect(8, 0, 8, 16)

    def test_transparent_over_uncovered_is_tainted(self):
        q = CommandQueue()
        q.add(BitmapCommand(Rect(0, 0, 4, 4), np.ones((4, 4), bool),
                            RED, None))
        # The blend landed on undescribed content: replay unfaithful.
        assert q.uncovered_region(Rect(0, 0, 4, 4)).area == 16
        assert not q.commands_for_copy(Rect(0, 0, 4, 4), 0, 0)

    def test_transparent_over_covered_is_replayable(self):
        q = CommandQueue()
        q.add(SFillCommand(Rect(0, 0, 8, 8), GREEN))
        q.add(BitmapCommand(Rect(0, 0, 4, 4), np.ones((4, 4), bool),
                            RED, None))
        assert q.uncovered_region(Rect(0, 0, 8, 8)).is_empty
        out = q.commands_for_copy(Rect(0, 0, 8, 8), 0, 0)
        assert {c.kind for c in out} == {"sfill", "bitmap"}

    def test_copy_replay_matches_pixels(self):
        """Replaying a copied queue reproduces the source pixels."""
        rng = np.random.default_rng(7)
        q = CommandQueue()
        src_fb = Framebuffer(24, 24)
        for cmd in [
            SFillCommand(Rect(0, 0, 24, 24), GREEN),
            raw(Rect(2, 2, 10, 10), 3),
            BitmapCommand(Rect(4, 4, 6, 6),
                          rng.integers(0, 2, (6, 6)).astype(bool), RED, None),
        ]:
            cmd.apply(src_fb)
            q.add(cmd)
        dst_fb = Framebuffer(24, 24)
        for cmd in q.commands_for_copy(Rect(2, 2, 12, 12), 6, 6):
            cmd.apply(dst_fb)
        src_block = src_fb.read_pixels(Rect(2, 2, 12, 12))
        dst_block = dst_fb.read_pixels(Rect(8, 8, 12, 12))
        assert np.array_equal(src_block, dst_block)


class TestWireAccounting:
    def test_total_wire_size(self):
        q = CommandQueue()
        a = q.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        assert q.total_wire_size() == a.wire_size()

    def test_remove_and_replace(self):
        q = CommandQueue(merge=False)
        a = q.add(SFillCommand(Rect(0, 0, 4, 4), RED))
        b = q.add(SFillCommand(Rect(20, 0, 4, 4), GREEN))
        q.remove(a)
        assert list(q) == [b]
        c = SFillCommand(Rect(20, 0, 2, 4), GREEN)
        q.replace(b, c)
        assert list(q) == [c]
