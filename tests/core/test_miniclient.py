"""The minimal client must agree pixel-for-pixel with the full client."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import THINCClient, THINCServer
from repro.core.miniclient import MiniClient
from repro.display import WindowServer, solid_pixels
from repro.net import Connection, EventLoop, LAN_DESKTOP
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip

WHITE = (255, 255, 255, 255)
RED = (200, 40, 40, 255)


def rig(width=96, height=64):
    loop = EventLoop()
    server = THINCServer(loop, width, height)
    ws = WindowServer(width, height, driver=server.driver, clock=loop.clock)
    conn_full = Connection(loop, LAN_DESKTOP)
    conn_mini = Connection(loop, LAN_DESKTOP)
    server.attach_client(conn_full)
    server.attach_client(conn_mini)
    full = THINCClient(loop, conn_full)
    mini = MiniClient(conn_mini)
    return loop, ws, full, mini


def screens_match(ws, full, mini):
    return (np.array_equal(mini.pixels, full.fb.data)
            and full.fb.same_as(ws.screen.fb))


class TestEquivalence:
    def test_desktop_drawing(self):
        loop, ws, full, mini = rig()
        ws.fill_rect(ws.screen, ws.screen.bounds, WHITE)
        ws.draw_text(ws.screen, 4, 4, "mini client", (0, 0, 0, 255))
        tile = solid_pixels(4, 4, (220, 230, 240, 255))
        ws.fill_tiled(ws.screen, Rect(0, 40, 96, 24), tile)
        ws.copy_area(ws.screen, ws.screen, Rect(0, 0, 30, 20), 50, 30)
        ws.composite(ws.screen, Rect(10, 20, 16, 16),
                     solid_pixels(16, 16, (255, 0, 0, 120)))
        loop.run_until_idle(max_time=5)
        assert screens_match(ws, full, mini)

    def test_offscreen_replay(self):
        loop, ws, full, mini = rig()
        page = ws.create_pixmap(60, 40)
        ws.fill_rect(page, page.bounds, (240, 240, 255, 255))
        ws.draw_text(page, 2, 2, "double buffered", (10, 10, 10, 255))
        rng = np.random.default_rng(3)
        ws.put_image(page, Rect(4, 16, 30, 18),
                     rng.integers(0, 256, (18, 30, 4), dtype=np.uint8))
        ws.copy_area(page, ws.screen, page.bounds, 10, 10)
        loop.run_until_idle(max_time=5)
        assert screens_match(ws, full, mini)

    def test_video_playback(self):
        loop, ws, full, mini = rig(width=128, height=96)
        clip = SyntheticVideoClip(width=32, height=24, fps=24, duration=0.25)
        stream = ws.video_create_stream("YV12", 32, 24, Rect(0, 0, 128, 96))

        def put(i):
            if i < clip.frame_count:
                ws.video_put_frame(stream, clip.yv12_frame(i))
                loop.schedule(clip.frame_interval, lambda: put(i + 1))
            else:
                ws.video_destroy_stream(stream)

        loop.schedule(0, lambda: put(0))
        loop.run_until_idle(max_time=10)
        assert screens_match(ws, full, mini)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_workloads(self, seed):
        rng = np.random.default_rng(seed)
        loop, ws, full, mini = rig(width=64, height=48)
        for _ in range(15):
            op = rng.integers(0, 4)
            x, y = int(rng.integers(0, 48)), int(rng.integers(0, 32))
            w, h = int(rng.integers(1, 14)), int(rng.integers(1, 14))
            color = tuple(int(v) for v in rng.integers(0, 256, 3)) + (255,)
            if op == 0:
                ws.fill_rect(ws.screen, Rect(x, y, w, h), color)
            elif op == 1:
                ws.put_image(ws.screen, Rect(x, y, w, h),
                             rng.integers(0, 256, (h, w, 4),
                                          dtype=np.uint8))
            elif op == 2:
                ws.draw_text(ws.screen, x, y, "mc", color)
            else:
                ws.copy_area(ws.screen, ws.screen, Rect(0, 0, 20, 20), x, y)
        loop.run_until_idle(max_time=10)
        assert screens_match(ws, full, mini)

    def test_implementation_is_actually_small(self):
        """The paper's simplicity claim, kept honest by a line count."""
        import inspect

        import repro.core.miniclient as module

        source = inspect.getsource(module)
        code_lines = [l for l in source.splitlines()
                      if l.strip() and not l.strip().startswith(("#", '"'))]
        assert len(code_lines) < 90
