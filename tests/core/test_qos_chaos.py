"""Chaos: the QoS ladder crossed with live migration under congestion.

``make chaos`` runs this file at THINC_CHAOS_SEED 11, 23 and 47 with
the queue sanitizer armed; the default run uses seed 0.  The scenario
is the adaptive-QoS issue's worst case: a session playing video over a
thin, bursty link walks the degradation ladder, is migrated between
shards *mid-fault*, and must still ramp back to full-rate video and
converge pixel-exact on its new home — the rung travels inside the
frozen session blob, so the successor shard resumes the ladder instead
of restarting it.
"""

import os
from dataclasses import replace

from repro.core.qos import QosConfig
from repro.core.session_unit import FrozenSession
from repro.net.faults import FaultPlan
from repro.net.link import PDA_80211G
from repro.protocol import wire
from repro.region import Rect
from repro.video.stream import SyntheticVideoClip
from repro.workloads.video import AVPlayerApp

from tests.helpers import assert_pixel_identical, make_shard_rig

THIN_256K = replace(PDA_80211G, name="256k thin", bandwidth_bps=256e3)

CHAOS_SEED = int(os.environ.get("THINC_CHAOS_SEED", "0"))


class TestQosMigrationUnderChaos:
    def test_ladder_survives_migration_mid_congestion(self):
        seed = CHAOS_SEED or 7
        # A flapping radio link: each flap partitions the access link
        # outright, so frames pile up in the relay tier where only the
        # client's QOS_REPORT gap can expose them to the shard.
        plan = FaultPlan.flapping_80211g(
            1000 + seed, start=0.3, duration=1.6, flaps=4)
        loop, coord, screens, rcs = make_shard_rig(
            shards=2, clients=1, link=THIN_256K, plan=plan,
            schedule_workloads=False,
            qos=QosConfig(seed=seed, recover_polls=3, recover_jitter=1))
        # Mirrored screens: the same clip plays on every shard, so the
        # successor shard's QoS plane knows the same streams.
        for ws in screens:
            clip = SyntheticVideoClip(width=32, height=18, fps=24,
                                      duration=4.5)
            player = AVPlayerApp(ws, loop, clip, fullscreen=False,
                                 dst_rect=Rect(48, 24, 48, 32))
            loop.schedule_at(0.0, player.start)

        # The player reports playback health upstream periodically —
        # behind the relay tier this end-to-end signal is the only way
        # the shard can see the thin access link at all.
        def report():
            client = rcs[0].client
            if client is not None:
                for sid, vs in list(client.video_stats.items()):
                    if vs.frames_received:
                        client.send_qos_report(
                            sid, units_total=max(1, int(loop.now * 24)),
                            ideal_duration=max(loop.now, 1e-3))
            if loop.now < 6.0:
                loop.schedule(0.15, report)

        loop.schedule_at(0.25, report)

        # Migrate mid-fault-window, while the ladder is active.
        loop.run_until(1.0)
        token = rcs[0].token
        assert token, "client never attached"
        source = coord.route_token(token)
        target = (source + 1) % len(coord.shards)
        coord.migrate(token, target)
        loop.run_until(8.0)

        assert coord.route_token(token) == target
        # The frozen blob that crossed the fabric carried the rung.
        transfers = [m for m in coord.fabric_log
                     if isinstance(m, wire.SessionTransferMessage)]
        assert transfers, "no session transfer on the fabric log"
        carried = FrozenSession.from_bytes(transfers[-1].state)
        assert 0 <= carried.qos_rung <= wire.LIMITS.max_qos_rung

        # Across both shards the ladder actually engaged...
        downs = sum(s.stats.get("qos_rungs_down", 0) +
                    s.governor.stats.video_rungs_shed
                    for s in coord.shards)
        assert downs >= 1
        # ...and once the faults cleared the session ramped back to
        # full rate and converged pixel-exact on its new home.
        home = coord.shards[target]
        guard = home.resilience.guards.get(token)
        assert guard is not None, "token unknown on the new home shard"
        assert guard.session.qos_rung == 0
        assert_pixel_identical(rcs[0].client, screens[target])
