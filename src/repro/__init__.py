"""THINC reproduction: a virtual display architecture for thin-client computing.

This package reimplements, in simulation, the full system described in
"THINC: A Virtual Display Architecture for Thin-Client Computing"
(Baratto, Kim, Nieh - SOSP 2005): the THINC translation layer, command
queues, SRSF delivery scheduler, server-side scaling and A/V support,
together with the substrates the paper's evaluation depends on (a window
server with a driver interface, a discrete-event network simulator, and
behavioural models of the baseline thin-client systems).

Public entry points:

- :mod:`repro.core` - THINC server/client and translation machinery.
- :mod:`repro.display` - simulated window server + video driver interface.
- :mod:`repro.baselines` - VNC / X / NX / Sun Ray / RDP / ICA / GoToMyPC.
- :mod:`repro.workloads` - web-browsing and audio/video workloads.
- :mod:`repro.bench` - the slow-motion benchmarking harness that
  regenerates every figure in the paper's evaluation.
"""

__version__ = "1.0.0"

from .region import Rect, Region

__all__ = ["Rect", "Region", "__version__"]
