"""The finding record shared by every analysis pass."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List


@dataclass(frozen=True, order=True)
class Finding:
    """One analyzer diagnostic, pointing at file:line:col."""

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def format_findings(findings: Iterable[Finding]) -> str:
    lines: List[str] = [f.render() for f in sorted(findings)]
    return "\n".join(lines)
