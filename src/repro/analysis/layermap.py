"""The machine-readable layer map of the THINC reproduction.

The translation architecture depends on strict layering: the protocol
layer knows nothing of the server core, display drivers never reach
around the translation layer, and the simulation/benchmark shells sit
strictly above the system they measure.  This module is the single
source of truth the import checker (:mod:`repro.analysis.layering`)
enforces; ``docs/ANALYSIS.md`` renders the same map for humans.

Each top-level package under ``repro`` is assigned a *rank*.  A module
may import from its own package freely, and from any package of
**strictly lower** rank.  Packages sharing a rank are peers and may not
import each other (e.g. ``protocol`` and ``display`` are independent
views of the same geometry; ``baselines`` and ``workloads`` are
independent consumers of the system).

The resulting DAG, low to high::

    region                                  (pure geometry; imports nothing)
    net | video | audio                     (foundation models)
    codec                                   (batched pixel codecs + encoder
                                             policy; below protocol so command
                                             objects may call its kernels)
    protocol | display                      (wire commands | raster + drivers)
    core                                    (translation, queues, delivery)
    baselines | workloads                   (comparison systems | app models)
    cluster                                 (shard fabric over core servers)
    fuzz                                    (protocol fuzzing harness)
    bench                                   (measurement harness)
    <top-level modules: cli, __main__>      (entry points)
    analysis                                (this tooling; imports anything,
                                             imported by nothing at runtime)

``repro.core.sanitizer`` intentionally lives in ``core`` rather than
here so the runtime invariant checks obey the very layering they help
protect.

``repro.core.fanout`` (the broadcast fan-out plane) likewise takes
core's rank (THL100: rank 30): it is a delivery mode *beside* the
buffer/flush stages, built from the prepare plane below it and session
units beside it.  The cluster fabric (rank 42) may drive it — a
subscriber can attach through any shard's relay — but the plane itself
never imports upward.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["PACKAGE", "TOPLEVEL_RANK", "LAYER_RANKS", "rank_of",
           "import_allowed", "explain"]

#: The root package every rule applies to.
PACKAGE = "repro"

#: Rank of modules living directly in ``repro/`` (cli, __main__, __init__).
TOPLEVEL_RANK = 60

#: package name -> rank.  Lower ranks are lower layers.
LAYER_RANKS: Dict[str, int] = {
    "region": 0,
    "net": 10,
    "video": 10,
    "audio": 10,
    "codec": 15,
    "protocol": 20,
    "display": 20,
    "core": 30,
    "baselines": 40,
    "workloads": 40,
    "cluster": 42,
    "fuzz": 45,
    "bench": 50,
    "analysis": 100,
}


def rank_of(package: Optional[str]) -> int:
    """Rank for a top-level subpackage name (None = repro top level)."""
    if not package:
        return TOPLEVEL_RANK
    try:
        return LAYER_RANKS[package]
    except KeyError:
        raise KeyError(
            f"package {package!r} is not in the layer map; add it to "
            f"repro.analysis.layermap.LAYER_RANKS") from None


def import_allowed(importer: Optional[str], imported: Optional[str]) -> bool:
    """May a module in package *importer* import package *imported*?"""
    if importer == imported:
        return True
    return rank_of(imported) < rank_of(importer)


def explain(importer: Optional[str], imported: Optional[str]) -> str:
    """Human-readable reason an import violates the layer map."""
    iname = imported or "<top-level>"
    oname = importer or "<top-level>"
    ri, ro = rank_of(imported), rank_of(importer)
    if ri == ro:
        return (f"repro.{oname} and repro.{iname} are peer layers "
                f"(rank {ri}) and must not import each other")
    return (f"repro.{oname} (rank {ro}) may not import repro.{iname} "
            f"(rank {ri}): imports must flow strictly downward")
