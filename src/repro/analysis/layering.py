"""Import-layering checker for the ``repro`` dependency DAG.

Walks every module under a ``repro`` package root, resolves its imports
(absolute and relative) to top-level ``repro`` subpackages, and reports
any edge the layer map (:mod:`repro.analysis.layermap`) forbids, with
file:line positions.  Only imports inside the ``repro`` namespace are
checked — stdlib and third-party imports are out of scope.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from . import layermap
from .findings import Finding

__all__ = ["check_layering", "check_module_source", "imported_packages"]

RULE = "THL100"


def _module_parts(path: Path) -> List[str]:
    # ``__init__`` is deliberately kept: a package's own __init__ module
    # must resolve relative imports against the package itself.
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return parts


def imported_packages(source: str, module: str,
                      known_packages: Tuple[str, ...],
                      ) -> Iterator[Tuple[Optional[str], int]]:
    """Yield (top-level repro package or None, lineno) per repro import.

    ``None`` means a top-level module (``repro.cli`` and friends).
    *known_packages* distinguishes ``from . import subpackage`` from
    plain module imports when resolution lands on ``repro`` itself.
    """
    tree = ast.parse(source)
    mod_parts = module.split(".")
    # The package a relative import is resolved against: the module's
    # parent, or the module itself for a package __init__.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] != layermap.PACKAGE:
                    continue
                if len(parts) > 1 and parts[1] in known_packages:
                    yield parts[1], node.lineno
                else:
                    # ``import repro`` or ``import repro.cli``: top level.
                    yield None, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = (node.module or "").split(".")
                if base[0] != layermap.PACKAGE:
                    continue
            else:
                # Resolve the relative import against this module.
                base = mod_parts[:-1] if len(mod_parts) > 1 else mod_parts
                if node.level > 1:
                    base = base[: len(base) - (node.level - 1)]
                if not base or base[0] != layermap.PACKAGE:
                    continue
                base = base + (node.module.split(".") if node.module else [])
            if len(base) >= 2:
                yield (base[1] if base[1] in known_packages else None), \
                    node.lineno
            else:
                # ``from repro import x`` / ``from .. import x`` — each
                # name may itself be a subpackage.
                for alias in node.names:
                    if alias.name in known_packages:
                        yield alias.name, node.lineno
                    else:
                        yield None, node.lineno


def check_module_source(source: str, module: str,
                        path: str = "<string>") -> List[Finding]:
    """Layer-check one module's source against the layer map."""
    mod_parts = module.split(".")
    importer = mod_parts[1] if len(mod_parts) >= 3 else None
    known = tuple(layermap.LAYER_RANKS)
    out: List[Finding] = []
    for imported, lineno in imported_packages(source, module, known):
        if not layermap.import_allowed(importer, imported):
            out.append(Finding(path, lineno, 0, RULE,
                               layermap.explain(importer, imported)))
    return out


def check_layering(root) -> Iterator[Finding]:
    """Check every module under *root* (the ``src/repro`` tree)."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in files:
        if "__pycache__" in path.parts:
            continue
        parts = _module_parts(path)
        if not parts or parts[0] != layermap.PACKAGE:
            continue
        module = ".".join(parts)
        yield from check_module_source(path.read_text(), module, str(path))
