"""Repo-specific static analysis for the THINC reproduction.

The paper states its correctness conditions in prose; this package
checks them mechanically:

* :mod:`repro.analysis.lint` — ``thinclint``, an AST linter with rules
  derived from the paper's invariants (every protocol command declares
  its overwrite class and queue-manipulation contract, no direct
  framebuffer writes outside the display layer, no O(n) head drains on
  hot paths, no hard-coded wire-format constants, no mutable default
  arguments, no bare excepts).
* :mod:`repro.analysis.layering` — an import checker enforcing the
  translation architecture's dependency DAG (the machine-readable map
  lives in :mod:`repro.analysis.layermap`).
* :mod:`repro.analysis.facts` + :mod:`repro.analysis.contracts` — the
  whole-program protocol-contract analyzer (rules THL200–THL205): one
  AST pass over all of ``src/repro`` collects wire-message classes,
  parser accept sets, dispatch sites, decode guards, the SessionUnit
  serialization surface and wall-clock calls; the rule engine
  cross-checks those facts against the ``PROTOCOL_SPEC`` registry,
  renders the conformance matrix (``docs/CONTRACTS.md``) and gates CI
  through the committed findings baseline
  (``analysis_baseline.json``).
* :mod:`repro.analysis.sanitizer` — wiring for the opt-in runtime
  command-queue sanitizer (``THINC_SANITIZE=1``) whose checks live in
  :mod:`repro.core.sanitizer`, next to the queue it validates.

Run everything with ``make analyze``, or directly:
``python -m repro.analysis`` (lint + layering) and
``python -m repro.analysis --contracts`` (contract rules + baseline +
matrix); see ``docs/ANALYSIS.md`` for the rule catalogue, suppression
syntax and the baseline workflow.
"""

from .contracts import (CONTRACT_RULES, apply_baseline, check_clock_sweep,
                        check_contracts, finding_key, load_baseline,
                        render_contract_matrix)
from .facts import extract_facts
from .findings import Finding, format_findings
from .layering import check_layering
from .lint import RULES, lint_path, lint_source

__all__ = ["Finding", "format_findings", "RULES", "lint_source",
           "lint_path", "check_layering", "run_all",
           "CONTRACT_RULES", "extract_facts", "check_contracts",
           "check_clock_sweep", "render_contract_matrix",
           "load_baseline", "apply_baseline", "finding_key"]


def run_all(root):
    """Lint + layering over *root*; returns a sorted finding list."""
    findings = list(lint_path(root))
    findings.extend(check_layering(root))
    return sorted(findings)
