"""Repo-specific static analysis for the THINC reproduction.

The paper states its correctness conditions in prose; this package
checks them mechanically:

* :mod:`repro.analysis.lint` — ``thinclint``, an AST linter with rules
  derived from the paper's invariants (every protocol command declares
  its overwrite class and queue-manipulation contract, no direct
  framebuffer writes outside the display layer, no O(n) head drains on
  hot paths, no hard-coded wire-format constants, no mutable default
  arguments, no bare excepts).
* :mod:`repro.analysis.layering` — an import checker enforcing the
  translation architecture's dependency DAG (the machine-readable map
  lives in :mod:`repro.analysis.layermap`).
* :mod:`repro.analysis.sanitizer` — wiring for the opt-in runtime
  command-queue sanitizer (``THINC_SANITIZE=1``) whose checks live in
  :mod:`repro.core.sanitizer`, next to the queue it validates.

Run everything with ``make analyze`` or ``python -m repro.analysis``;
see ``docs/ANALYSIS.md`` for the rule catalogue and suppression syntax.
"""

from .findings import Finding, format_findings
from .layering import check_layering
from .lint import RULES, lint_path, lint_source

__all__ = ["Finding", "format_findings", "RULES", "lint_source",
           "lint_path", "check_layering", "run_all"]


def run_all(root):
    """Lint + layering over *root*; returns a sorted finding list."""
    findings = list(lint_path(root))
    findings.extend(check_layering(root))
    return sorted(findings)
