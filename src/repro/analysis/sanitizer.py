"""Developer wiring for the runtime queue/pipeline sanitizer.

The invariant checks themselves live in :mod:`repro.core.sanitizer`,
next to the :class:`~repro.core.command_queue.CommandQueue` they guard
— ``core`` may not import ``analysis``, and the sanitizer must obey the
layer map it ships with.  This module is the developer-facing surface:

* ``THINC_SANITIZE=1 pytest`` (or ``make sanitize``) runs the whole
  tier-1 suite with every command queue self-checking after each
  mutation and every session asserting pipeline ordering;
* :func:`enable` / :func:`disable` arm the sanitizer programmatically
  for *newly created* queues — tests use :func:`sanitized_queue` (or
  :func:`attach`) to check a specific queue without touching global
  state.

See ``docs/ANALYSIS.md`` for the invariant catalogue.
"""

from __future__ import annotations

from ..core import sanitizer as _core
from ..core.command_queue import CommandQueue

SanitizerError = _core.SanitizerError
QueueSanitizer = _core.QueueSanitizer
enabled = _core.enabled
enable = _core.enable
disable = _core.disable
check_pipe_tail = _core.check_pipe_tail
check_prepare_pins = _core.check_prepare_pins

__all__ = ["SanitizerError", "QueueSanitizer", "enabled", "enable",
           "disable", "check_pipe_tail", "check_prepare_pins", "attach",
           "sanitized_queue"]


def attach(queue: CommandQueue) -> QueueSanitizer:
    """Force-attach a sanitizer to *queue*, regardless of the env gate."""
    san = QueueSanitizer()
    queue._sanitizer = san
    return san


def sanitized_queue(merge: bool = True) -> CommandQueue:
    """A CommandQueue that self-checks, regardless of THINC_SANITIZE."""
    queue = CommandQueue(merge=merge)
    attach(queue)
    return queue
