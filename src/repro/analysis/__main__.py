"""CLI for the THINC invariant analyzer.

Usage::

    python -m repro.analysis [paths...] [--lint-only | --layering-only]
                             [--list-suppressions]

With no paths, analyzes the installed ``repro`` package tree (which is
``src/repro`` when run from a checkout).  Exits 1 when any finding is
reported, 0 otherwise — this is what ``make analyze`` and the CI
``analyze`` job run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .findings import format_findings
from .layering import check_layering
from .lint import find_suppressions, lint_path


def _default_root() -> Path:
    # .../src/repro/analysis/__main__.py -> .../src/repro
    return Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="thinclint + layering checks for the THINC repo")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: the repro "
                             "package tree)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--lint-only", action="store_true",
                       help="run only the AST lint rules")
    group.add_argument("--layering-only", action="store_true",
                       help="run only the import-layering checker")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="also list every 'thinclint: skip' marker "
                             "(the src/repro tree must have none)")
    args = parser.parse_args(argv)

    roots = args.paths or [_default_root()]
    findings = []
    suppressions = []
    for root in roots:
        if not root.exists():
            print(f"error: {root} does not exist", file=sys.stderr)
            return 2
        if not args.layering_only:
            findings.extend(lint_path(root))
        if not args.lint_only:
            findings.extend(check_layering(root))
        if args.list_suppressions:
            files = [root] if root.is_file() else sorted(root.rglob("*.py"))
            for path in files:
                if "__pycache__" in path.parts:
                    continue
                for line, rules in find_suppressions(path.read_text()):
                    which = ",".join(rules) if rules else "all"
                    suppressions.append(f"{path}:{line}: suppresses {which}")

    if findings:
        print(format_findings(findings))
    for line in suppressions:
        print(line)
    total = len(findings) + len(suppressions)
    checked = ("lint" if args.lint_only
               else "layering" if args.layering_only else "lint+layering")
    print(f"repro.analysis ({checked}): {len(findings)} finding(s)"
          + (f", {len(suppressions)} suppression(s)" if suppressions else ""),
          file=sys.stderr)
    # Suppressions count toward failure so a "clean" src/repro tree
    # cannot hide silenced rules.
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
