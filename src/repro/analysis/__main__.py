"""CLI for the THINC invariant analyzer.

Usage::

    python -m repro.analysis [paths...] [--lint-only | --layering-only]
                             [--list-suppressions]
    python -m repro.analysis --contracts [root]
                             [--baseline FILE] [--sweep DIR ...]
                             [--matrix-out FILE | --matrix-check FILE]

With no paths, analyzes the installed ``repro`` package tree (which is
``src/repro`` when run from a checkout).  The default mode runs
thinclint + the layering checker and exits 1 on any finding — this is
what ``make analyze`` and the CI ``analyze`` job run.

``--contracts`` runs the whole-program THL2xx contract rules instead:
findings are gated through the committed baseline
(``analysis_baseline.json`` at the repo root, or ``--baseline``) — any
*new* finding fails, accepted findings are tracked against the
baseline's suppression budget, and baselined findings that no longer
fire are flagged stale so the baseline only ever burns down.
``--matrix-out`` writes the generated conformance matrix
(``docs/CONTRACTS.md``); ``--matrix-check`` regenerates it in memory
and fails if the file on disk is stale.  ``--sweep`` adds extra trees
(``tests/``, ``benchmarks/``) to the THL205 wall-clock sweep; with the
default root, sibling ``tests/`` and ``benchmarks/`` directories are
swept automatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .contracts import (apply_baseline, check_clock_sweep,
                        check_contracts, load_baseline,
                        render_contract_matrix)
from .facts import extract_facts
from .findings import format_findings
from .layering import check_layering
from .lint import find_suppressions, lint_path


def _default_root() -> Path:
    # .../src/repro/analysis/__main__.py -> .../src/repro
    return Path(__file__).resolve().parent.parent


def _run_contracts(args) -> int:
    root = args.paths[0] if args.paths else _default_root()
    if not root.exists():
        print(f"error: {root} does not exist", file=sys.stderr)
        return 2
    facts = extract_facts(root)
    findings = list(check_contracts(facts))

    sweeps = list(args.sweep)
    if not args.paths:
        # From a checkout, src/repro's grandparent is the repo root.
        repo = root.parent.parent
        for name in ("tests", "benchmarks"):
            candidate = repo / name
            if candidate.is_dir():
                sweeps.append(candidate)
    for sweep in sweeps:
        if not Path(sweep).exists():
            print(f"error: sweep path {sweep} does not exist",
                  file=sys.stderr)
            return 2
        findings.extend(check_clock_sweep(Path(sweep)))

    baseline_path = args.baseline
    if baseline_path is None and not args.paths:
        candidate = root.parent.parent / "analysis_baseline.json"
        if candidate.exists():
            baseline_path = candidate
    baseline = load_baseline(baseline_path)
    result = apply_baseline(sorted(findings), baseline, root)

    failed = not result.ok
    if result.new:
        print(format_findings(result.new))
    for finding in result.accepted:
        print(f"baseline: {finding.render()}")
    for key in result.stale:
        print(f"stale baseline entry (fix shipped? remove it): {key}")
    if result.over_budget:
        print(f"baseline over budget: {len(result.accepted)} accepted "
              f"finding(s) exceed the suppression budget of "
              f"{baseline.budget}")

    matrix = render_contract_matrix(facts)
    if args.matrix_out is not None:
        args.matrix_out.parent.mkdir(parents=True, exist_ok=True)
        args.matrix_out.write_text(matrix)
        print(f"wrote {args.matrix_out}", file=sys.stderr)
    if args.matrix_check is not None:
        on_disk = args.matrix_check.read_text() \
            if args.matrix_check.exists() else ""
        if on_disk != matrix:
            print(f"{args.matrix_check} is stale; regenerate with "
                  f"python -m repro.analysis --contracts --matrix-out "
                  f"{args.matrix_check}")
            failed = True

    print(f"repro.analysis (contracts): {len(result.new)} new, "
          f"{len(result.accepted)} baselined, {len(result.stale)} "
          f"stale finding(s) over {len(facts.spec)} spec ids",
          file=sys.stderr)
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="thinclint + layering + protocol-contract checks "
                    "for the THINC repo")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: the repro "
                             "package tree)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--lint-only", action="store_true",
                       help="run only the AST lint rules")
    group.add_argument("--layering-only", action="store_true",
                       help="run only the import-layering checker")
    group.add_argument("--contracts", action="store_true",
                       help="run the whole-program THL2xx contract "
                            "rules with the findings baseline")
    parser.add_argument("--list-suppressions", action="store_true",
                        help="also list every 'thinclint: skip' marker "
                             "(the src/repro tree must have none)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="findings baseline JSON (default: "
                             "analysis_baseline.json at the repo root)")
    parser.add_argument("--sweep", type=Path, action="append",
                        default=[],
                        help="extra tree for the THL205 clock sweep "
                             "(repeatable)")
    parser.add_argument("--matrix-out", type=Path, default=None,
                        help="write the generated conformance matrix "
                             "(docs/CONTRACTS.md) here")
    parser.add_argument("--matrix-check", type=Path, default=None,
                        help="fail if this file differs from the "
                             "regenerated conformance matrix")
    args = parser.parse_args(argv)

    if args.contracts:
        if len(args.paths) > 1:
            print("error: --contracts takes at most one root",
                  file=sys.stderr)
            return 2
        return _run_contracts(args)

    roots = args.paths or [_default_root()]
    findings = []
    suppressions = []
    for root in roots:
        if not root.exists():
            print(f"error: {root} does not exist", file=sys.stderr)
            return 2
        if not args.layering_only:
            findings.extend(lint_path(root))
        if not args.lint_only:
            findings.extend(check_layering(root))
        if args.list_suppressions:
            files = [root] if root.is_file() else sorted(root.rglob("*.py"))
            for path in files:
                if "__pycache__" in path.parts:
                    continue
                for line, rules in find_suppressions(path.read_text()):
                    which = ",".join(rules) if rules else "all"
                    suppressions.append(f"{path}:{line}: suppresses {which}")

    if findings:
        print(format_findings(findings))
    for line in suppressions:
        print(line)
    total = len(findings) + len(suppressions)
    checked = ("lint" if args.lint_only
               else "layering" if args.layering_only else "lint+layering")
    print(f"repro.analysis ({checked}): {len(findings)} finding(s)"
          + (f", {len(suppressions)} suppression(s)" if suppressions else ""),
          file=sys.stderr)
    # Suppressions count toward failure so a "clean" src/repro tree
    # cannot hide silenced rules.
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
