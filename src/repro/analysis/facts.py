"""Whole-program fact extraction for the protocol-contract analyzer.

One AST walk over a ``repro`` package tree, collecting everything the
THL2xx rules in :mod:`repro.analysis.contracts` cross-check:

* the spec registry itself — ``MessageSpec`` entries are read from the
  *analyzed tree's* ``protocol/spec.py`` source, not imported, so the
  analyzer works on any checkout (including the mutated copies the
  test suite uses to prove each rule fires); a unit test asserts the
  AST-extracted registry equals the live ``PROTOCOL_SPEC``;
* every wire message class (``type_id`` class attribute) and a decode
  analysis of its ``decode_payload``: which fields it unpacks, which
  flow through a ``WireLimits`` comparison / clamp / guard helper
  (``_need``/``_exactly``/``_finite``/anything that raises a
  ``ProtocolError``), and which size a slice — including through one
  level of local helper-function calls;
* every ``StreamParser`` construction site and its ``allowed=`` set;
* every dispatch-site reference to a message class (``isinstance``
  checks and plain references), with its enclosing class/function;
* the ``SessionUnit`` serialization surface: attributes assigned on
  ``self`` anywhere in the class, attributes ``freeze()`` reads, and
  the ``NOT_SERIALIZED`` allowlist with its reason strings;
* every wall-clock API call (``time.time``/``time.monotonic``/
  ``datetime.now``/...), through ``import``/``from``-import aliases.

Everything here is pure AST — no module from the analyzed tree is ever
imported — so extraction cannot be confused by import-time side
effects and runs identically on broken or mutated trees.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "SpecEntry", "DecodeFact", "MessageClassFact", "ParserSite",
    "MessageRef", "ClockCall", "SessionSurface", "Facts",
    "extract_facts", "collect_clock_calls",
    "PROTOCOL_ERROR_NAMES", "GUARD_RAISE_NAMES", "BUILTIN_GUARDS",
    "WALL_CLOCK_TIME_APIS",
]

#: The typed decode-failure family; a helper that raises one of these
#: counts as a guard (THL203's interprocedural step).
PROTOCOL_ERROR_NAMES = frozenset({
    "ProtocolError", "ChecksumError", "TruncatedPayloadError",
    "FrameTooLargeError", "FieldRangeError",
})

#: Raises that qualify a compare-then-raise as a decode guard.  The
#: command layer deliberately raises plain ``ValueError`` (it must not
#: import the wire module; the frame dispatcher re-raises command
#: decode failures as ``ProtocolError``), and ``ProtocolError`` itself
#: subclasses ``ValueError`` — so both families have the same teeth.
GUARD_RAISE_NAMES = PROTOCOL_ERROR_NAMES | frozenset({"ValueError"})

#: Guard helpers recognised even when the analyzed module does not
#: define them (fixture trees may call them without a definition).
BUILTIN_GUARDS = frozenset({"_need", "_exactly", "_finite"})

#: Banned attributes of the ``time`` module (``perf_counter`` is *not*
#: banned: measuring the harness's own wall cost is legitimate — only
#: simulated behavior must never read the host clock).
WALL_CLOCK_TIME_APIS = frozenset({
    "time", "monotonic", "time_ns", "monotonic_ns"})

_DATETIME_APIS = frozenset({"now", "utcnow", "today"})

#: Names that look like wire message classes.  References to anything
#: else are not collected (keeps the fact set small and the dispatch
#: rules focused).
_MESSAGE_NAME = re.compile(
    r"^_?[A-Z]\w*(?:Message|Command|Frame)$|^Command$")


@dataclass(frozen=True)
class SpecEntry:
    """One ``MessageSpec(...)`` literal from ``protocol/spec.py``."""

    name: str
    type_id: int
    direction: str
    implementation: str  # trailing name of the implementation class
    line: int


@dataclass(frozen=True)
class DecodeFact:
    """What a ``decode_payload`` does with its payload bytes."""

    fields: FrozenSet[str]          # names bound from struct unpacks
    guarded: FrozenSet[str]         # fields that hit a guard event
    size_uses: Tuple[Tuple[str, int], ...]  # (field, line) inside a slice


@dataclass(frozen=True)
class MessageClassFact:
    """A class with an integer ``type_id`` class attribute."""

    name: str
    module: str  # posix path relative to the tree root
    line: int
    type_id: int
    decode: Optional[DecodeFact]


@dataclass(frozen=True)
class ParserSite:
    """One ``StreamParser(...)`` construction."""

    module: str
    line: int
    scope: str    # "Class.method" / "function" / "<module>"
    allowed: str  # set name, "None", "missing", or "<expr>"


@dataclass(frozen=True)
class MessageRef:
    """A reference to a message class name somewhere in the tree."""

    name: str
    module: str
    line: int
    scope_class: str  # innermost enclosing ClassDef ("" at module level)
    scope_func: str
    kind: str  # "isinstance" or "ref"


@dataclass(frozen=True)
class ClockCall:
    """A call into a wall-clock API."""

    api: str  # e.g. "time.time", "datetime.now"
    module: str
    line: int


@dataclass(frozen=True)
class SessionSurface:
    """The SessionUnit serialization surface (THL204's input)."""

    module: str
    assigned: FrozenSet[str]       # self.X = ... anywhere in the class
    frozen_reads: FrozenSet[str]   # self.X read inside freeze()
    not_serialized: Tuple[Tuple[str, str], ...]  # (attr, reason)
    line: int                      # the class statement


@dataclass(frozen=True)
class Facts:
    """Everything one extraction pass learned about a tree."""

    root: Path
    modules: FrozenSet[str]
    spec: Tuple[SpecEntry, ...]
    messages: Tuple[MessageClassFact, ...]
    parsers: Tuple[ParserSite, ...]
    refs: Tuple[MessageRef, ...]
    clock_calls: Tuple[ClockCall, ...]
    session: Optional[SessionSurface]


# --- small AST helpers -------------------------------------------------------

def _trailing_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _names_in(node: ast.AST) -> FrozenSet[str]:
    return frozenset(n.id for n in ast.walk(node)
                     if isinstance(n, ast.Name))


def _mentions_limits(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Name) and n.id == "LIMITS"
               for n in ast.walk(node))


def _iter_py(root: Path):
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


# --- decode_payload analysis -------------------------------------------------

def _analyze_decode(fn: ast.FunctionDef,
                    guard_names: FrozenSet[str],
                    local_fns: Dict[str, ast.FunctionDef],
                    depth: int = 0) -> DecodeFact:
    """Field/guard/size-use analysis of one function body.

    ``depth`` bounds the interprocedural step: a ``decode_payload``
    calling a module-level helper merges that helper's analysis once
    (one level, per the THL203 contract).
    """
    fields: set = set()
    guarded: set = set()
    size_uses: List[Tuple[str, int]] = []
    called: List[str] = []

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _trailing_name(node.value.func)
            if callee in ("unpack", "unpack_from"):
                for target in node.targets:
                    elts = target.elts if isinstance(
                        target, ast.Tuple) else [target]
                    for elt in elts:
                        if isinstance(elt, ast.Name):
                            fields.add(elt.id)
        elif isinstance(node, ast.Compare):
            if _mentions_limits(node):
                guarded |= _names_in(node)
        elif isinstance(node, ast.If) and isinstance(node.test, ast.Compare):
            # ``if kind_id >= len(TABLE): raise FieldRangeError(...)``
            # is a range check with teeth even without mentioning
            # LIMITS: the compared field cannot reach a use unchecked.
            if any(isinstance(inner, ast.Raise) and inner.exc is not None
                   and _trailing_name(inner.exc.func
                                      if isinstance(inner.exc, ast.Call)
                                      else inner.exc) in GUARD_RAISE_NAMES
                   for stmt in node.body for inner in ast.walk(stmt)):
                guarded |= _names_in(node.test)
        elif isinstance(node, ast.Call):
            callee = _trailing_name(node.func)
            if callee in guard_names:
                for arg in node.args:
                    guarded |= _names_in(arg)
            elif callee in ("min", "max") and _mentions_limits(node):
                for arg in node.args:
                    guarded |= _names_in(arg)  # clamp counts as a guard
            elif (isinstance(node.func, ast.Name)
                  and node.func.id in local_fns and depth == 0):
                called.append(node.func.id)
        elif isinstance(node, ast.Subscript):
            for name in _names_in(node.slice):
                size_uses.append((name, node.lineno))

    for callee in called:
        sub = _analyze_decode(local_fns[callee], guard_names,
                              local_fns, depth=1)
        fields |= sub.fields
        guarded |= sub.guarded
        size_uses.extend(sub.size_uses)

    return DecodeFact(fields=frozenset(fields),
                      guarded=frozenset(guarded),
                      size_uses=tuple(size_uses))


def _guard_helper_names(tree: ast.Module) -> FrozenSet[str]:
    """Module-level functions that qualify as decode guards: they
    compare against ``LIMITS``, raise a typed ``ProtocolError``, or
    delegate to a builtin guard."""
    names = set(BUILTIN_GUARDS)
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Compare) and _mentions_limits(inner):
                names.add(node.name)
                break
            if isinstance(inner, ast.Raise) and inner.exc is not None:
                exc = inner.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                if _trailing_name(target) in GUARD_RAISE_NAMES:
                    names.add(node.name)
                    break
            if isinstance(inner, ast.Call) and \
                    _trailing_name(inner.func) in BUILTIN_GUARDS:
                names.add(node.name)
                break
    return frozenset(names)


# --- per-module visitor ------------------------------------------------------

class _ModuleFacts(ast.NodeVisitor):
    def __init__(self, module: str, guard_names: FrozenSet[str],
                 local_fns: Dict[str, ast.FunctionDef],
                 int_consts: Optional[Dict[str, int]] = None):
        self.module = module
        self.guard_names = guard_names
        self.local_fns = local_fns
        #: Module-level integer constants, so ``type_id = _VSETUP``
        #: resolves the same as a literal.
        self.int_consts = int_consts or {}
        self.messages: List[MessageClassFact] = []
        self.parsers: List[ParserSite] = []
        self.refs: List[MessageRef] = []
        self.clock_calls: List[ClockCall] = []
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []
        # Wall-clock alias tracking.
        self._time_aliases: set = set()      # names bound to the module
        self._datetime_aliases: set = set()  # names bound to datetime(.datetime)
        self._time_fn_aliases: Dict[str, str] = {}  # local name -> api

    # -- scope bookkeeping --

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._collect_message_class(node)
        for base in node.bases:
            self._note_ref(base, "ref")
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    @property
    def _scope(self) -> str:
        parts = ([self._class_stack[-1]] if self._class_stack else []) \
            + self._func_stack
        return ".".join(parts) if parts else "<module>"

    # -- message classes --

    def _collect_message_class(self, node: ast.ClassDef) -> None:
        type_id = None
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not (isinstance(target, ast.Name)
                    and target.id == "type_id"):
                continue
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, int) \
                    and not isinstance(value.value, bool):
                type_id = value.value
            elif isinstance(value, ast.Name) \
                    and value.id in self.int_consts:
                type_id = self.int_consts[value.id]
        if type_id is None:
            return
        decode = None
        for stmt in node.body:
            # Wire messages decode via ``decode_payload``; protocol
            # commands via a ``decode`` classmethod.  Both are subject
            # to the same bounded-decode contract.
            if isinstance(stmt, ast.FunctionDef) \
                    and stmt.name in ("decode_payload", "decode"):
                decode = _analyze_decode(stmt, self.guard_names,
                                         self.local_fns)
        self.messages.append(MessageClassFact(
            name=node.name, module=self.module, line=node.lineno,
            type_id=type_id, decode=decode))

    # -- imports (for wall-clock aliasing) --

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_APIS:
                    self._time_fn_aliases[alias.asname or alias.name] = \
                        f"time.{alias.name}"
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self._datetime_aliases.add(alias.asname or alias.name)

    # -- calls: parsers, isinstance, wall clock --

    def visit_Call(self, node: ast.Call) -> None:
        callee = _trailing_name(node.func)
        if callee == "StreamParser":
            self.parsers.append(ParserSite(
                module=self.module, line=node.lineno, scope=self._scope,
                allowed=self._allowed_of(node)))
        elif isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            spec = node.args[1]
            elts = spec.elts if isinstance(spec, ast.Tuple) else [spec]
            for elt in elts:
                self._note_ref(elt, "isinstance")
        self._check_clock(node)
        self.generic_visit(node)

    def _allowed_of(self, node: ast.Call) -> str:
        expr = None
        for kw in node.keywords:
            if kw.arg == "allowed":
                expr = kw.value
        if expr is None and len(node.args) >= 3:
            expr = node.args[2]
        if expr is None:
            return "missing"
        if isinstance(expr, ast.Constant) and expr.value is None:
            return "None"
        name = _trailing_name(expr)
        return name if name is not None else "<expr>"

    def _check_clock(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if func.attr in WALL_CLOCK_TIME_APIS \
                    and isinstance(base, ast.Name) \
                    and base.id in self._time_aliases:
                self._clock(f"time.{func.attr}", node.lineno)
            elif func.attr in _DATETIME_APIS:
                base_name = _trailing_name(base)
                if base_name in self._datetime_aliases \
                        or base_name == "datetime":
                    self._clock(f"datetime.{func.attr}", node.lineno)
        elif isinstance(func, ast.Name) \
                and func.id in self._time_fn_aliases:
            self._clock(self._time_fn_aliases[func.id], node.lineno)

    def _clock(self, api: str, line: int) -> None:
        self.clock_calls.append(ClockCall(api=api, module=self.module,
                                          line=line))

    # -- message-name references --

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._note_ref(node, "ref")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._note_ref(node, "ref", recurse=False)
        self.generic_visit(node)

    def _note_ref(self, node: ast.AST, kind: str,
                  recurse: bool = True) -> None:
        name = _trailing_name(node)
        if name is None and recurse:
            for inner in ast.walk(node):
                n = _trailing_name(inner)
                if n is not None and _MESSAGE_NAME.match(n):
                    self._add_ref(n, inner.lineno, kind)
            return
        if name is not None and _MESSAGE_NAME.match(name):
            self._add_ref(name, node.lineno, kind)

    def _add_ref(self, name: str, line: int, kind: str) -> None:
        self.refs.append(MessageRef(
            name=name, module=self.module, line=line,
            scope_class=self._class_stack[-1] if self._class_stack else "",
            scope_func=".".join(self._func_stack), kind=kind))


# --- spec + session extraction ----------------------------------------------

def _module_int_consts(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int literal>`` bindings.

    Wire modules keep type ids as named constants (``_VSETUP = 16``)
    and assign ``type_id = _VSETUP`` in the class body; this map lets
    the class collector resolve that indirection without importing.
    """
    consts: Dict[str, int] = {}

    def _bind(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name) \
                and isinstance(value, ast.Constant) \
                and isinstance(value.value, int) \
                and not isinstance(value.value, bool):
            consts[target.id] = value.value
        elif isinstance(target, ast.Tuple) \
                and isinstance(value, ast.Tuple) \
                and len(target.elts) == len(value.elts):
            # ``_VSETUP, _VMOVE, _VTEARDOWN = 16, 17, 18``
            for t, v in zip(target.elts, value.elts):
                _bind(t, v)

    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            _bind(node.targets[0], node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            _bind(node.target, node.value)
    return consts


def _extract_spec(tree: ast.Module) -> Tuple[SpecEntry, ...]:
    entries: List[SpecEntry] = []
    for node in ast.walk(tree):
        # The registry may carry a type annotation
        # (``PROTOCOL_SPEC: List[MessageSpec] = [...]``) — accept both
        # plain and annotated assignment forms.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not (isinstance(target, ast.Name)
                and target.id == "PROTOCOL_SPEC"
                and isinstance(value, (ast.List, ast.Tuple))):
            continue
        for elt in value.elts:
            if not (isinstance(elt, ast.Call) and len(elt.args) >= 4):
                continue
            head = elt.args[:3]
            if not all(isinstance(a, ast.Constant) for a in head):
                continue
            name, type_id, direction = (a.value for a in head)
            impl = _trailing_name(elt.args[-1]) or "?"
            entries.append(SpecEntry(name=name, type_id=type_id,
                                     direction=direction,
                                     implementation=impl,
                                     line=elt.lineno))
    return tuple(entries)


def _extract_session(tree: ast.Module, module: str) \
        -> Optional[SessionSurface]:
    cls = None
    not_serialized: List[Tuple[str, str]] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "SessionUnit":
            cls = node
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "NOT_SERIALIZED" \
                and isinstance(node.value, ast.Dict):
            for key, value in zip(node.value.keys, node.value.values):
                attr = key.value if isinstance(key, ast.Constant) else "?"
                reason = value.value \
                    if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str) else ""
                not_serialized.append((attr, reason))
    if cls is None:
        return None
    assigned: set = set()
    frozen_reads: set = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and isinstance(node.ctx, ast.Store):
            assigned.add(node.attr)
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "freeze":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "self" \
                        and isinstance(node.ctx, ast.Load):
                    frozen_reads.add(node.attr)
    return SessionSurface(module=module, assigned=frozenset(assigned),
                          frozen_reads=frozenset(frozen_reads),
                          not_serialized=tuple(not_serialized),
                          line=cls.lineno)


# --- entry points ------------------------------------------------------------

def extract_facts(root: Path) -> Facts:
    """One extraction pass over a ``repro`` package tree at *root*."""
    root = Path(root)
    modules: List[str] = []
    spec: Tuple[SpecEntry, ...] = ()
    messages: List[MessageClassFact] = []
    parsers: List[ParserSite] = []
    refs: List[MessageRef] = []
    clock_calls: List[ClockCall] = []
    session: Optional[SessionSurface] = None

    for path in _iter_py(root):
        rel = path.relative_to(root).as_posix()
        modules.append(rel)
        tree = ast.parse(path.read_text(), filename=str(path))
        if rel == "protocol/spec.py":
            spec = _extract_spec(tree)
        if rel == "core/session_unit.py":
            session = _extract_session(tree, rel)
        local_fns = {node.name: node for node in tree.body
                     if isinstance(node, ast.FunctionDef)}
        visitor = _ModuleFacts(rel, _guard_helper_names(tree), local_fns,
                               _module_int_consts(tree))
        visitor.visit(tree)
        messages.extend(visitor.messages)
        parsers.extend(visitor.parsers)
        refs.extend(visitor.refs)
        clock_calls.extend(visitor.clock_calls)

    return Facts(root=root, modules=frozenset(modules), spec=spec,
                 messages=tuple(messages), parsers=tuple(parsers),
                 refs=tuple(refs), clock_calls=tuple(clock_calls),
                 session=session)


def collect_clock_calls(root: Path) -> Tuple[ClockCall, ...]:
    """Wall-clock calls in an arbitrary tree (the ``tests/`` and
    ``benchmarks/`` THL205 sweep; no exemptions apply there)."""
    root = Path(root)
    calls: List[ClockCall] = []
    for path in _iter_py(root):
        rel = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(), filename=str(path))
        visitor = _ModuleFacts(rel, BUILTIN_GUARDS, {})
        visitor.visit(tree)
        calls.extend(visitor.clock_calls)
    return tuple(calls)
