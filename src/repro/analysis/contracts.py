"""THL2xx: whole-program protocol-contract rules.

The per-file linter (:mod:`repro.analysis.lint`) checks what one
function can prove about itself; the rules here cross-check the facts
:mod:`repro.analysis.facts` extracts from the *whole* tree against the
``PROTOCOL_SPEC`` registry:

========  ====================================================================
THL200    every ``type_id`` is registered in the spec, exactly once,
          and matches the class the spec names
THL201    direction conformance — every directional ``StreamParser``
          names a spec-derived accept set, every accept set is
          enforced by at least one parser, and no dispatch scope
          handles a message its side can never legitimately receive
THL202    every registered message has a reachable handler on its
          declared receiving side (no dead wire ids)
THL203    interprocedural THL007 — a field unpacked in any
          ``decode_payload`` that sizes a slice must flow through a
          ``WireLimits`` comparison, a clamp, or a guard helper
          (``_need``/``_exactly``/``_finite``/...), including through
          one level of helper calls
THL204    serialization-surface drift — every mutable ``SessionUnit``
          attribute is captured by ``freeze()`` or allowlisted in
          ``NOT_SERIALIZED`` with a reason
THL205    simulated-clock discipline — no wall-clock API outside the
          injected-clock modules
========  ====================================================================

The module also renders the generated conformance matrix
(``docs/CONTRACTS.md``) and implements the findings baseline
(``analysis_baseline.json``): CI fails on any *new* finding, accepted
findings are tracked against a suppression budget, and entries that no
longer fire are flagged stale so the baseline burns down monotonically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .facts import (ClockCall, Facts, MessageRef, ParserSite,
                    collect_clock_calls)
from .findings import Finding

__all__ = [
    "CONTRACT_RULES", "check_contracts", "check_clock_sweep",
    "render_contract_matrix", "finding_key",
    "Baseline", "load_baseline", "apply_baseline", "BaselineResult",
]

#: Rule catalogue, rendered into docs/ANALYSIS.md's table.
CONTRACT_RULES = (
    ("THL200", "unregistered-type-id",
     "Every class-level type_id is registered in PROTOCOL_SPEC exactly "
     "once, under the class the spec names."),
    ("THL201", "direction-violation",
     "Directional StreamParsers name a spec-derived accept set "
     "(SERVER_ACCEPTS/CLIENT_ACCEPTS/FABRIC_ACCEPTS), each set is "
     "enforced by at least one parser, and no dispatch scope handles "
     "an id its side can never legitimately receive."),
    ("THL202", "dead-wire-id",
     "Every registered message has a reachable handler on its declared "
     "receiving side."),
    ("THL203", "unguarded-decode-field",
     "A decode_payload field that sizes a slice must flow through a "
     "WireLimits comparison, clamp, or guard helper first (one level "
     "of helper calls is followed)."),
    ("THL204", "serialization-drift",
     "Mutable SessionUnit state appears in freeze() or in the "
     "NOT_SERIALIZED allowlist with a reason string."),
    ("THL205", "wall-clock",
     "No time.time()/time.monotonic()/datetime.now() outside the "
     "injected-clock modules; tests/ and benchmarks/ are swept too."),
)

#: Modules allowed to touch the host clock (the injected-clock layer).
CLOCK_EXEMPT = ("net/clock.py",)

#: Directional parser expectations: module prefix -> role.  A
#: ``StreamParser`` in one of these modules must name the role's
#: accept set; parsers elsewhere (offline trace/bench diagnostics) are
#: exempt and listed as such in the conformance matrix.
PARSER_ROLES: Tuple[Tuple[str, str], ...] = (
    ("core/session_unit.py", "server"),
    ("core/client.py", "client"),
    ("core/miniclient.py", "client"),
    ("cluster/", "fabric"),
    ("fuzz/", "server"),  # the fuzzer mirrors the server's uplink
)

#: Accept-set names each role may cite (the spec alias and the raw
#: direction set it aliases).
ROLE_SET_NAMES: Dict[str, Tuple[str, ...]] = {
    "server": ("SERVER_ACCEPTS", "UPLINK_TYPE_IDS"),
    "client": ("CLIENT_ACCEPTS", "DOWNLINK_TYPE_IDS"),
    "fabric": ("FABRIC_ACCEPTS", "FABRIC_TYPE_IDS"),
}

#: Coverage requirement: the modules whose presence obliges a working
#: parser for the role (the fuzzer is a mirror, not an obligation).
ROLE_COVERAGE: Dict[str, Tuple[str, ...]] = {
    "server": ("core/session_unit.py",),
    "client": ("core/client.py", "core/miniclient.py"),
    "fabric": ("cluster/",),
}

#: Dispatch scopes: (module, class or "*" or "" for module level,
#: side).  Message references *outside* these scopes are not dispatch
#: (translation/prepare code legitimately inspects command classes on
#: the send path) and are never direction-checked.
DISPATCH_SCOPES: Tuple[Tuple[str, str, str], ...] = (
    ("core/server.py", "THINCServer", "server"),
    ("core/session_unit.py", "SessionUnit", "server"),
    ("core/resilience.py", "ResiliencePlane", "server"),
    ("core/resilience.py", "ResilientClient", "client"),
    ("core/resilience.py", "", "prelude"),  # _decode_prelude helpers
    ("core/client.py", "THINCClient", "client"),
    ("core/miniclient.py", "MiniClient", "client"),
    ("cluster/relay.py", "*", "prelude"),
    ("cluster/coordinator.py", "ShardCoordinator", "fabric"),
)

#: The clear-text connection prelude: the only ids a prelude peek may
#: legitimately inspect, whichever direction it faces.
PRELUDE_NAMES = frozenset({
    "CHECKED", "RECONNECT_REQ", "RECONNECT_ACCEPT", "RECONNECT_DENIED"})


# --- derived views over the facts -------------------------------------------

@dataclass(frozen=True)
class _SpecView:
    """Direction sets and name->id resolution, derived from the spec."""

    ids: FrozenSet[int]
    side_ids: Dict[str, FrozenSet[int]]  # side -> accepted ids
    impl_to_id: Dict[str, int]
    command_ids: FrozenSet[int]          # ids whose impl is a Command subclass


def _spec_view(facts: Facts) -> _SpecView:
    server = frozenset(e.type_id for e in facts.spec
                       if e.direction == "c->s")
    client = frozenset(e.type_id for e in facts.spec
                       if e.direction == "s->c") \
        | frozenset(e.type_id for e in facts.spec if e.name == "HEARTBEAT")
    fabric = frozenset(e.type_id for e in facts.spec
                       if e.direction == "s->s")
    prelude = frozenset(e.type_id for e in facts.spec
                        if e.name in PRELUDE_NAMES)
    impl_to_id = {e.implementation: e.type_id for e in facts.spec}
    commands_module = {m.name: m.module for m in facts.messages}
    command_ids = frozenset(
        e.type_id for e in facts.spec
        if commands_module.get(e.implementation, "")
        .endswith("protocol/commands.py"))
    return _SpecView(
        ids=frozenset(e.type_id for e in facts.spec),
        side_ids={"server": server, "client": client,
                  "fabric": fabric, "prelude": prelude},
        impl_to_id=impl_to_id, command_ids=command_ids)


def _resolve_ref(name: str, view: _SpecView) -> Optional[FrozenSet[int]]:
    """The spec ids a referenced class name stands for (None if it is
    not a registered message)."""
    if name == "Command":
        return view.command_ids or None
    type_id = view.impl_to_id.get(name)
    return frozenset({type_id}) if type_id is not None else None


def _dispatch_side(ref: MessageRef) -> Optional[str]:
    for module, cls, side in DISPATCH_SCOPES:
        if ref.module != module:
            continue
        if cls == "*" or ref.scope_class == cls:
            return side
    return None


def _parser_role(site: ParserSite) -> Optional[str]:
    for prefix, role in PARSER_ROLES:
        if site.module == prefix or site.module.startswith(prefix):
            return role
    return None


# --- the rules ---------------------------------------------------------------

def check_contracts(facts: Facts) -> List[Finding]:
    """Run THL200–THL205 over one extracted fact set."""
    findings: List[Finding] = []
    view = _spec_view(facts)
    path_of = {m: str(facts.root / m) for m in facts.modules}

    def add(rule: str, module: str, line: int, message: str) -> None:
        findings.append(Finding(path=path_of.get(module,
                                                 str(facts.root / module)),
                                line=line, col=0, rule=rule,
                                message=message))

    _thl200(facts, view, add)
    _thl201(facts, view, add)
    _thl202(facts, view, add)
    _thl203(facts, view, add)
    _thl204(facts, add)
    _thl205(facts.clock_calls, add, exempt=CLOCK_EXEMPT)
    return sorted(findings)


def _thl200(facts: Facts, view: _SpecView, add) -> None:
    spec_path = "protocol/spec.py"
    seen: Dict[int, str] = {}
    for entry in facts.spec:
        if entry.type_id in seen:
            add("THL200", spec_path, entry.line,
                f"type id {entry.type_id} registered twice in "
                f"PROTOCOL_SPEC ({seen[entry.type_id]} and {entry.name})")
        seen[entry.type_id] = entry.name
    by_id: Dict[int, List] = {}
    for msg in facts.messages:
        # type_id 0 is the Command base class's never-on-the-wire
        # sentinel, not a registrable id.
        if msg.type_id == 0:
            continue
        by_id.setdefault(msg.type_id, []).append(msg)
    impl_names = frozenset(e.implementation for e in facts.spec)
    for type_id, classes in sorted(by_id.items()):
        if len(classes) > 1:
            names = ", ".join(sorted(c.name for c in classes))
            add("THL200", classes[-1].module, classes[-1].line,
                f"type id {type_id} claimed by multiple classes "
                f"({names})")
        for cls in classes:
            if type_id not in view.ids and cls.name not in impl_names:
                add("THL200", cls.module, cls.line,
                    f"message class {cls.name} declares type id "
                    f"{type_id}, which PROTOCOL_SPEC does not register")
    class_ids = {m.name: m.type_id for m in facts.messages}
    for entry in facts.spec:
        declared = class_ids.get(entry.implementation)
        if declared is None:
            add("THL200", spec_path, entry.line,
                f"spec entry {entry.name} (id {entry.type_id}) names "
                f"implementation {entry.implementation}, which defines "
                f"no type_id in the tree")
        elif declared != entry.type_id:
            add("THL200", spec_path, entry.line,
                f"spec registers {entry.name} as id {entry.type_id} "
                f"but {entry.implementation} declares {declared}")


def _thl201(facts: Facts, view: _SpecView, add) -> None:
    # (a) every directional parser names its role's accept set.
    for site in facts.parsers:
        role = _parser_role(site)
        if role is None:
            continue
        expected = ROLE_SET_NAMES[role]
        if site.allowed in expected:
            continue
        if site.allowed in ("missing", "None"):
            how = "no allowed-id set"
        elif site.allowed == "<expr>":
            how = "an allowed set that is not a spec export " \
                  "(widening expression?)"
        else:
            how = f"allowed={site.allowed}"
        add("THL201", site.module, site.line,
            f"{site.scope} builds a {role}-link StreamParser with "
            f"{how}; expected allowed={expected[0]} from protocol.spec")
    # (b) every accept set is enforced by at least one parser.
    for role, prefixes in ROLE_COVERAGE.items():
        present = any(m == p or m.startswith(p)
                      for m in facts.modules for p in prefixes)
        if not present or not view.side_ids[role]:
            continue
        sites = [s for s in facts.parsers
                 if any(s.module == p or s.module.startswith(p)
                        for p in prefixes)]
        if not sites:
            ids = ", ".join(map(str, sorted(view.side_ids[role])))
            add("THL201", prefixes[0], 1,
                f"no StreamParser on the {role} link enforces "
                f"{ROLE_SET_NAMES[role][0]}; ids {ids} parse "
                f"unrestricted there")
    # (c) dispatch scopes only handle ids their side can receive.
    flagged = set()
    for ref in facts.refs:
        if ref.kind != "isinstance":
            continue
        side = _dispatch_side(ref)
        if side is None:
            continue
        ids = _resolve_ref(ref.name, view)
        if ids is None or ids <= view.side_ids[side]:
            continue
        key = (ref.module, ref.scope_class, ref.name)
        if key in flagged:
            continue
        flagged.add(key)
        foreign = sorted(ids - view.side_ids[side])
        add("THL201", ref.module, ref.line,
            f"{ref.scope_class or '<module>'}.{ref.scope_func or '?'} "
            f"dispatches on {ref.name} (id(s) "
            f"{', '.join(map(str, foreign))}) but is a {side}-side "
            f"scope that can never legitimately receive it")


def _thl202(facts: Facts, view: _SpecView, add) -> None:
    spec_path = "protocol/spec.py"
    side_present = {
        side: any(module in facts.modules
                  for module, _cls, s in DISPATCH_SCOPES if s == side)
        for side in ("server", "client", "fabric")
    }
    for entry in facts.spec:
        sides = [s for s in ("server", "client", "fabric")
                 if entry.type_id in view.side_ids[s]]
        for side in sides:
            if not side_present.get(side, False):
                continue
            if _handled(entry.implementation, entry.type_id, side,
                        facts, view):
                continue
            add("THL202", spec_path, entry.line,
                f"{entry.name} (id {entry.type_id}, "
                f"{entry.direction}) has no reachable handler on its "
                f"{side} side: dead wire id")


def _handled(impl: str, type_id: int, side: str, facts: Facts,
             view: _SpecView) -> bool:
    for ref in facts.refs:
        if _dispatch_side(ref) != side:
            continue
        if side != "fabric" and ref.kind != "isinstance":
            continue  # fabric consumes via construction + log adoption
        ids = _resolve_ref(ref.name, view)
        if ids is not None and type_id in ids:
            return True
    return False


def _thl203(facts: Facts, view: _SpecView, add) -> None:
    for msg in facts.messages:
        if msg.decode is None:
            continue
        reported = set()
        for field, line in msg.decode.size_uses:
            if field not in msg.decode.fields:
                continue  # not attacker-controlled payload data
            if field in msg.decode.guarded or field in reported:
                continue
            reported.add(field)
            add("THL203", msg.module, line,
                f"{msg.name}.decode_payload sizes a slice with "
                f"unpacked field '{field}' without a WireLimits "
                f"comparison or guard helper (_need/_exactly/clamp)")


def _thl204(facts: Facts, add) -> None:
    surface = facts.session
    if surface is None:
        return
    allow = dict(surface.not_serialized)
    for attr in sorted(surface.assigned
                       - surface.frozen_reads - set(allow)):
        add("THL204", surface.module, surface.line,
            f"SessionUnit.{attr} is mutable session state but is "
            f"neither captured by freeze() nor allowlisted in "
            f"NOT_SERIALIZED")
    for attr, reason in surface.not_serialized:
        if attr in surface.frozen_reads:
            add("THL204", surface.module, surface.line,
                f"NOT_SERIALIZED lists {attr!r}, but freeze() captures "
                f"it — stale allowlist entry")
        elif attr not in surface.assigned:
            add("THL204", surface.module, surface.line,
                f"NOT_SERIALIZED lists {attr!r}, which SessionUnit "
                f"never assigns — stale allowlist entry")
        elif not reason:
            add("THL204", surface.module, surface.line,
                f"NOT_SERIALIZED entry {attr!r} has no reason string")


def _thl205(calls: Iterable[ClockCall], add,
            exempt: Tuple[str, ...] = ()) -> None:
    for call in calls:
        if any(call.module == e or call.module.startswith(e)
               for e in exempt):
            continue
        add("THL205", call.module, call.line,
            f"wall-clock call {call.api}() outside the injected-clock "
            f"modules; simulated time comes from the event loop")


def check_clock_sweep(root: Path, label: str = "") -> List[Finding]:
    """THL205 over an arbitrary tree (tests/, benchmarks/)."""
    findings: List[Finding] = []
    root = Path(root)

    def add(rule: str, module: str, line: int, message: str) -> None:
        findings.append(Finding(path=str(root / module), line=line,
                                col=0, rule=rule, message=message))

    _thl205(collect_clock_calls(root), add)
    return sorted(findings)


# --- the findings baseline ---------------------------------------------------

def finding_key(finding: Finding, root: Path) -> str:
    """A line-independent identity for a finding: rule + root-relative
    path + message (messages carry no line numbers by construction, so
    unrelated edits never churn the baseline)."""
    path = Path(finding.path)
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    return f"{finding.rule}|{rel}|{finding.message}"


@dataclass(frozen=True)
class Baseline:
    budget: int
    keys: FrozenSet[str]


@dataclass(frozen=True)
class BaselineResult:
    new: Tuple[Finding, ...]       # fail: not in the baseline
    accepted: Tuple[Finding, ...]  # pass, tracked against the budget
    stale: Tuple[str, ...]         # fail: baselined but no longer firing
    over_budget: int               # accepted findings beyond the budget

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale and self.over_budget == 0


def load_baseline(path: Optional[Path]) -> Baseline:
    if path is None or not Path(path).exists():
        return Baseline(budget=0, keys=frozenset())
    data = json.loads(Path(path).read_text())
    return Baseline(budget=int(data.get("suppression_budget", 0)),
                    keys=frozenset(data.get("findings", ())))


def apply_baseline(findings: Iterable[Finding], baseline: Baseline,
                   root: Path) -> BaselineResult:
    new: List[Finding] = []
    accepted: List[Finding] = []
    fired = set()
    for finding in findings:
        key = finding_key(finding, root)
        fired.add(key)
        (accepted if key in baseline.keys else new).append(finding)
    stale = tuple(sorted(baseline.keys - fired))
    over = max(0, len(accepted) - baseline.budget)
    return BaselineResult(new=tuple(new), accepted=tuple(accepted),
                          stale=stale, over_budget=over)


# --- the conformance matrix --------------------------------------------------

def render_contract_matrix(facts: Facts) -> str:
    """``docs/CONTRACTS.md``: id × direction × parsers-that-accept ×
    handlers × bound-fields, generated from the extracted facts."""
    view = _spec_view(facts)
    set_ids = {name: view.side_ids[role]
               for role, names in ROLE_SET_NAMES.items() for name in names}

    directional: List[Tuple[str, ParserSite]] = []
    diagnostic: List[ParserSite] = []
    for site in facts.parsers:
        if site.allowed in set_ids:
            directional.append((site.allowed, site))
        elif _parser_role(site) is None:
            diagnostic.append(site)

    impl_of = {e.type_id: e.implementation for e in facts.spec}

    def parsers_for(type_id: int) -> str:
        labels = sorted({f"`{site.module}::{site.scope}`"
                         for name, site in directional
                         if type_id in set_ids[name]})
        return ", ".join(labels) if labels else "—"

    def handlers_for(type_id: int) -> str:
        labels = set()
        impl = impl_of.get(type_id)
        for ref in facts.refs:
            side = _dispatch_side(ref)
            if side is None:
                continue
            if side != "fabric" and ref.kind != "isinstance":
                continue
            ids = _resolve_ref(ref.name, view)
            if ids is None or type_id not in ids:
                continue
            suffix = " (Command fan-out)" if ref.name != impl else ""
            scope = ref.scope_class or ref.scope_func or "<module>"
            labels.add(f"`{ref.module}::{scope}`{suffix}")
        return ", ".join(sorted(labels)) if labels else "—"

    def bounds_for(type_id: int) -> str:
        impl = impl_of.get(type_id)
        fact = next((m for m in facts.messages if m.name == impl), None)
        if fact is None or fact.decode is None or not fact.decode.fields:
            return "—"
        parts = [f"{f}*" if f in fact.decode.guarded else f
                 for f in sorted(fact.decode.fields)]
        return ", ".join(parts)

    lines = [
        "# THINC protocol conformance matrix",
        "",
        "Generated by `python -m repro.analysis --contracts` from the",
        "facts in `repro.analysis.facts` — **do not edit**; `make",
        "analyze` fails when this file is stale.  For every registered",
        "wire id: who parses it, who handles it, and which payload",
        "fields are bounds-checked (`*` = the field flows through a",
        "`WireLimits` comparison or guard helper before use, THL203).",
        "",
        "| id | message | dir | parsers that accept it | handlers "
        "| decode fields |",
        "|---|---|---|---|---|---|",
    ]
    for entry in sorted(facts.spec, key=lambda e: e.type_id):
        lines.append(
            f"| {entry.type_id} | `{entry.name}` | {entry.direction} "
            f"| {parsers_for(entry.type_id)} "
            f"| {handlers_for(entry.type_id)} "
            f"| {bounds_for(entry.type_id)} |")
    lines += [
        "",
        "Ids 32–35 are `s->s` only: no client-facing parser set",
        "contains them, so they die at the frame header on any",
        "client link (THL201).",
        "",
        "## Diagnostic parsers (exempt from THL201)",
        "",
        "Offline tooling parses captured streams of either direction:",
        "",
    ]
    for site in sorted(diagnostic, key=lambda s: (s.module, s.line)):
        lines.append(f"* `{site.module}::{site.scope}`")
    if not diagnostic:
        lines.append("* (none)")
    lines += [
        "",
        "## Clock-exempt modules (THL205)",
        "",
    ]
    for module in CLOCK_EXEMPT:
        lines.append(f"* `{module}` — the injected-clock layer itself")
    lines.append("")
    return "\n".join(lines)
