"""``thinclint`` — AST lint rules for the THINC reproduction.

Each rule encodes an invariant the paper states in prose (or a defect
class this codebase has actually shipped, see PR 1's hard-coded frame
overhead and hot-path ``list.pop(0)``).  The rules:

=======  ==================  ==============================================
id       name                what it enforces
=======  ==================  ==============================================
THL001   command-contract    every ``Command`` subclass declares its
                             overwrite class and the full queue-
                             manipulation contract (Section 4)
THL002   fb-direct-write     only ``repro.display`` may write framebuffer
                             pixels directly; everyone else goes through
                             raster ops / the translation layer
THL003   head-drain          no ``list.pop(0)`` / ``del seq[0]`` O(n) head
                             drains — use ``collections.deque``
THL004   wire-constant       wire-format sizes outside ``repro.protocol``
                             must derive from ``repro.protocol.wire`` /
                             ``spec``, never be numeric literals
THL005   mutable-default     no mutable default arguments
THL006   bare-except         no bare ``except:`` clauses
THL007   unguarded-decode    ``decode_payload`` bodies must length-check
                             input before ``struct.unpack`` / slicing —
                             a short payload must raise a typed
                             ``ProtocolError``, not ``struct.error``
=======  ==================  ==============================================

Suppress a finding by appending a ``thinclint: skip`` comment (all
rules) or ``thinclint: skip=THL003`` (one rule, comma-separate for
several) to the offending line.  ``make analyze`` requires ``src/repro``
to be both finding-free and suppression-free.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["RULES", "lint_source", "lint_path", "find_suppressions"]

#: (id, name, summary) for every rule — rendered into docs/ANALYSIS.md.
RULES: Sequence[Tuple[str, str, str]] = (
    ("THL001", "command-contract",
     "Command subclasses must declare kind, type_id, overwrite_class and "
     "the translated/clipped/encode/decode/apply contract"),
    ("THL002", "fb-direct-write",
     "only repro.display may write Framebuffer.data directly"),
    ("THL003", "head-drain",
     "list.pop(0) / del seq[0] head drains are O(n); use collections.deque"),
    ("THL004", "wire-constant",
     "wire-format sizes outside repro.protocol must derive from "
     "repro.protocol.wire/spec, not numeric literals"),
    ("THL005", "mutable-default",
     "mutable default arguments are shared across calls"),
    ("THL006", "bare-except",
     "bare except swallows KeyboardInterrupt/SystemExit and hides bugs"),
    ("THL007", "unguarded-decode",
     "decode_payload must length-check its input (via _need/_exactly/len) "
     "before struct.unpack or slice-decoding it"),
)

# THL001: the contract every concrete protocol command must spell out.
_COMMAND_ATTRS = ("kind", "type_id", "overwrite_class")
_COMMAND_METHODS = ("translated", "clipped", "encode", "decode", "apply")

# THL004: ALL_CAPS names that look like wire-format sizes.
_WIRE_NAME = re.compile(
    r"(WIRE|FRAME|HEADER|HDR|PACKET|MSG|MESSAGE)_?\w*?"
    r"(OVERHEAD|SIZE|BYTES|LEN)")

# THL007: calls that count as a length guard inside decode_payload.
_DECODE_GUARDS = {"_need", "_exactly", "len"}

# THL005: zero-arg constructors of mutable containers.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "Counter", "OrderedDict", "Region"}

_SKIP_COMMENT = re.compile(r"#\s*thinclint:\s*skip(?:=([A-Z0-9,\s]+))?")


def _top_package(module: str) -> Optional[str]:
    """``repro.core.server`` -> ``core``; ``repro.cli`` -> None."""
    parts = module.split(".")
    if len(parts) >= 3 and parts[0] == "repro":
        return parts[1]
    return None


def find_suppressions(source: str) -> List[Tuple[int, Optional[List[str]]]]:
    """All ``thinclint: skip`` markers as (line, rules-or-None) pairs."""
    out: List[Tuple[int, Optional[List[str]]]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SKIP_COMMENT.search(line)
        if m:
            rules = None
            if m.group(1):
                rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            out.append((lineno, rules))
    return out


class _LintVisitor(ast.NodeVisitor):
    def __init__(self, path: str, package: Optional[str], in_protocol: bool,
                 in_display: bool):
        self.path = path
        self.package = package
        self.in_protocol = in_protocol
        self.in_display = in_display
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno,
                                     node.col_offset, rule, message))

    # -- THL001 ---------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_base_name(b) == "Command" for b in node.bases):
            declared = set()
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            declared.add(tgt.id)
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        declared.add(stmt.target.id)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    declared.add(stmt.name)
            missing = [n for n in _COMMAND_ATTRS + _COMMAND_METHODS
                       if n not in declared]
            if missing:
                self._flag(node, "THL001",
                           f"Command subclass {node.name} must declare its "
                           f"overwrite semantics; missing: "
                           f"{', '.join(missing)}")
        self.generic_visit(node)

    # -- THL002 ---------------------------------------------------------------

    def _check_data_store(self, target: ast.AST) -> None:
        for sub in ast.walk(target):
            if (isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Attribute)
                    and sub.value.attr == "data"):
                self._flag(sub, "THL002",
                           "direct framebuffer pixel write outside "
                           "repro.display; use Framebuffer raster ops "
                           "(fill_rect/put_pixels/clone/...)")

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.in_display:
            for tgt in node.targets:
                self._check_data_store(tgt)
        self._check_wire_constant(node, node.targets, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self.in_display:
            self._check_data_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_wire_constant(node, [node.target], node.value)
        self.generic_visit(node)

    # -- THL003 ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute) and node.func.attr == "pop"
                and len(node.args) == 1 and not node.keywords
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0):
            self._flag(node, "THL003",
                       "pop(0) drains a list head in O(n); use "
                       "collections.deque and popleft()")
        if (not self.in_display and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_view"):
            self._flag(node, "THL002",
                       "Framebuffer._view is private to repro.display")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for tgt in node.targets:
            if (isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.slice, ast.Constant)
                    and tgt.slice.value == 0):
                self._flag(node, "THL003",
                           "del seq[0] drains a list head in O(n); use "
                           "collections.deque and popleft()")
        self.generic_visit(node)

    # -- THL004 ---------------------------------------------------------------

    def _check_wire_constant(self, node: ast.AST, targets: Iterable[ast.AST],
                             value: ast.AST) -> None:
        if self.in_protocol:
            return
        for tgt in targets:
            if not isinstance(tgt, ast.Name):
                continue
            name = tgt.id
            if name != name.upper() or not _WIRE_NAME.search(name):
                continue
            if _is_int_literal_expr(value):
                self._flag(node, "THL004",
                           f"{name} hard-codes a wire-format size; derive "
                           f"it from repro.protocol.wire/spec so the "
                           f"framing struct and its users cannot drift")

    # -- THL005 ---------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if _is_mutable_default(default):
                self._flag(default, "THL005",
                           "mutable default argument is shared across "
                           "calls; default to None and create inside")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_decode_guard(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- THL007 ---------------------------------------------------------------

    def _check_decode_guard(self, node: ast.FunctionDef) -> None:
        """Wire decoders must validate lengths before raw decoding, so
        a short or lying payload surfaces as a typed ProtocolError
        instead of an uncontrolled struct.error / silent garbage."""
        if node.name != "decode_payload":
            return
        guard_line = None
        first_op: Optional[ast.AST] = None
        for sub in ast.walk(node):
            line = getattr(sub, "lineno", None)
            if line is None:
                continue
            if isinstance(sub, ast.Call):
                func = sub.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else "")
                if name in _DECODE_GUARDS:
                    if guard_line is None or line < guard_line:
                        guard_line = line
                elif name in ("unpack", "unpack_from"):
                    if first_op is None or line < first_op.lineno:
                        first_op = sub
            elif (isinstance(sub, ast.Subscript)
                    and isinstance(sub.slice, ast.Slice)):
                if first_op is None or line < first_op.lineno:
                    first_op = sub
        if first_op is not None and (guard_line is None
                                     or guard_line > first_op.lineno):
            self._flag(first_op, "THL007",
                       "decode_payload decodes raw bytes before any "
                       "length check; guard with _need/_exactly (or a "
                       "len() comparison) so truncated input raises a "
                       "typed ProtocolError")

    # -- THL006 ---------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "THL006",
                       "bare except catches KeyboardInterrupt/SystemExit; "
                       "name the exceptions this code expects")
        self.generic_visit(node)


def _base_name(base: ast.AST) -> str:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return ""


def _is_int_literal_expr(node: ast.AST) -> bool:
    """True when *node* is an int literal or pure arithmetic on them."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value,
                                                              bool)
    if isinstance(node, ast.BinOp):
        return (_is_int_literal_expr(node.left)
                and _is_int_literal_expr(node.right))
    if isinstance(node, ast.UnaryOp):
        return _is_int_literal_expr(node.operand)
    return False


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and not node.args and not node.keywords:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        return name in _MUTABLE_CALLS
    return False


def lint_source(source: str, module: str, path: str = "<string>",
                honor_suppressions: bool = True) -> List[Finding]:
    """Lint one module's source; *module* is its dotted import path."""
    tree = ast.parse(source, filename=path)
    package = _top_package(module)
    visitor = _LintVisitor(path, package,
                           in_protocol=(package == "protocol"),
                           in_display=(package == "display"))
    visitor.visit(tree)
    findings = visitor.findings
    if honor_suppressions:
        skips = dict(find_suppressions(source))
        findings = [f for f in findings
                    if not (f.line in skips
                            and (skips[f.line] is None
                                 or f.rule in skips[f.line]))]
    return findings


def module_name_for(path: Path) -> str:
    """Dotted module path for a file under a ``repro`` package root.

    ``__init__`` is kept as a path component so a package's own
    __init__ module still maps to the right package.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) or "repro"


def lint_path(root) -> Iterator[Finding]:
    """Lint every ``*.py`` file under *root* (a file works too)."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    for path in files:
        if "__pycache__" in path.parts:
            continue
        source = path.read_text()
        yield from lint_source(source, module_name_for(path), str(path))
