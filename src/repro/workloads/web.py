"""The web-browsing workload (i-Bench Web Page Load model).

The paper's web benchmark is a sequence of 54 pages mixing text and
graphics, loaded in Mozilla at full-screen resolution, advanced by a
mechanically timed mouse click on a link (Section 8.2).  This module
synthesises an equivalent page set and a browser model that renders
each page the way Mozilla renders: the page is composed in an
*offscreen* pixmap (double buffering — the behaviour THINC's offscreen
awareness exists for) and copied onscreen when complete.

Each page also knows its HTTP *content* size (HTML text plus
PNG-compressed images), which is what the local-PC baseline transfers,
and its server-side browser processing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..display.font import ADVANCE, GLYPH_HEIGHT
from ..display.framebuffer import solid_pixels
from ..display.xserver import WindowServer
from ..protocol import compression
from ..region import Rect

__all__ = ["PageElement", "WebPage", "make_page_set", "WebBrowserApp",
           "PAGE_COUNT"]

PAGE_COUNT = 54

_WORDS = ("the quick brown fox jumps over lazy dog thin client remote "
          "display protocol network server latency bandwidth video web "
          "page benchmark system desktop user screen update command "
          "driver virtual performance measure result figure table data").split()


@dataclass
class PageElement:
    """One drawable element of a synthetic page."""

    kind: str  # "fill" | "tile" | "text" | "image" | "photo"
    rect: Rect
    color: Tuple[int, int, int, int] = (0, 0, 0, 255)
    text: str = ""
    seed: int = 0


@dataclass
class WebPage:
    """A generated page: display elements plus HTTP content accounting."""

    index: int
    width: int
    height: int
    elements: List[PageElement]
    content_bytes: int
    render_pixels: int
    image_heavy: bool
    link_target: Tuple[int, int] = (0, 0)  # where the "next" link sits


def _text_line(rng) -> str:
    count = int(rng.integers(6, 12))
    return " ".join(_WORDS[int(rng.integers(0, len(_WORDS)))]
                    for _ in range(count))


def _photo(width: int, height: int, seed: int) -> np.ndarray:
    """Photo-like content: low-frequency detail over gradients.

    Decoded web photographs are smooth at the pixel scale (JPEG has
    already thrown the high frequencies away); generate upsampled
    low-resolution noise so predictive codecs see realistic structure.
    """
    rng = np.random.default_rng(seed)
    small = rng.integers(0, 256, (height // 8 + 1, width // 8 + 1, 3))
    img = np.repeat(np.repeat(small, 8, 0), 8, 1)[:height, :width]
    # Box-smooth the block edges into gradients, sprinkle the faint
    # noise a decoded JPEG carries, and quantise the last bit away.
    # Calibrated so PNG-class predictive codecs reach ~0.45 of raw and
    # plain DEFLATE ~0.6 — the spread real web photos show.
    for _ in range(2):
        img = (img + np.roll(img, 3, 0) + np.roll(img, 3, 1)
               + np.roll(img, -3, 0)) // 4
    img = img + rng.integers(0, 2, img.shape)
    ramp = np.linspace(0, 60, width, dtype=np.int64)[None, :, None]
    img = np.clip(img + ramp, 0, 255) & ~np.int64(1)
    img = img.astype(np.uint8)
    alpha = np.full((height, width, 1), 255, dtype=np.uint8)
    return np.concatenate([img, alpha], axis=2)


def _logo(width: int, height: int, seed: int) -> np.ndarray:
    """Logo/banner content: a few flat colour bands (GIF-ish)."""
    rng = np.random.default_rng(seed)
    img = np.zeros((height, width, 4), dtype=np.uint8)
    img[..., 3] = 255
    bands = int(rng.integers(2, 5))
    for i in range(bands):
        color = rng.integers(40, 256, 3)
        x0 = i * width // bands
        img[:, x0 : (i + 1) * width // bands, :3] = color
    return img


def render_element_pixels(element: PageElement) -> Optional[np.ndarray]:
    """Materialise an image element's pixels (deterministic by seed)."""
    if element.kind == "photo":
        return _photo(element.rect.width, element.rect.height, element.seed)
    if element.kind == "image":
        return _logo(element.rect.width, element.rect.height, element.seed)
    return None


def make_page_set(count: int = PAGE_COUNT, width: int = 1024,
                  height: int = 768, seed: int = 54) -> List[WebPage]:
    """Generate the deterministic benchmark page sequence.

    Page mix follows the paper's description: mostly mixed text and
    graphics, with an occasional page that is primarily one large image
    (the pages where THINC falls back to compressed RAW).
    """
    pages = []
    for index in range(count):
        rng = np.random.default_rng(seed * 100_000 + index)
        elements: List[PageElement] = []
        content = 600  # HTTP headers + HTML skeleton
        image_heavy = index % 9 == 4
        # Page background: solid, sometimes subtly tiled.
        if rng.random() < 0.25:
            elements.append(PageElement("tile", Rect(0, 0, width, height),
                                        seed=int(rng.integers(1 << 30))))
        else:
            elements.append(PageElement(
                "fill", Rect(0, 0, width, height), (255, 255, 255, 255)))
        # Header band with the site title.
        header_color = tuple(int(v) for v in rng.integers(60, 200, 3)) + (255,)
        elements.append(PageElement("fill", Rect(0, 0, width, 48),
                                    header_color))
        title = _text_line(rng)
        # Core (bitmap) text throughout, like the paper's Mozilla 1.6
        # on XFree86 4.3; the anti-aliased path is exercised by the
        # desktop workloads and its own tests.
        elements.append(PageElement("text", Rect(16, 20, 1, 1),
                                    (255, 255, 255, 255), text=title))
        content += len(title)
        y = 64
        if image_heavy:
            w = min(width - 128, 800)
            h = min(height - 200, 500)
            element = PageElement("photo", Rect(64, y, w, h),
                                  seed=int(rng.integers(1 << 30)))
            elements.append(element)
            content += len(compression.png_compress(
                render_element_pixels(element)))
            y += h + 16
        else:
            # Era-appropriate mix: mostly text with occasional modest
            # thumbnails and banners (2005-vintage pages were light on
            # imagery; the every-ninth "image heavy" page carries the
            # large-photograph case).
            paragraphs = int(rng.integers(6, 12))
            for _ in range(paragraphs):
                if y > height - 120:
                    break
                lines = int(rng.integers(3, 7))
                for _ in range(lines):
                    text = _text_line(rng)
                    elements.append(PageElement(
                        "text", Rect(32, y, 1, 1), (20, 20, 20, 255),
                        text=text[: (width - 64) // ADVANCE]))
                    content += len(text)
                    y += GLYPH_HEIGHT + 4
                if rng.random() < 0.35 and y < height - 180:
                    kind = "photo" if rng.random() < 0.5 else "image"
                    w = int(rng.integers(100, 280))
                    h = int(rng.integers(50, 110))
                    element = PageElement(
                        kind, Rect(int(rng.integers(32, width - w - 32)),
                                   y, w, h),
                        seed=int(rng.integers(1 << 30)))
                    elements.append(element)
                    content += len(compression.png_compress(
                        render_element_pixels(element)))
                    y += h + 10
                y += 8
        # The "next page" link the mechanical mouse clicks.
        link_y = min(y + 10, height - 20)
        elements.append(PageElement("fill", Rect(32, link_y, 90, 14),
                                    (210, 210, 240, 255)))
        elements.append(PageElement("text", Rect(36, link_y + 3, 1, 1),
                                    (0, 0, 180, 255), text="NEXT PAGE"))
        render_pixels = sum(
            e.rect.area if not e.kind.startswith("text")
            else len(e.text) * ADVANCE * GLYPH_HEIGHT
            for e in elements)
        pages.append(WebPage(index, width, height, elements, content,
                             render_pixels, image_heavy,
                             link_target=(32 + 45, link_y + 7)))
    return pages


class WebBrowserApp:
    """A Mozilla-style browser driving a window server.

    Rendering is double buffered: each page is composed into an
    offscreen pixmap and copied onscreen in one flip.  The browser also
    models the server-side processing time of parsing and laying out
    the page before pixels appear.
    """

    def __init__(self, ws: WindowServer, pages: List[WebPage],
                 parse_rate: float = 4e6, render_rate: float = 60e6):
        self.ws = ws
        self.pages = pages
        self.parse_rate = parse_rate
        self.render_rate = render_rate
        self.pages_rendered = 0

    def processing_delay(self, page: WebPage) -> float:
        """Server-side browser time before display output starts."""
        return (page.content_bytes / self.parse_rate
                + page.render_pixels / self.render_rate)

    def render_page(self, index: int) -> None:
        """Draw page *index* through the double-buffered path."""
        page = self.pages[index % len(self.pages)]
        ws = self.ws
        buffer = ws.create_pixmap(page.width, page.height,
                                  label=f"page-{page.index}")
        for element in page.elements:
            if element.kind == "fill":
                ws.fill_rect(buffer, element.rect, element.color)
            elif element.kind == "tile":
                rng = np.random.default_rng(element.seed)
                shade = int(rng.integers(225, 250))
                tile = solid_pixels(8, 8, (shade, shade, shade, 255))
                tile[::4, ::4] = (shade - 12, shade - 12, shade - 8, 255)
                ws.fill_tiled(buffer, element.rect, tile)
            elif element.kind == "text":
                ws.draw_text(buffer, element.rect.x, element.rect.y,
                             element.text, element.color)
            elif element.kind == "text_aa":
                ws.draw_text_aa(buffer, element.rect.x, element.rect.y,
                                element.text, element.color)
            else:
                pixels = render_element_pixels(element)
                ws.put_image(buffer, element.rect, pixels)
        ws.copy_area(buffer, ws.screen, buffer.bounds, 0, 0)
        ws.free_pixmap(buffer)
        self.pages_rendered += 1

    def link_position(self, index: int) -> Tuple[int, int]:
        return self.pages[index % len(self.pages)].link_target
