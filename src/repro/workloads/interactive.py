"""Interactive workloads for the scheduling/latency ablations.

The paper motivates SRSF scheduling and the real-time queue with the
case of a user interacting while bulk output is in flight (Section 5):
a keystroke echo or button press must not wait behind a half-sent
image.  This workload reproduces that scenario: a stream of large
background updates with periodic small updates issued at the cursor in
response to injected input; the measured quantity is the echo latency
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..display.xserver import WindowServer
from ..net.clock import EventLoop
from ..region import Rect

__all__ = ["TypingUnderLoadWorkload", "EchoRecord"]


@dataclass
class EchoRecord:
    """One keystroke: when it was injected and when its echo landed."""

    key_time: float
    echo_drawn_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.echo_drawn_time is None:
            return None
        return self.echo_drawn_time - self.key_time


class TypingUnderLoadWorkload:
    """Types characters into an editor while bulk images stream.

    Every ``key_interval`` the user presses a key: input is injected at
    the cursor position and a small text-echo update is drawn there.
    Concurrently, every ``image_interval`` a large image block is
    drawn elsewhere (a photo loading, a compile log, ...).  The echo
    delivery time is observed through a caller-provided probe.
    """

    def __init__(self, ws: WindowServer, loop: EventLoop,
                 inject_input: Callable[[int, int], None],
                 keys: int = 20, key_interval: float = 0.15,
                 image_interval: float = 0.10,
                 image_size: int = 192, seed: int = 7):
        self.ws = ws
        self.loop = loop
        self.inject_input = inject_input
        self.keys = keys
        self.key_interval = key_interval
        self.image_interval = image_interval
        self.image_size = image_size
        self.rng = np.random.default_rng(seed)
        self.cursor = (40, ws.screen.height - 40)
        self.records: List[EchoRecord] = []
        self._keys_sent = 0
        self._done = False

    def start(self) -> None:
        self.ws.fill_rect(self.ws.screen, self.ws.screen.bounds,
                          (250, 250, 250, 255))
        self.loop.schedule(0.01, self._bulk_tick)
        self.loop.schedule(0.02, self._key_tick)

    def _bulk_tick(self) -> None:
        if self._done:
            return
        size = self.image_size
        x = int(self.rng.integers(0, self.ws.screen.width - size))
        y = int(self.rng.integers(0, max(1, self.ws.screen.height
                                         - size - 80)))
        block = self.rng.integers(0, 256, (size, size, 4), dtype=np.uint8)
        self.ws.put_image(self.ws.screen, Rect(x, y, size, size), block)
        self.loop.schedule(self.image_interval, self._bulk_tick)

    def _key_tick(self) -> None:
        if self._keys_sent >= self.keys:
            self._done = True
            return
        record = EchoRecord(key_time=self.loop.now)
        self.records.append(record)
        cx, cy = self.cursor
        # Input first (the server marks the region real-time), then the
        # editor echoes the character next to the cursor.
        self.inject_input(cx, cy)
        ch = chr(ord("a") + self._keys_sent % 26)
        self.ws.draw_text(self.ws.screen, cx + 6 * (self._keys_sent % 30),
                          cy, ch, (10, 10, 10, 255))
        self._keys_sent += 1
        self.loop.schedule(self.key_interval, self._key_tick)

    def mark_echo_delivered(self, index: int, time: float) -> None:
        if self.records[index].echo_drawn_time is None:
            self.records[index].echo_drawn_time = time

    def latencies(self) -> List[float]:
        return [r.latency for r in self.records if r.latency is not None]
