"""Application workloads: web browsing, A/V playback, interactive use."""

from .interactive import TypingUnderLoadWorkload
from .terminal import TerminalApp
from .video import AVPlayerApp
from .web import PAGE_COUNT, WebBrowserApp, WebPage, make_page_set

__all__ = [
    "WebPage",
    "WebBrowserApp",
    "make_page_set",
    "PAGE_COUNT",
    "AVPlayerApp",
    "TypingUnderLoadWorkload",
    "TerminalApp",
]
