"""The audio/video playback workload (paper Section 8.2).

Models MPlayer playing the benchmark clip: a 34.75 s MPEG-1 file,
352x240, decoded on the server at 24 fps and displayed *full screen*
through the XVideo interface, with CD-quality stereo audio written to
the (virtual) audio device in step.  Systems with a native video path
(THINC) see YV12 frames at the driver; systems without see the window
server's rendered output like any other update — exactly the asymmetry
Figures 5–7 measure.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..audio.driver import AudioFormat, VirtualAudioDriver
from ..display.xserver import WindowServer
from ..net.clock import EventLoop
from ..region import Rect
from ..video.stream import SyntheticVideoClip

__all__ = ["AVPlayerApp"]


class AVPlayerApp:
    """An MPlayer-style audio/video player driving a window server."""

    def __init__(self, ws: WindowServer, loop: EventLoop,
                 clip: SyntheticVideoClip,
                 audio_sink=None,
                 fullscreen: bool = True,
                 dst_rect: Optional[Rect] = None,
                 max_frames: Optional[int] = None):
        self.ws = ws
        self.loop = loop
        self.clip = clip
        self.fullscreen = fullscreen
        self.dst_rect = dst_rect or Rect(0, 0, ws.screen.width,
                                         ws.screen.height)
        self.max_frames = (clip.frame_count if max_frames is None
                           else min(max_frames, clip.frame_count))
        self.audio_fmt = AudioFormat()
        self.audio = (VirtualAudioDriver(audio_sink, loop.clock,
                                         fmt=self.audio_fmt)
                      if audio_sink is not None else None)
        self.frames_put = 0
        self.stream = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._on_done: Optional[Callable[[], None]] = None
        # PCM block per frame interval (silence content is irrelevant;
        # only volume and timing matter).
        per_frame = self.audio_fmt.bytes_for(clip.frame_interval)
        self._audio_block = b"\x17\x2a" * (per_frame // 2)

    @property
    def ideal_duration(self) -> float:
        """Real-time playback length of the (possibly truncated) run."""
        return self.max_frames * self.clip.frame_interval

    def start(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Open the stream and schedule frame presentation."""
        if self.stream is not None:
            raise RuntimeError("player already started")
        self._on_done = on_done
        self.started_at = self.loop.now
        self.stream = self.ws.video_create_stream(
            "YV12", self.clip.width, self.clip.height, self.dst_rect)
        self._put_frame(0)

    def _put_frame(self, index: int) -> None:
        if index >= self.max_frames:
            self._finish()
            return
        self.ws.video_put_frame(self.stream, self.clip.yv12_frame(index))
        if self.audio is not None:
            self.audio.play(self._audio_block)
        self.frames_put += 1
        self.loop.schedule(self.clip.frame_interval,
                           lambda: self._put_frame(index + 1))

    def _finish(self) -> None:
        if self.audio is not None:
            self.audio.drain()
        self.ws.video_destroy_stream(self.stream)
        self.finished_at = self.loop.now
        if self._on_done is not None:
            self._on_done()
