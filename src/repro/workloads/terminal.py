"""A scrolling terminal workload.

The paper motivates the COPY command with "accelerating scrolling and
opaque window movement without having to resend screen data".  This
workload is the canonical producer of that pattern: a terminal emulator
appending output lines — each new line scrolls the text region up by
one line height (a self-overlapping ``copy_area``) and draws the new
text at the bottom.

On THINC the scroll crosses the wire as one 13-byte COPY plus the new
line's glyphs; on a scraper the whole text region is damaged and
re-encoded every line.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..display.font import GLYPH_HEIGHT
from ..display.xserver import WindowServer
from ..net.clock import EventLoop
from ..region import Rect

__all__ = ["TerminalApp"]

LINE_HEIGHT = GLYPH_HEIGHT + 3


class TerminalApp:
    """A terminal emulator producing output at a given line rate."""

    def __init__(self, ws: WindowServer, loop: EventLoop,
                 rect: Optional[Rect] = None,
                 bg=(12, 12, 16, 255), fg=(140, 230, 140, 255)):
        self.ws = ws
        self.loop = loop
        self.rect = rect or ws.screen.bounds
        if self.rect.height < 2 * LINE_HEIGHT:
            raise ValueError("terminal area too short for scrolling")
        self.bg = bg
        self.fg = fg
        self.rows = self.rect.height // LINE_HEIGHT
        self.lines_written = 0
        self._cursor_row = 0
        ws.fill_rect(ws.screen, self.rect, bg)

    def write_line(self, text: str) -> None:
        """Append one output line, scrolling when the screen is full."""
        if self._cursor_row >= self.rows:
            self._scroll_up()
            self._cursor_row = self.rows - 1
        y = self.rect.y + self._cursor_row * LINE_HEIGHT
        self.ws.draw_text(self.ws.screen, self.rect.x + 4, y + 2,
                          text, self.fg)
        self._cursor_row += 1
        self.lines_written += 1

    def _scroll_up(self) -> None:
        """Scroll the text region up one line (the COPY producer)."""
        src = Rect(self.rect.x, self.rect.y + LINE_HEIGHT,
                   self.rect.width, (self.rows - 1) * LINE_HEIGHT)
        self.ws.copy_area(self.ws.screen, self.ws.screen, src,
                          self.rect.x, self.rect.y)
        bottom = Rect(self.rect.x,
                      self.rect.y + (self.rows - 1) * LINE_HEIGHT,
                      self.rect.width,
                      self.rect.height - (self.rows - 1) * LINE_HEIGHT)
        self.ws.fill_rect(self.ws.screen, bottom, self.bg)

    def run_output(self, lines: List[str], interval: float,
                   on_done: Optional[Callable[[], None]] = None) -> None:
        """Emit *lines* one per *interval* on the event loop."""

        def emit(i: int) -> None:
            if i >= len(lines):
                if on_done is not None:
                    on_done()
                return
            self.write_line(lines[i])
            self.loop.schedule(interval, lambda: emit(i + 1))

        self.loop.schedule(0.0, lambda: emit(0))
