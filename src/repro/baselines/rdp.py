"""Microsoft RDP and Citrix ICA: rich low-level command protocols.

Both systems run the GUI on the server and translate application
drawing into a rich set of low-level graphics orders with client-side
caches (glyphs, brushes, bitmaps) plus bulk compression.  The paper's
findings these models encode:

* fills/text/copies are compact, images are cached-and-compressed
  bitmaps — fine for office content;
* neither has a transparent video path for MPEG-1: frames become
  ordinary bitmap updates that their compressors chew on fruitlessly
  (Figure 5: ~20-35% A/V quality), and audio is compressed to lower
  fidelity;
* for small screens, **ICA resizes on the client** — full-size data is
  sent and the weak client pays the scaling cost (its PDA quality drops
  to ~6%) — while **RDP clips**, showing only the viewport's corner;
* in WAN mode both enable more aggressive compression.
"""

from __future__ import annotations

import zlib
from typing import Tuple

from ..display.xserver import AppCommand
from .xproto import _VideoRatioCache

__all__ = ["OrdersPricer", "RDP_AUDIO_COMPRESSION", "ICA_AUDIO_COMPRESSION"]

_ORDER = 18  # one graphics order (fill, copy, glyph run header)
_ZLIB_RATE = 20e6

# Audio is recompressed to a lossy stream (the "lower audio fidelity
# due to compression" of Section 8.3).
RDP_AUDIO_COMPRESSION = 0.25
ICA_AUDIO_COMPRESSION = 0.20


class OrdersPricer:
    """Shared pricer for the RDP/ICA graphics-order protocols.

    ``flavor`` tweaks the constants: ICA's compressor is slightly more
    effective, RDP's slightly cheaper.
    """

    def __init__(self, flavor: str = "rdp", wan_mode: bool = False):
        if flavor not in ("rdp", "ica"):
            raise ValueError(f"unknown flavor {flavor!r}")
        self.flavor = flavor
        self.wan_mode = wan_mode
        self.level = 9 if wan_mode else 6
        self.image_factor = 0.9 if flavor == "ica" else 1.0
        self._video_cache = _VideoRatioCache()
        self._bitmap_cache_hits = 0
        self._seen_image_rects = set()

    def _bitmap(self, ws, rect) -> Tuple[int, float]:
        pixels = ws.screen.fb.read_pixels(rect)
        # (bitmap source is always the screen for order-based systems)
        data = pixels[..., :3].tobytes()
        # Real bitmap caches key on content, not geometry.
        key = (rect.as_tuple(), zlib.adler32(data))
        payload = int(len(zlib.compress(data, self.level))
                      * self.image_factor) + _ORDER
        # Client bitmap cache: an identical-geometry redraw hits cache.
        if key in self._seen_image_rects:
            self._bitmap_cache_hits += 1
            payload = max(_ORDER, payload // 4)
        else:
            self._seen_image_rects.add(key)
        return payload, len(data) / _ZLIB_RATE

    def __call__(self, command: AppCommand, server) -> Tuple[int, float]:
        name = command.name
        rect = command.rect
        if name == "copy_area":
            src_id = command.payload[0]
            if src_id in server.ws.pixmaps:
                # Offscreen content reaching the screen: these systems
                # ignored the offscreen drawing, so the result ships as
                # a compressed bitmap (read from the screen, where the
                # copy has already landed).
                return self._bitmap(server.ws, rect)
            return _ORDER, 0.0  # ScreenBlt order
        if name in ("fill_rect", "fill_tiled", "video_setup",
                    "video_move", "video_teardown", "draw_line",
                    "draw_polyline", "draw_rect_outline"):
            return _ORDER, 0.0
        if name in ("draw_text", "draw_text_aa"):
            text = command.payload if isinstance(command.payload, str) else ""
            # Glyph-cache protocol: indices after first use.
            return _ORDER + 2 * max(len(text), 1), 0.0
        if name in ("put_image", "fill_stipple", "composite"):
            return self._bitmap(server.ws, rect)  # onscreen only
        if name == "video_put":
            pixels = server.ws.screen.fb.read_pixels(rect)
            ratio = self._video_cache.ratio(
                (self.flavor, command.payload, self.wan_mode), pixels)
            nbytes = int(rect.area * 3 * ratio * self.image_factor) + _ORDER
            return nbytes, rect.area * 3 / _ZLIB_RATE
        return _ORDER, 0.0
