"""Sun Ray: a low-level command protocol without THINC's translation.

Sun Ray's command set inspired THINC's (the paper adopts a similar
five-command vocabulary), but Sun Ray intercepts inside a customised X
server and, crucially, *lacks the translation layer*: offscreen drawing
is ignored, so when content reaches the screen Sun Ray sees only pixel
data and must **infer** commands from it — sampling regions to detect
solid fills and falling back to raw pixels (with adaptive compression
on slow links) everywhere else.  That inference is the overhead the
Figure 2/3 Sun Ray-vs-THINC comparison isolates.  Sun Ray has audio
support, a push model, and no small-screen resizing.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..protocol import compression
from .base import Encoder

__all__ = ["SunRayEncoder"]

_SCAN_RATE = 400e6  # uniformity sampling is a cheap pass
_ZLIB_RATE = 18e6

SFILL_WIRE = 16  # a detected solid fill costs a fixed small message


class SunRayEncoder(Encoder):
    """Pixel-inference encoder: detect solid fills, else ship pixels.

    ``adaptive=True`` (slow links) enables DEFLATE on the raw pixel
    path, matching the paper's observation that Sun Ray's data volume
    drops sharply from LAN to WAN as CPU-heavier schemes kick in.
    """

    def __init__(self, adaptive: bool = False):
        self.adaptive = adaptive
        self.name = "sunray-adaptive" if adaptive else "sunray"

    def _uniform(self, pixels: np.ndarray) -> bool:
        first = pixels.reshape(-1, pixels.shape[-1])[0]
        return bool(np.all(pixels == first))

    TILE = 64

    def encode_size(self, pixels: np.ndarray) -> int:
        """Sample 64x64 regions: solid ones become fills, the rest
        raw pixel data (DEFLATE-compressed in the adaptive profile)."""
        h, w = pixels.shape[:2]
        total = 0
        for y in range(0, h, self.TILE):
            for x in range(0, w, self.TILE):
                tile = pixels[y : y + self.TILE, x : x + self.TILE]
                if self._uniform(tile):
                    total += SFILL_WIRE
                elif self.adaptive:
                    total += len(zlib.compress(tile.tobytes(), 6)) + 8
                else:
                    total += min(compression.rle_size(tile),
                                 tile.nbytes + 16)
        return total

    def cpu_cost(self, pixels: np.ndarray) -> float:
        cost = pixels.nbytes / _SCAN_RATE  # inference sampling pass
        if self._uniform(pixels):
            return cost
        if self.adaptive:
            cost += pixels.nbytes / _ZLIB_RATE
        else:
            cost += pixels.nbytes / 220e6
        return cost
