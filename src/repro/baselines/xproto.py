"""X: high-level application command forwarding over ssh -C.

The oldest architecture in the comparison: application display commands
travel to a window server running *on the client*.  High-level requests
are compact for fills and text, but images ship as raw XPutImage pixels
(the ssh tunnel's DEFLATE is the only compression), there is no video
path (MPlayer's x11 output blits full frames as images), and — the WAN
killer — the tight coupling between toolkit and window server costs
synchronous round trips throughout a page render, which is why X slows
~2.5x from LAN to WAN in Figure 2.
"""

from __future__ import annotations

import zlib
from typing import Tuple

import numpy as np

from ..display.xserver import AppCommand
from ..region import Rect

__all__ = ["price_x_command", "X_SYNC_EVERY", "SSH_STREAM_COMPRESSION"]

# One synchronous request (geometry queries, atoms, GCs, ...) for
# roughly every this many drawing commands.
X_SYNC_EVERY = 12

# ssh -C compresses the whole stream; protocol framing and small
# requests deflate well, but image payloads are priced by actually
# deflating them, so the factor applies to protocol bytes only.
SSH_STREAM_COMPRESSION = 0.85

_SMALL_REQUEST = 28  # fills, copies, GC tweaks
_ZLIB_RATE = 12e6  # ssh -C DEFLATE (level 6) on the era's CPU

# Per-stream cache of measured video-frame compression ratios so that
# pricing video does not deflate every frame (they are statistically
# identical); refreshed every _RATIO_REFRESH frames.
_RATIO_REFRESH = 16


class _VideoRatioCache:
    def __init__(self) -> None:
        self._ratios = {}
        self._counts = {}

    def ratio(self, key, pixels: np.ndarray) -> float:
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        if key not in self._ratios or count % _RATIO_REFRESH == 0:
            data = pixels[..., :3].tobytes()
            self._ratios[key] = (len(zlib.compress(data, 6)) + 8) / len(data)
        return self._ratios[key]


_video_cache = _VideoRatioCache()


def _image_bytes(drawable, rect: Rect, level: int = 6) -> Tuple[int, float]:
    """XPutImage cost: 24-bit pixels through the ssh tunnel's DEFLATE.

    Reads back the just-rendered content of the target drawable, which
    for X-family protocols may be an offscreen pixmap — offscreen
    drawing crosses the network too, since the real X server lives on
    the client.
    """
    pixels = drawable.fb.read_pixels(rect)[..., :3]
    data = pixels.tobytes()
    return len(zlib.compress(data, level)) + _SMALL_REQUEST, \
        len(data) / _ZLIB_RATE


def price_x_command(command: AppCommand, server) -> Tuple[int, float]:
    """(wire bytes, server CPU seconds) for one X-forwarded command."""
    name = command.name
    rect = command.rect
    factor = SSH_STREAM_COMPRESSION
    if name in ("fill_rect", "copy_area", "video_setup", "video_move",
                "video_teardown", "draw_line", "draw_polyline",
                "draw_rect_outline"):
        return int(_SMALL_REQUEST * factor), 0.0
    if name == "fill_tiled":
        # The tile pixmap is uploaded once and cached client-side;
        # steady-state cost is one small request.
        return int((_SMALL_REQUEST + 16) * factor), 0.0
    if name in ("draw_text", "draw_text_aa"):
        # RENDER glyphs upload once into a client-side cache; steady
        # state is indices, slightly wider for the AA path.
        text = command.payload if isinstance(command.payload, str) else ""
        per_glyph = 3 if name == "draw_text_aa" else 2
        return int((_SMALL_REQUEST + per_glyph * max(len(text), 1))
                   * factor), 0.0
    if name in ("put_image", "fill_stipple", "composite"):
        return _image_bytes(command.drawable, rect)
    if name == "video_put":
        # No XVideo over the wire: the player blits dst-sized RGB.
        npixels = rect.area
        key = ("x", command.payload)
        sample = server.ws.screen.fb.read_pixels(rect)
        ratio = _video_cache.ratio(key, sample)
        nbytes = int(npixels * 3 * ratio) + _SMALL_REQUEST
        return nbytes, npixels * 3 / _ZLIB_RATE
    # Unknown commands cost a small request.
    return _SMALL_REQUEST, 0.0
