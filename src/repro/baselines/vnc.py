"""VNC: client-pull screen scraping with hextile-style encoding.

Architecture per the paper: everything is reduced to raw pixels, read
back from the framebuffer and compressed ("screen scraping"); the
*client* drives update delivery by requesting each update — so every
update costs at least half a round trip, and video frames are generated
far faster than requests can return in a WAN (the Figure 5 collapse).
VNC has no audio support.  Its adaptive encodings switch to heavier
compression on slow links.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..protocol import compression
from .base import Encoder

__all__ = ["VncEncoder"]

# Rough software codec throughputs (bytes/sec) for CPU-cost accounting,
# calibrated to a ~1 GHz server core of the paper's era.
_RLE_RATE = 220e6
_ZLIB_FAST_RATE = 30e6
_ZLIB_BEST_RATE = 12e6


class VncEncoder(Encoder):
    """Hextile-flavoured encoder: RLE, with zlib on slow links.

    In LAN mode VNC favours cheap encodings (RLE keeps the CPU free and
    the LAN absorbs the bytes).  In WAN mode (``adaptive=True``) it
    spends CPU on DEFLATE to cut the data — the adaptive behaviour the
    paper observes in Figure 3.
    """

    def __init__(self, adaptive: bool = False):
        self.adaptive = adaptive
        self.name = "vnc-adaptive" if adaptive else "vnc-rle"

    TILE = 32

    def encode_size(self, pixels: np.ndarray) -> int:
        """Per-tile best-of encoding, like hextile/ZRLE subrectangles.

        The LAN profile is hextile: RLE with raw fallback, no entropy
        coder (cheap CPU, the LAN absorbs the bytes).  The adaptive
        slow-link profile adds DEFLATE per tile (ZRLE-style).
        """
        h, w = pixels.shape[:2]
        total = 0
        for y in range(0, h, self.TILE):
            for x in range(0, w, self.TILE):
                tile = pixels[y : y + self.TILE, x : x + self.TILE]
                best = min(compression.rle_size(tile), tile.nbytes + 2)
                if self.adaptive:
                    deflated = len(zlib.compress(tile.tobytes(), 6)) + 2
                    best = min(best, deflated)
                total += best + 2
        return total

    def cpu_cost(self, pixels: np.ndarray) -> float:
        cost = pixels.nbytes / _RLE_RATE
        if self.adaptive:
            cost += pixels.nbytes / _ZLIB_BEST_RATE
        return cost
