"""Behavioural models of the thin-client systems THINC is compared to."""

from .base import (BaselineClient, ClientCosts, Encoder, ForwardServer,
                   ScrapeServer, quantize_8bit)
from .gotomypc import MIN_VIEWPORT, RELAY_EXTRA_RTT, GoToMyPCEncoder
from .localpc import LocalPCModel
from .nx import NX_SYNC_EVERY, NXPricer
from .rdp import (ICA_AUDIO_COMPRESSION, RDP_AUDIO_COMPRESSION, OrdersPricer)
from .sunray import SunRayEncoder
from .vnc import VncEncoder
from .xproto import SSH_STREAM_COMPRESSION, X_SYNC_EVERY, price_x_command

__all__ = [
    "Encoder",
    "ScrapeServer",
    "ForwardServer",
    "BaselineClient",
    "ClientCosts",
    "quantize_8bit",
    "VncEncoder",
    "GoToMyPCEncoder",
    "RELAY_EXTRA_RTT",
    "MIN_VIEWPORT",
    "SunRayEncoder",
    "price_x_command",
    "X_SYNC_EVERY",
    "SSH_STREAM_COMPRESSION",
    "NXPricer",
    "NX_SYNC_EVERY",
    "OrdersPricer",
    "RDP_AUDIO_COMPRESSION",
    "ICA_AUDIO_COMPRESSION",
    "LocalPCModel",
]
