"""NX: an X proxy with aggressive compression and round-trip removal.

NoMachine's NX keeps X's high-level command stream but interposes a
proxy pair that (a) answers almost all synchronous requests locally,
eliminating the round trips that sink plain X in WANs, (b) applies
differential encoding and a protocol-aware cache so repeated content is
nearly free, and (c) compresses images with a proper image codec rather
than a byte-stream DEFLATE.  In its WAN profile it trades more CPU for
still-smaller output — in Figure 3 NX is the only thin client to beat
THINC on per-page data, while Figure 5 shows its video quality is the
*worst* on the LAN (12%): expensive codecs cannot keep up with a frame
stream they cannot recognise as video.
"""

from __future__ import annotations

from typing import Tuple

from ..display.xserver import AppCommand
from ..protocol import compression
from .xproto import _SMALL_REQUEST, _VideoRatioCache

__all__ = ["NXPricer", "NX_SYNC_EVERY"]

# The proxy answers nearly everything locally; a rare cache miss still
# costs a round trip.
NX_SYNC_EVERY = 150

_IMAGE_RATE_LAN = 6.5e6  # PNG-class codec throughput (PIII-era)
_IMAGE_RATE_WAN = 5e6  # WAN profile: maximum-effort settings


class NXPricer:
    """Prices X commands the way the NX proxy re-encodes them."""

    def __init__(self, wan_mode: bool = False):
        self.wan_mode = wan_mode
        # Differential protocol encoding shrinks the small-request
        # stream dramatically (headers repeat almost verbatim).
        self.request_factor = 0.25
        self._video_cache = _VideoRatioCache()

    def _image(self, drawable, rect) -> Tuple[int, float]:
        pixels = drawable.fb.read_pixels(rect)
        level = 9 if self.wan_mode else 6
        payload = len(compression.png_compress(pixels[..., :3], level=level))
        rate = _IMAGE_RATE_WAN if self.wan_mode else _IMAGE_RATE_LAN
        return payload + 8, pixels.nbytes / rate

    def __call__(self, command: AppCommand, server) -> Tuple[int, float]:
        name = command.name
        rect = command.rect
        small = max(2, int(_SMALL_REQUEST * self.request_factor))
        if name in ("fill_rect", "copy_area", "fill_tiled", "video_setup",
                    "video_move", "video_teardown", "draw_line",
                    "draw_polyline", "draw_rect_outline"):
            return small, 0.0
        if name in ("draw_text", "draw_text_aa"):
            text = command.payload if isinstance(command.payload, str) else ""
            # Glyph stream after the NX text cache: ~1 byte per glyph.
            return small + max(len(text), 1), 0.0
        if name in ("put_image", "fill_stipple", "composite"):
            return self._image(command.drawable, rect)
        if name == "video_put":
            pixels = server.ws.screen.fb.read_pixels(rect)
            ratio = self._video_cache.ratio(("nx", command.payload,
                                             self.wan_mode), pixels)
            # NX recompresses each frame as an image: effective but
            # extremely CPU-hungry at video rates.
            rate = _IMAGE_RATE_WAN if self.wan_mode else _IMAGE_RATE_LAN
            nbytes = int(rect.area * 3 * ratio * 0.8) + small
            return nbytes, rect.area * 3 / rate
        return small, 0.0
