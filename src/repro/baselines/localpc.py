"""The local PC baseline: applications running on the client itself.

The paper's control case — today's prevalent desktop model.  No remote
display protocol exists; what crosses the network is application
*content* (HTTP page bytes, the compressed MPEG stream), and rendering
happens on the client's own, much slower CPU.  This is why the local PC
is the most bandwidth-efficient platform in Figures 3 and 6 while
THINC still beats its page latency by >60% (Figure 2): the thin server
renders pages faster than a 450 MHz client can.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.link import LinkParams

__all__ = ["LocalPCModel"]


@dataclass
class LocalPCModel:
    """Analytic model of local execution on the client machine."""

    # Client CPU relative to the thin-client server (450 MHz PII vs a
    # dual 933 MHz PIII Netfinity).
    cpu_slowdown: float = 2.2
    # Page rendering throughput of the *server-class* machine, pixels/s
    # (layout + raster for mixed content).
    render_rate: float = 60e6
    # HTML/CSS/JS parse cost per content byte on the server-class CPU.
    parse_rate: float = 4e6
    # The benchmark clip's encoded bitrate: the paper measures the local
    # PC at <6 MB over the 34.75 s clip, about 1.2 Mbps.
    video_bitrate_bps: float = 1.2e6

    def page_metrics(self, content_bytes: int, render_pixels: int,
                     link: LinkParams):
        """(latency seconds, bytes transferred) for one page load.

        Latency = request RTT + content transfer + client-side parse and
        render at the slow client's speed.
        """
        transfer = content_bytes / link.throughput
        compute = (content_bytes / self.parse_rate
                   + render_pixels / self.render_rate) * self.cpu_slowdown
        latency = link.effective_rtt + transfer + compute
        return latency, content_bytes

    def video_metrics(self, duration: float, link: LinkParams):
        """(A/V quality, bytes transferred) for local playback.

        The client streams the compressed file and decodes locally; as
        long as the link carries the encoded bitrate (every tested
        network does), playback is perfect.
        """
        nbytes = int(self.video_bitrate_bps / 8 * duration)
        needed = self.video_bitrate_bps / 8
        quality = min(1.0, link.throughput / needed)
        return quality, nbytes
