"""GoToMyPC: relay-hosted, 8-bit, heavily compressed screen scraping.

Per the paper: a client-pull pixel system limited to 8-bit colour that
routes every byte through an intermediate hosted server (adding ~70 ms
of round-trip), spends a great deal of CPU on complex compression (it
sends the *least* data of all systems in Figure 3 while taking almost
three seconds per page in Figure 2), has no audio support, and resizes
on the client for small screens with a minimum 640x480 viewport.
"""

from __future__ import annotations

import zlib

import numpy as np

from .base import Encoder

__all__ = ["GoToMyPCEncoder", "RELAY_EXTRA_RTT", "MIN_VIEWPORT"]

# Measured in the paper: ~70 ms RTT through the hosted relay.
RELAY_EXTRA_RTT = 0.070
# GoToMyPC cannot render viewports below 640x480.
MIN_VIEWPORT = (640, 480)

# The "complex compression algorithms ... at the expense of high server
# utilization": model as best-effort DEFLATE at a throughput far below
# the cheap codecs.
_HEAVY_ZLIB_RATE = 1.3e6


class GoToMyPCEncoder(Encoder):
    """Maximum-effort compression of already-quantised 8-bit pixels."""

    name = "gotomypc"

    def encode_size(self, pixels: np.ndarray) -> int:
        # 8-bit colour: one byte per pixel on the wire before DEFLATE.
        packed = (
            (pixels[..., 0] & 0xE0)
            | ((pixels[..., 1] & 0xE0) >> 3)
            | ((pixels[..., 2] & 0xC0) >> 6)
        ).astype(np.uint8)
        return len(zlib.compress(packed.tobytes(), 9)) + 8

    def cpu_cost(self, pixels: np.ndarray) -> float:
        return pixels.nbytes / _HEAVY_ZLIB_RATE
