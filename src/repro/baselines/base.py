"""Shared machinery for the baseline thin-client systems.

The paper compares THINC against seven commercial/open systems
(Section 8).  Each baseline here is a behavioural model built from the
architectural properties the paper attributes to it — where display
commands are intercepted, what travels on the wire, push vs pull, and
where resizing runs.  Two families cover all of them:

* **screen scrapers** (:class:`ScrapeServer`): intercept nothing but
  final pixels.  A damage region accumulates; at send time the server
  reads the *current* framebuffer content under the damage and encodes
  it — which is precisely why scrapers drop video frames for free but
  must compress bulk pixels for everything (VNC, GoToMyPC, and Sun
  Ray's no-translation pixel path).
* **command forwarders** (:class:`ForwardServer`): intercept
  application-level display commands and re-encode them in a remote
  protocol (X, NX, RDP, ICA).  Costs are computed from the *actual*
  command payloads; synchronous round trips model X's client/server
  chatter.

Baseline clients account bytes, timing, video-frame delivery (updates
are tagged with the video frame that produced them) and modelled client
processing time.  They do not maintain a pixel-exact framebuffer — the
paper measured the closed systems from network traces, and so do we.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..display.xserver import AppCommand, WindowServer
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..region import Rect, Region

__all__ = ["Encoder", "EncodedUpdate", "UpdateWire", "BaselineClient",
           "ScrapeServer", "ForwardServer", "quantize_8bit",
           "FLUSH_INTERVAL"]

FLUSH_INTERVAL = 0.002

_UPDATE = struct.Struct(">BHHHHII")  # kind, rect, frame_tag, payload_len

KIND_PIXELS = 1
KIND_COMMAND = 2
KIND_AUDIO = 3
KIND_INPUT = 4
KIND_REQUEST = 5


def quantize_8bit(pixels: np.ndarray) -> np.ndarray:
    """Reduce RGBA to a 3-3-2 palette (GoToMyPC's 8-bit colour)."""
    q = pixels.copy()
    q[..., 0] &= 0xE0
    q[..., 1] &= 0xE0
    q[..., 2] &= 0xC0
    q[..., 3] = 255
    return q


class Encoder:
    """Turns a pixel block into wire bytes; pluggable per system."""

    name = "raw"

    def encode_size(self, pixels: np.ndarray) -> int:
        """Bytes this encoder produces for the block."""
        return int(pixels.nbytes)

    def cpu_cost(self, pixels: np.ndarray) -> float:
        """Server CPU seconds consumed encoding the block."""
        return 0.0


@dataclass
class EncodedUpdate:
    """One display update ready for the wire."""

    rect: Rect
    payload: int  # encoded payload size in bytes
    frame_tag: int = 0  # video frame that produced it (0 = not video)
    kind: int = KIND_PIXELS

    def wire_bytes(self) -> bytes:
        header = _UPDATE.pack(self.kind, *self.rect.as_tuple(),
                              self.frame_tag, self.payload)
        return header + b"\x00" * self.payload

    def wire_size(self) -> int:
        return _UPDATE.size + self.payload


class UpdateWire:
    """Incremental parser for the baseline wire format."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> List[Tuple[int, Rect, int, int]]:
        self._buf.extend(chunk)
        out = []
        offset = 0
        while True:
            if offset + _UPDATE.size > len(self._buf):
                break
            kind, x, y, w, h, tag, plen = _UPDATE.unpack_from(self._buf,
                                                              offset)
            end = offset + _UPDATE.size + plen
            if end > len(self._buf):
                break
            out.append((kind, Rect(x, y, w, h), tag, plen))
            offset = end
        del self._buf[:offset]
        return out


@dataclass
class ClientCosts:
    """Client processing model for a baseline platform."""

    per_byte: float = 3e-8  # parse + decompress
    per_pixel: float = 3e-9  # draw
    per_resize_pixel: float = 0.0  # client-side resize work (ICA, GoToMyPC)
    fixed: float = 2e-6


class BaselineClient:
    """Accounts received updates; optionally drives a pull loop."""

    def __init__(self, loop: EventLoop, connection: Connection,
                 pull: bool = False, costs: Optional[ClientCosts] = None,
                 resize_factor: float = 1.0):
        self.loop = loop
        self.connection = connection
        self.pull = pull
        self.costs = costs or ClientCosts()
        # >1 means the client scales each update down/up locally.
        self.resize_factor = resize_factor
        self.wire = UpdateWire()
        self.stats = {
            "bytes_received": 0,
            "updates": 0,
            "last_update_time": 0.0,
            "processing_time": 0.0,
            "audio_chunks": 0,
        }
        self.audio_arrivals: List[Tuple[float, float]] = []
        self.video_frames_seen: set = set()
        self.last_video_frame_time: Optional[float] = None
        self.first_video_frame_time: Optional[float] = None
        connection.down.connect(self._on_data)
        if pull:
            self._request_updates()

    # -- client-to-server ---------------------------------------------------

    def _request_updates(self) -> None:
        msg = _UPDATE.pack(KIND_REQUEST, 0, 0, 0, 0, 0, 0)
        if len(msg) <= self.connection.up.writable_bytes():
            self.connection.up.write(msg)

    def send_input(self, kind: str, x: int, y: int) -> None:
        # width/height of 1: an empty rect would canonicalise away x/y.
        msg = _UPDATE.pack(KIND_INPUT, x, y, 1, 1, 0, 0)
        self.connection.up.write(msg)

    # -- receive path ----------------------------------------------------------

    def _on_data(self, chunk: bytes) -> None:
        self.stats["bytes_received"] += len(chunk)
        got_update = False
        for kind, rect, tag, plen in self.wire.feed(chunk):
            now = self.loop.now
            if kind == KIND_AUDIO:
                self.stats["audio_chunks"] += 1
                # tag carries the server timestamp in microseconds.
                self.audio_arrivals.append((tag / 1e6, now))
                continue
            self.stats["updates"] += 1
            self.stats["last_update_time"] = now
            npixels = rect.area
            cost = (self.costs.fixed + plen * self.costs.per_byte
                    + npixels * self.costs.per_pixel
                    + npixels * self.costs.per_resize_pixel)
            self.stats["processing_time"] += cost
            if tag:
                self.video_frames_seen.add(tag)
                if self.first_video_frame_time is None:
                    self.first_video_frame_time = now
                self.last_video_frame_time = now
            got_update = True
        if got_update and self.pull:
            # Client-pull: ask for the next update only after receiving
            # this one — the round trip the paper blames for VNC's WAN
            # video collapse.
            self._request_updates()

    # -- analysis ------------------------------------------------------------

    def done_time_with_processing(self) -> float:
        return self.stats["last_update_time"] + self.stats["processing_time"]


class _ServerCore:
    """Common flush scheduling + upstream parsing for baseline servers."""

    def __init__(self, loop: EventLoop, connection: Connection):
        self.loop = loop
        self.connection = connection
        self._outbox: Deque[bytes] = deque()
        self._flush_scheduled = False
        self.bytes_sent = 0
        self.server_cpu_time = 0.0
        # Encoding is not free: a single server CPU pipeline serialises
        # compression work, so expensive codecs delay output (the
        # GoToMyPC effect of Figure 2).
        self._cpu_free_at = 0.0
        self.input_handler: Optional[Callable] = None
        self._upstream = UpdateWire()
        connection.up.connect(self._on_upstream)

    def charge_cpu(self, seconds: float) -> float:
        """Account CPU work; returns the completion time of the job."""
        start = max(self.loop.now, self._cpu_free_at)
        self._cpu_free_at = start + seconds
        self.server_cpu_time += seconds
        return self._cpu_free_at

    def enqueue_after_cpu(self, data: bytes, cpu: float) -> None:
        """Enqueue wire data once the server CPU has produced it."""
        done = self.charge_cpu(cpu)
        delay = done - self.loop.now
        if delay <= 0:
            self.enqueue(data)
        else:
            self.loop.schedule(delay, lambda: self.enqueue(data))

    def _on_upstream(self, chunk: bytes) -> None:
        for kind, rect, tag, plen in self._upstream.feed(chunk):
            if kind == KIND_INPUT:
                if self.input_handler is not None:
                    self.input_handler(rect.x, rect.y)
            elif kind == KIND_REQUEST:
                self.on_update_request()

    def on_update_request(self) -> None:
        """Pull-mode hook; push-mode servers ignore requests."""

    def enqueue(self, data: bytes) -> None:
        self._outbox.append(data)
        self.kick()

    def kick(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.schedule(0.0, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        writer = self.connection.down
        self.fill_outbox(writer.writable_bytes() - self._outbox_bytes())
        while self._outbox:
            data = self._outbox[0]
            room = writer.writable_bytes()
            if len(data) > room:
                if room > 64:
                    # Ship a prefix; baselines account bytes, not pixels.
                    writer.write(data[:room])
                    self._outbox[0] = data[room:]
                    self.bytes_sent += room
                break
            writer.write(data)
            self._outbox.popleft()
            self.bytes_sent += len(data)
        if self._outbox or self.has_pending():
            self._flush_scheduled = True
            self.loop.schedule(FLUSH_INTERVAL, self._flush)

    def _outbox_bytes(self) -> int:
        return sum(len(d) for d in self._outbox)

    def fill_outbox(self, budget: int) -> None:
        """Subclass hook: move pending work into the outbox."""

    def has_pending(self) -> bool:
        return False

    def submit_audio(self, timestamp: float, samples: bytes,
                     compression_factor: float = 1.0) -> None:
        """Ship an audio chunk (systems without audio never call this)."""
        payload = max(1, int(len(samples) * compression_factor))
        header = _UPDATE.pack(KIND_AUDIO, 0, 0, 0, 0,
                              min(int(timestamp * 1e6), 0xFFFFFFFF), payload)
        self.enqueue(header + b"\x00" * payload)


class ScrapeServer(_ServerCore):
    """A damage-driven pixel server (the screen-scraping family).

    The window server is observed only through a damage listener: every
    onscreen change adds its rectangle to the damage region.  When the
    server sends (push mode: continuously; pull mode: on request), it
    reads the *current* pixels under the damage from the server
    framebuffer, encodes them, and clears the damage.  Stale content is
    therefore never transmitted — and neither is any drawing semantics.
    """

    def __init__(self, loop: EventLoop, connection: Connection,
                 window_server: WindowServer, encoder: Encoder,
                 pull: bool = False, color_depth: int = 24,
                 viewport: Optional[Tuple[int, int]] = None,
                 resize_mode: str = "none",
                 max_update_bytes: int = 1 << 20):
        super().__init__(loop, connection)
        self.ws = window_server
        self.encoder = encoder
        self.pull = pull
        self.color_depth = color_depth
        self.viewport = viewport
        self.resize_mode = resize_mode  # "none" | "clip" | "server" | "client"
        self.max_update_bytes = max_update_bytes
        self.damage = Region()
        self._damage_tags: Dict[Tuple[int, int, int, int], int] = {}
        self._request_outstanding = not pull  # push: always allowed
        window_server.add_listener(self)
        window_server.driver = _DamageTap(self)

    # -- damage capture (driver level, semantics discarded) ---------------------

    def add_damage(self, rect: Rect, frame_tag: int = 0) -> None:
        if self.resize_mode == "clip" and self.viewport is not None:
            rect = rect.intersect(Rect(0, 0, *self.viewport))
        if rect.empty:
            return
        self.damage.add(rect)
        if frame_tag:
            self._damage_tags[rect.as_tuple()] = frame_tag
        self.kick()

    def on_app_command(self, command: AppCommand) -> None:
        # Scrapers see nothing at the app level; damage comes from the
        # driver tap.  (Listener registration keeps op counters honest.)

        return

    # -- sending ----------------------------------------------------------------

    def on_update_request(self) -> None:
        self._request_outstanding = True
        self.kick()

    def has_pending(self) -> bool:
        return bool(self.damage) and self._request_outstanding

    def fill_outbox(self, budget: int) -> None:
        if not self._request_outstanding or self.damage.is_empty:
            return
        if budget <= 0:
            return
        if self._outbox_bytes() > 0:
            # One update burst at a time: re-encoding the (refreshed)
            # damage while the previous encoding still drains would put
            # the same screen area on the wire twice.
            return
        sent_any = False
        remaining = Region()
        consumed = 0
        for rect in list(self.damage):
            if consumed >= budget or consumed >= self.max_update_bytes:
                remaining.add(rect)
                continue
            update, cpu = self._encode_rect(rect)
            done = self.charge_cpu(cpu)
            delay = done - self.loop.now
            if delay <= 0:
                self.enqueue_update(update)
            else:
                self.loop.schedule(
                    delay, lambda u=update: self.enqueue_update(u) or
                    self.kick())
            consumed += update.wire_size()
            sent_any = True
        self.damage = remaining
        if sent_any and self.pull:
            # One update burst per request.
            self._request_outstanding = False

    def enqueue_update(self, update: EncodedUpdate) -> None:
        self._outbox.append(update.wire_bytes())

    def _encode_rect(self, rect: Rect):
        pixels = self.ws.screen.fb.read_pixels(rect)
        if self.color_depth == 8:
            pixels = quantize_8bit(pixels)
        out_rect = rect
        if self.resize_mode == "server" and self.viewport is not None:
            from ..core.resize import resample, scale_rect

            sx = self.viewport[0] / self.ws.screen.width
            sy = self.viewport[1] / self.ws.screen.height
            out_rect = scale_rect(rect, sx, sy)
            pixels = resample(pixels, out_rect.width, out_rect.height)
        payload = self.encoder.encode_size(pixels)
        cpu = self.encoder.cpu_cost(pixels)
        tag = self._damage_tags.pop(rect.as_tuple(), 0)
        if not tag:
            # A damage fragment inside a video area inherits its tag.
            for key, value in list(self._damage_tags.items()):
                if Rect(*key).contains(rect):
                    tag = value
                    break
        return EncodedUpdate(out_rect, payload, frame_tag=tag), cpu


class _DamageTap:
    """A DisplayDriver that converts driver calls into damage."""

    def __init__(self, server: ScrapeServer):
        self.server = server

    def _dmg(self, drawable, rect):
        if drawable.onscreen and rect:
            self.server.add_damage(rect)

    def solid_fill(self, drawable, rect, color):
        self._dmg(drawable, rect)

    def pattern_fill(self, drawable, rect, tile, origin):
        self._dmg(drawable, rect)

    def bitmap_fill(self, drawable, rect, mask, fg, bg):
        self._dmg(drawable, rect)

    def put_image(self, drawable, rect, pixels):
        self._dmg(drawable, rect)

    def composite(self, drawable, rect, pixels, operator):
        self._dmg(drawable, rect)

    def copy_area(self, src, dst, src_rect, dst_x, dst_y):
        if dst.onscreen:
            self.server.add_damage(Rect(dst_x, dst_y, src_rect.width,
                                        src_rect.height))

    def destroy_drawable(self, drawable):
        pass

    def video_setup(self, stream):
        pass

    def video_put(self, stream, yuv_planes, dst_rect):
        # Scrapers cannot distinguish video from ordinary updates
        # (the paper's point); the tag exists only for *measurement*.
        self.server.add_damage(dst_rect, frame_tag=stream.frames_put)

    def video_move(self, stream, dst_rect):
        pass

    def video_teardown(self, stream):
        pass

    def input_event(self, event):
        pass


class ForwardServer(_ServerCore):
    """A command-forwarding server (X / NX / RDP / ICA family).

    Intercepts application-level display commands from the window
    server, prices each in its remote protocol, and pushes them.  A
    ``sync_every`` of N injects a synchronous round trip after every N
    commands — the client/server coupling that hurts X in WANs.
    """

    def __init__(self, loop: EventLoop, connection: Connection,
                 window_server: WindowServer,
                 price: Callable[[AppCommand, "ForwardServer"], Tuple[int, float]],
                 sync_every: int = 0,
                 stream_compression: float = 1.0,
                 viewport: Optional[Tuple[int, int]] = None,
                 resize_mode: str = "none",
                 forward_offscreen: bool = False):
        super().__init__(loop, connection)
        self.ws = window_server
        self.price = price
        self.sync_every = sync_every
        self.stream_compression = stream_compression
        self.viewport = viewport
        self.resize_mode = resize_mode
        # X-family protocols run the window server on the client, so
        # offscreen drawing crosses the network too; GDI-order systems
        # (RDP/ICA) see only what reaches the screen.
        self.forward_offscreen = forward_offscreen
        self._since_sync = 0
        self._sync_until = 0.0
        self.commands_seen = 0
        self.sync_round_trips = 0
        window_server.add_listener(self)

    def on_app_command(self, command: AppCommand) -> None:
        if command.rect.empty:
            return
        if not command.onscreen and not self.forward_offscreen:
            return
        if self.resize_mode == "clip" and self.viewport is not None \
                and command.onscreen:
            if not command.rect.overlaps(Rect(0, 0, *self.viewport)):
                return
        self.commands_seen += 1
        payload, cpu = self.price(command, self)
        payload = max(1, int(payload * self.stream_compression))
        tag = 0
        if command.name == "video_put":
            tag = self.ws.video_streams[command.payload].frames_put
        update = EncodedUpdate(command.rect, payload, frame_tag=tag,
                               kind=KIND_COMMAND)
        self._enqueue_with_sync(update, cpu)

    def _enqueue_with_sync(self, update: EncodedUpdate,
                           cpu: float = 0.0) -> None:
        data = update.wire_bytes()
        if self.sync_every:
            self._since_sync += 1
            if self._since_sync >= self.sync_every:
                self._since_sync = 0
                self.sync_round_trips += 1
                # A synchronous request: the server-side library blocks
                # for a full RTT before issuing further output.
                delay = max(self._sync_until - self.loop.now, 0.0)
                self._sync_until = (self.loop.now + delay
                                    + self.connection.link.effective_rtt)
                self.charge_cpu(cpu)
                self.loop.schedule(delay + self.connection.link.effective_rtt,
                                   lambda d=data: self.enqueue(d))
                return
        self.enqueue_after_cpu(data, cpu)
