"""Command-line interface for the THINC reproduction.

Subcommands::

    python -m repro figures   [--pages N] [--frames N] [--only fig5]
    python -m repro demo      [--width W] [--height H] [--network lan|wan|pda]
    python -m repro trace     record <out.trace> | show <in.trace>
    python -m repro sites

`figures` regenerates the paper's evaluation tables; `demo` runs a
scripted desktop session and reports what crossed the wire; `trace`
records a demo session's downstream protocol bytes to a file or
summarises an existing trace; `sites` prints the Table 2 site models.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_figures(args) -> int:
    from .bench import experiments

    wanted = args.only
    printed = False

    def emit(name: str, render) -> None:
        nonlocal printed
        if wanted and wanted not in name:
            return
        if printed:
            print()
        print(render())
        printed = True

    emit("fig2", lambda: experiments.fig2_web_latency(args.pages))
    emit("fig3", lambda: experiments.fig3_web_data(args.pages))
    emit("fig4", lambda: experiments.fig4_web_remote(
        max(2, args.pages // 2)))
    emit("fig5", lambda: experiments.fig5_av_quality(args.frames))
    emit("fig6", lambda: experiments.fig6_av_data(args.frames))
    emit("fig7", lambda: experiments.fig7_av_remote(
        max(24, args.frames * 4 // 5)))
    if not printed:
        print(f"no figure matches {wanted!r} "
              "(use fig2..fig7)", file=sys.stderr)
        return 2
    return 0


def _build_demo(network: str, width: int, height: int, trace_path=None):
    from .core import THINCClient, THINCServer
    from .display import WindowServer
    from .display.wm import WindowManager
    from .net import (Connection, EventLoop, NETWORK_CONFIGS,
                      PacketMonitor)
    from .region import Rect

    link = NETWORK_CONFIGS[network]
    loop = EventLoop()
    monitor = PacketMonitor()
    conn = Connection(loop, link, monitor=monitor)
    server = THINCServer(loop, width, height)
    ws = WindowServer(width, height, driver=server.driver,
                      clock=loop.clock)
    server.attach_client(conn)
    client = THINCClient(loop, conn)
    recorder = None
    if trace_path is not None:
        from .protocol.trace import TraceRecorder

        recorder = TraceRecorder(trace_path, loop.clock)
        conn.down.connect(recorder.tee(client._on_data))

    wm = WindowManager(ws)
    editor = wm.create_window("editor", Rect(
        width // 8, height // 8, width // 2, height // 2))
    for n in range(8):
        loop.schedule(0.15 * n, lambda n=n: wm.draw_in_window(
            editor, lambda s, d: s.draw_text(
                d, 6, 6 + n * 10, f"line {n}: the quick brown fox",
                (10, 10, 10, 255))))
    loop.schedule(1.3, lambda: wm.move_window(editor, width // 6,
                                              height // 6))
    end = loop.run_until_idle(max_time=30)
    return loop, ws, client, monitor, recorder, end


def _cmd_demo_sharded(args) -> int:
    """The demo fanned out over a shard fabric behind a relay.

    The same scripted editor session plays on every shard's (mirrored)
    screen; two clients per shard dial the relay exactly as they would
    a single server, and one session is live-migrated mid-script.
    """
    from .cluster import ShardCoordinator
    from .cluster.smoke import SMOKE_CONFIG
    from .core.resilience import ResilientClient
    from .display import WindowServer
    from .display.wm import WindowManager
    from .net import Connection, EventLoop, NETWORK_CONFIGS
    from .region import Rect

    width, height = args.width, args.height
    loop = EventLoop()
    coord = ShardCoordinator(loop, args.shards, width, height,
                             resilience=SMOKE_CONFIG)
    screens = []
    for server in coord.shards:
        ws = WindowServer(width, height, driver=server.driver,
                          clock=loop.clock)
        wm = WindowManager(ws)
        editor = wm.create_window("editor", Rect(
            width // 8, height // 8, width // 2, height // 2))
        for n in range(8):
            loop.schedule(
                0.15 * n, lambda wm=wm, editor=editor, n=n:
                wm.draw_in_window(editor, lambda s, d: s.draw_text(
                    d, 6, 6 + n * 10,
                    f"line {n}: the quick brown fox", (10, 10, 10, 255))))
        loop.schedule(1.3, lambda wm=wm, editor=editor:
                      wm.move_window(editor, width // 6, height // 6))
        screens.append(ws)

    link = NETWORK_CONFIGS[args.network]

    def dial() -> "Connection":
        conn = Connection(loop, link)
        coord.relay.accept(conn)
        return conn

    clients = []
    for i in range(2 * args.shards):
        rc = ResilientClient(loop, dial, config=SMOKE_CONFIG, seed=i)
        rc.start()
        clients.append(rc)
    loop.run_until(2.0)
    token = clients[0].token
    moved = False
    if token and args.shards > 1:
        source = coord.route_token(token)
        coord.migrate(token, (source + 1) % args.shards)
        moved = True
    loop.run_until(14.0)

    exact = all(
        rc.client.fb is not None and rc.client.fb.same_as(
            screens[coord.route_token(rc.token)].screen.fb)
        for rc in clients)
    stats = coord.stats()
    print(f"network            : {args.network}")
    print(f"shards             : {args.shards}")
    print(f"sessions           : {stats['sessions']} "
          f"({[len(s.sessions) for s in coord.shards]} per shard)")
    print(f"live migrations    : {len(coord.migrations)}"
          + (f" (token {token})" if moved else ""))
    print(f"pixel-exact clients: {exact}")
    print(f"relay bytes up/down: {stats['relay']['bytes_up']:,} / "
          f"{stats['relay']['bytes_down']:,}")
    print(f"shared-cache hits  : {stats['shared_cache']['hits']}")
    return 0 if exact else 1


def _cmd_demo(args) -> int:
    if args.shards > 1:
        return _cmd_demo_sharded(args)
    loop, ws, client, monitor, recorder, end = _build_demo(
        args.network, args.width, args.height)
    exact = client.fb.same_as(ws.screen.fb)
    print(f"network            : {args.network}")
    print(f"session length     : {end:.2f} s simulated")
    print(f"pixel-exact client : {exact}")
    print(f"bytes on the wire  : {monitor.total_bytes():,}")
    for kind, count in sorted(client.stats["commands_by_kind"].items()):
        print(f"    {kind.upper():9s} x {count}")
    return 0 if exact else 1


def _cmd_trace(args) -> int:
    from .protocol.trace import read_trace, summarize_trace

    if args.action == "record":
        with open(args.path, "wb") as sink:
            _, ws, client, monitor, recorder, end = _build_demo(
                "lan", 320, 240, trace_path=sink)
        print(f"recorded {recorder.records_written} chunks "
              f"({recorder.bytes_written} bytes) over {end:.2f} s "
              f"to {args.path}")
        return 0
    with open(args.path, "rb") as source:
        records = read_trace(source)
    summary = summarize_trace(records)
    print(f"records   : {summary['records']}")
    print(f"bytes     : {summary['bytes']:,}")
    print(f"duration  : {summary['duration']:.3f} s")
    print("messages  :")
    for name, count in sorted(summary["messages"].items()):
        print(f"    {name:20s} x {count}")
    return 0


def _cmd_sites(args) -> int:
    from .bench.reporting import format_table
    from .bench.sites import REMOTE_SITES, site_link

    rows = []
    for site in REMOTE_SITES:
        link = site_link(site)
        rows.append([
            site.code, site.location, site.distance_miles,
            "yes" if site.planetlab else "no",
            f"{site.rtt * 1000:.0f} ms",
            f"{link.tcp_window // 1024} KB",
            f"{link.throughput * 8 / 1e6:.0f} Mbps",
        ])
    print(format_table(
        "Table 2 — Remote Sites for WAN Experiments",
        ["code", "location", "miles", "PlanetLab", "RTT", "TCP window",
         "achievable"],
        rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures",
                             help="regenerate the paper's figures")
    figures.add_argument("--pages", type=int, default=8)
    figures.add_argument("--frames", type=int, default=120)
    figures.add_argument("--only", help="substring filter, e.g. fig5")
    figures.set_defaults(func=_cmd_figures)

    demo = sub.add_parser("demo", help="run a scripted desktop session")
    demo.add_argument("--width", type=int, default=640)
    demo.add_argument("--height", type=int, default=480)
    demo.add_argument("--network", choices=("lan", "wan", "pda"),
                      default="lan")
    demo.add_argument("--shards", type=int, default=1,
                      help="run the session on a shard fabric behind a "
                           "relay (N>1), with one live migration")
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser("trace", help="record or inspect a trace")
    trace.add_argument("action", choices=("record", "show"))
    trace.add_argument("path")
    trace.set_defaults(func=_cmd_trace)

    sites = sub.add_parser("sites", help="print the Table 2 site models")
    sites.set_defaults(func=_cmd_sites)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
