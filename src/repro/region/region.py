"""Region algebra over sets of disjoint rectangles.

A :class:`Region` represents an arbitrary set of pixels as a list of
non-overlapping rectangles, in the spirit of the X server's band-based
regions.  The command queue and scheduler use regions to reason about
which parts of a command's output remain visible after later drawing.

The representation is kept canonical enough for correctness (rectangles
never overlap) without insisting on the minimal band decomposition; all
set operations are defined purely in terms of pixel membership, which is
what the property tests verify.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .geometry import Rect

__all__ = ["Region"]


class Region:
    """A set of pixels stored as disjoint rectangles."""

    __slots__ = ("_rects",)

    def __init__(self, rects: Optional[Iterable[Rect]] = None):
        self._rects: List[Rect] = []
        if rects:
            for r in rects:
                self.add(r)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Region":
        region = cls()
        if rect:
            region._rects.append(rect)
        return region

    @classmethod
    def empty(cls) -> "Region":
        return cls()

    def copy(self) -> "Region":
        dup = Region()
        dup._rects = list(self._rects)
        return dup

    # -- inspection --------------------------------------------------------

    @property
    def rects(self) -> Sequence[Rect]:
        return tuple(self._rects)

    @property
    def is_empty(self) -> bool:
        return not self._rects

    @property
    def area(self) -> int:
        return sum(r.area for r in self._rects)

    @property
    def bounds(self) -> Rect:
        """Smallest rectangle covering the whole region."""
        if not self._rects:
            return Rect(0, 0, 0, 0)
        x1 = min(r.x for r in self._rects)
        y1 = min(r.y for r in self._rects)
        x2 = max(r.x2 for r in self._rects)
        y2 = max(r.y2 for r in self._rects)
        return Rect.from_corners(x1, y1, x2, y2)

    def contains_point(self, x: int, y: int) -> bool:
        return any(r.contains_point(x, y) for r in self._rects)

    def contains_rect(self, rect: Rect) -> bool:
        """True when every pixel of *rect* is in the region."""
        if rect.empty:
            return True
        remaining = [rect]
        for r in self._rects:
            nxt: List[Rect] = []
            for piece in remaining:
                nxt.extend(piece.subtract(r))
            remaining = nxt
            if not remaining:
                return True
        return not remaining

    def overlaps_rect(self, rect: Rect) -> bool:
        return any(r.overlaps(rect) for r in self._rects)

    def overlaps(self, other: "Region") -> bool:
        return any(self.overlaps_rect(r) for r in other._rects)

    # -- mutation ------------------------------------------------------------

    def add(self, rect: Rect) -> None:
        """Union a rectangle into the region, keeping rects disjoint."""
        if rect.empty:
            return
        pending = [rect]
        for existing in self._rects:
            nxt: List[Rect] = []
            for piece in pending:
                nxt.extend(piece.subtract(existing))
            pending = nxt
            if not pending:
                return
        self._rects.extend(pending)

    def subtract_rect(self, rect: Rect) -> None:
        if rect.empty or not self._rects:
            return
        out: List[Rect] = []
        for existing in self._rects:
            out.extend(existing.subtract(rect))
        self._rects = out

    def union(self, other: "Region") -> "Region":
        result = self.copy()
        for r in other._rects:
            result.add(r)
        return result

    def subtract(self, other: "Region") -> "Region":
        result = self.copy()
        for r in other._rects:
            result.subtract_rect(r)
        return result

    def intersect_rect(self, rect: Rect) -> "Region":
        result = Region()
        for existing in self._rects:
            clipped = existing.intersect(rect)
            if clipped:
                result._rects.append(clipped)
        return result

    def intersect(self, other: "Region") -> "Region":
        result = Region()
        for r in other._rects:
            part = self.intersect_rect(r)
            result._rects.extend(part._rects)
        return result

    def translate(self, dx: int, dy: int) -> "Region":
        result = Region()
        result._rects = [r.translate(dx, dy) for r in self._rects]
        return result

    # -- protocol glue ------------------------------------------------------

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __bool__(self) -> bool:
        return bool(self._rects)

    def __eq__(self, other: object) -> bool:
        """Pixel-set equality (representation independent)."""
        if not isinstance(other, Region):
            return NotImplemented
        return self.area == other.area and self.intersect(other).area == self.area

    def __hash__(self):  # regions are mutable; forbid hashing
        raise TypeError("Region is unhashable")

    def __repr__(self) -> str:
        return f"Region({len(self._rects)} rects, area={self.area})"
