"""Region algebra over sorted y-bands of disjoint x-spans.

A :class:`Region` represents an arbitrary set of pixels the way the X
server and pixman do: as a sorted list of *bands*.  A band is a maximal
horizontal strip ``(y1, y2, spans)`` whose pixel coverage is constant
over every row in ``[y1, y2)``; ``spans`` is a sorted tuple of disjoint,
non-adjacent half-open x-intervals ``(x1, x2)``.

The representation is **canonical**: bands are sorted by ``y1``, never
overlap in y, vertically adjacent bands always differ in their spans
(else they would have been coalesced), and spans are maximal (adjacent
spans are merged).  Canonical form makes equality a structural
comparison and every binary operation a linear band merge:
``union``/``subtract``/``intersect``/``overlaps`` walk both operands'
band lists once, giving O(n + m) behaviour where the previous
list-of-rectangles implementation (kept as
:class:`repro.region.naive.NaiveRegion`) degraded to O(n * m).

The command queue and scheduler use regions to reason about which parts
of a command's output remain visible after later drawing; all consumers
treat a region purely as a pixel set, which is what the equivalence
property suite verifies against the naive reference.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .geometry import Rect

__all__ = ["Region"]

# A band is (y1, y2, spans); spans is a tuple of (x1, x2) pairs, sorted,
# disjoint and non-adjacent.  Bands are immutable tuples so ``copy`` is
# a shallow list copy.
Span = Tuple[int, int]
Band = Tuple[int, int, Tuple[Span, ...]]


# -- span arithmetic (one band row) ---------------------------------------

def _spans_union(a: Sequence[Span], b: Sequence[Span]) -> Tuple[Span, ...]:
    """Merge two sorted span lists, coalescing overlap and adjacency."""
    out: List[Span] = []
    ia = ib = 0
    na, nb = len(a), len(b)
    cx1 = cx2 = None
    while ia < na or ib < nb:
        if ib >= nb or (ia < na and a[ia][0] <= b[ib][0]):
            x1, x2 = a[ia]
            ia += 1
        else:
            x1, x2 = b[ib]
            ib += 1
        if cx1 is None:
            cx1, cx2 = x1, x2
        elif x1 <= cx2:  # overlapping or exactly adjacent: coalesce
            if x2 > cx2:
                cx2 = x2
        else:
            out.append((cx1, cx2))
            cx1, cx2 = x1, x2
    if cx1 is not None:
        out.append((cx1, cx2))
    return tuple(out)


def _spans_intersect(a: Sequence[Span], b: Sequence[Span]
                     ) -> Tuple[Span, ...]:
    out: List[Span] = []
    ia = ib = 0
    na, nb = len(a), len(b)
    while ia < na and ib < nb:
        ax1, ax2 = a[ia]
        bx1, bx2 = b[ib]
        x1 = ax1 if ax1 > bx1 else bx1
        x2 = ax2 if ax2 < bx2 else bx2
        if x1 < x2:
            out.append((x1, x2))
        if ax2 <= bx2:
            ia += 1
        else:
            ib += 1
    return tuple(out)


def _spans_subtract(a: Sequence[Span], b: Sequence[Span]
                    ) -> Tuple[Span, ...]:
    out: List[Span] = []
    ib = 0
    nb = len(b)
    for ax1, ax2 in a:
        x = ax1
        while ib < nb and b[ib][1] <= ax1:
            ib += 1
        j = ib
        while j < nb and b[j][0] < ax2 and x < ax2:
            bx1, bx2 = b[j]
            if bx1 > x:
                out.append((x, bx1))
            if bx2 > x:
                x = bx2
            j += 1
        if x < ax2:
            out.append((x, ax2))
    return tuple(out)


def _spans_touch(a: Sequence[Span], b: Sequence[Span]) -> bool:
    """Do two sorted span lists share at least one pixel column?"""
    ia = ib = 0
    na, nb = len(a), len(b)
    while ia < na and ib < nb:
        ax1, ax2 = a[ia]
        bx1, bx2 = b[ib]
        if ax1 < bx2 and bx1 < ax2:
            return True
        if ax2 <= bx2:
            ia += 1
        else:
            ib += 1
    return False


# -- band arithmetic -------------------------------------------------------

def _emit(out: List[Band], y1: int, y2: int,
          spans: Tuple[Span, ...]) -> None:
    """Append a strip, coalescing with the previous band when possible."""
    if y1 >= y2 or not spans:
        return
    if out:
        py1, py2, pspans = out[-1]
        if py2 == y1 and pspans == spans:
            out[-1] = (py1, y2, spans)
            return
    out.append((y1, y2, spans))


def _combine(abands: Sequence[Band], bbands: Sequence[Band],
             spanop, keep_a: bool, keep_b: bool) -> List[Band]:
    """The generic band-merge sweep behind union/subtract/intersect.

    Walks both sorted band lists once, splitting y into maximal strips
    over which each operand's coverage is constant.  Strips covered by
    both operands get ``spanop``; strips covered by only one operand are
    kept verbatim when the matching ``keep_*`` flag is set (union keeps
    both, subtract keeps only *a*, intersect keeps neither).
    """
    out: List[Band] = []
    ia = ib = 0
    na, nb = len(abands), len(bbands)
    # Top edge of the unconsumed part of the current band on each side.
    atop = abands[0][0] if na else 0
    btop = bbands[0][0] if nb else 0
    while ia < na and ib < nb:
        a = abands[ia]
        b = bbands[ib]
        if a[1] <= btop:  # a's band lies entirely above b's
            if keep_a:
                _emit(out, atop, a[1], a[2])
            ia += 1
            if ia < na:
                atop = abands[ia][0]
            continue
        if b[1] <= atop:
            if keep_b:
                _emit(out, btop, b[1], b[2])
            ib += 1
            if ib < nb:
                btop = bbands[ib][0]
            continue
        if atop < btop:  # a-only strip down to where b starts
            if keep_a:
                _emit(out, atop, btop, a[2])
            atop = btop
        elif btop < atop:
            if keep_b:
                _emit(out, btop, atop, b[2])
            btop = atop
        else:  # aligned tops: both cover [atop, bot)
            bot = a[1] if a[1] < b[1] else b[1]
            spans = spanop(a[2], b[2])
            if spans:
                _emit(out, atop, bot, spans)
            atop = btop = bot
            if a[1] == bot:
                ia += 1
                if ia < na:
                    atop = abands[ia][0]
            if b[1] == bot:
                ib += 1
                if ib < nb:
                    btop = bbands[ib][0]
    if keep_a and ia < na:
        _emit(out, atop, abands[ia][1], abands[ia][2])
        for y1, y2, spans in abands[ia + 1:]:
            _emit(out, y1, y2, spans)
    if keep_b and ib < nb:
        _emit(out, btop, bbands[ib][1], bbands[ib][2])
        for y1, y2, spans in bbands[ib + 1:]:
            _emit(out, y1, y2, spans)
    return out


def _find_band(bands: Sequence[Band], y: int) -> int:
    """Index of the first band whose bottom edge lies below row *y*."""
    lo, hi = 0, len(bands)
    while lo < hi:
        mid = (lo + hi) // 2
        if bands[mid][1] <= y:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _find_span(spans: Sequence[Span], x: int) -> int:
    """Index of the first span whose right edge lies past column *x*."""
    lo, hi = 0, len(spans)
    while lo < hi:
        mid = (lo + hi) // 2
        if spans[mid][1] <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _rect_bands(rect: Rect) -> List[Band]:
    return [(rect.y, rect.y + rect.height,
             ((rect.x, rect.x + rect.width),))]


class Region:
    """A set of pixels stored as sorted y-bands of disjoint x-spans."""

    __slots__ = ("_bands",)

    def __init__(self, rects: Optional[Iterable[Rect]] = None):
        self._bands: List[Band] = []
        if rects:
            for r in rects:
                self.add(r)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Region":
        region = cls()
        if rect:
            region._bands = _rect_bands(rect)
        return region

    @classmethod
    def empty(cls) -> "Region":
        return cls()

    def copy(self) -> "Region":
        dup = Region()
        dup._bands = list(self._bands)
        return dup

    # -- inspection --------------------------------------------------------

    @property
    def rects(self) -> Sequence[Rect]:
        return tuple(self)

    @property
    def is_empty(self) -> bool:
        return not self._bands

    @property
    def area(self) -> int:
        total = 0
        for y1, y2, spans in self._bands:
            width = 0
            for x1, x2 in spans:
                width += x2 - x1
            total += (y2 - y1) * width
        return total

    @property
    def bounds(self) -> Rect:
        """Smallest rectangle covering the whole region."""
        bands = self._bands
        if not bands:
            return Rect(0, 0, 0, 0)
        x1 = min(band[2][0][0] for band in bands)
        x2 = max(band[2][-1][1] for band in bands)
        return Rect.from_corners(x1, bands[0][0], x2, bands[-1][1])

    def contains_point(self, x: int, y: int) -> bool:
        bands = self._bands
        i = _find_band(bands, y)
        if i >= len(bands) or bands[i][0] > y:
            return False
        spans = bands[i][2]
        j = _find_span(spans, x)
        return j < len(spans) and spans[j][0] <= x

    def contains_rect(self, rect: Rect) -> bool:
        """True when every pixel of *rect* is in the region."""
        if rect.empty:
            return True
        bands = self._bands
        n = len(bands)
        y = rect.y
        i = _find_band(bands, y)
        while y < rect.y2:
            if i >= n:
                return False
            y1, y2, spans = bands[i]
            if y1 > y:
                return False  # a row gap inside the rect
            # Spans are maximal, so containment needs a single span.
            j = _find_span(spans, rect.x)
            if (j >= len(spans) or spans[j][0] > rect.x
                    or spans[j][1] < rect.x2):
                return False
            y = y2
            i += 1
        return True

    def overlaps_rect(self, rect: Rect) -> bool:
        if rect.empty:
            return False
        bands = self._bands
        n = len(bands)
        i = _find_band(bands, rect.y)
        while i < n:
            y1, _y2, spans = bands[i]
            if y1 >= rect.y2:
                return False
            j = _find_span(spans, rect.x)
            if j < len(spans) and spans[j][0] < rect.x2:
                return True
            i += 1
        return False

    def overlaps(self, other: "Region") -> bool:
        a = self._bands
        b = other._bands
        if not a or not b:
            return False
        if len(a) > len(b):
            a, b = b, a  # walk the smaller operand's bands first
        ia = ib = 0
        na, nb = len(a), len(b)
        while ia < na and ib < nb:
            ay1, ay2, aspans = a[ia]
            by1, by2, bspans = b[ib]
            if ay2 <= by1:
                ia += 1
                continue
            if by2 <= ay1:
                ib += 1
                continue
            if _spans_touch(aspans, bspans):
                return True
            if ay2 <= by2:
                ia += 1
            else:
                ib += 1
        return False

    # -- mutation ------------------------------------------------------------

    def add(self, rect: Rect) -> None:
        """Union a rectangle into the region."""
        if rect.empty:
            return
        if not self._bands:
            self._bands = _rect_bands(rect)
            return
        self._bands = _combine(self._bands, _rect_bands(rect),
                               _spans_union, True, True)

    def subtract_rect(self, rect: Rect) -> None:
        if rect.empty or not self._bands:
            return
        self._bands = _combine(self._bands, _rect_bands(rect),
                               _spans_subtract, True, False)

    def union(self, other: "Region") -> "Region":
        result = Region()
        if not other._bands:
            result._bands = list(self._bands)
        elif not self._bands:
            result._bands = list(other._bands)
        else:
            result._bands = _combine(self._bands, other._bands,
                                     _spans_union, True, True)
        return result

    def subtract(self, other: "Region") -> "Region":
        result = Region()
        if not other._bands:
            result._bands = list(self._bands)
        elif self._bands:
            result._bands = _combine(self._bands, other._bands,
                                     _spans_subtract, True, False)
        return result

    def intersect_rect(self, rect: Rect) -> "Region":
        result = Region()
        if rect.empty or not self._bands:
            return result
        bands = self._bands
        n = len(bands)
        out: List[Band] = []
        rspans = ((rect.x, rect.x + rect.width),)
        i = _find_band(bands, rect.y)
        while i < n:
            y1, y2, spans = bands[i]
            if y1 >= rect.y2:
                break
            clipped = _spans_intersect(spans, rspans)
            if clipped:
                _emit(out, max(y1, rect.y), min(y2, rect.y2), clipped)
            i += 1
        result._bands = out
        return result

    def intersect(self, other: "Region") -> "Region":
        result = Region()
        if self._bands and other._bands:
            result._bands = _combine(self._bands, other._bands,
                                     _spans_intersect, False, False)
        return result

    def translate(self, dx: int, dy: int) -> "Region":
        result = Region()
        result._bands = [
            (y1 + dy, y2 + dy,
             tuple((x1 + dx, x2 + dx) for x1, x2 in spans))
            for y1, y2, spans in self._bands
        ]
        return result

    # -- protocol glue ------------------------------------------------------

    def __iter__(self) -> Iterator[Rect]:
        for y1, y2, spans in self._bands:
            h = y2 - y1
            for x1, x2 in spans:
                yield Rect(x1, y1, x2 - x1, h)

    def __len__(self) -> int:
        return sum(len(spans) for _y1, _y2, spans in self._bands)

    def __bool__(self) -> bool:
        return bool(self._bands)

    def __eq__(self, other: object) -> bool:
        """Pixel-set equality (canonical form makes it structural)."""
        if not isinstance(other, Region):
            return NotImplemented
        return self._bands == other._bands

    def __hash__(self):  # regions are mutable; forbid hashing
        raise TypeError("Region is unhashable")

    def __repr__(self) -> str:
        return (f"Region({len(self._bands)} bands, {len(self)} rects, "
                f"area={self.area})")
