"""The naive list-of-rectangles region: reference implementation.

This is the pre-banded :class:`~repro.region.region.Region` — a flat
list of disjoint rectangles where every set operation is an O(n*m)
rectangle loop.  It is kept for two purposes:

* **correctness oracle** — the property suite asserts the banded
  engine is observationally equivalent to this implementation under
  random operation sequences (``tests/region/test_banded_equivalence``);
* **performance baseline** — the microperf harness
  (:mod:`repro.bench.microperf`) measures the banded engine's speedup
  against it, and ``BENCH_*.json`` records both numbers.

Nothing in the runtime system may import this module; the production
region algebra is :class:`repro.region.region.Region`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .geometry import Rect

__all__ = ["NaiveRegion"]


class NaiveRegion:
    """A set of pixels stored as an unordered list of disjoint rects."""

    __slots__ = ("_rects",)

    def __init__(self, rects: Optional[Iterable[Rect]] = None):
        self._rects: List[Rect] = []
        if rects:
            for r in rects:
                self.add(r)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "NaiveRegion":
        region = cls()
        if rect:
            region._rects.append(rect)
        return region

    @classmethod
    def empty(cls) -> "NaiveRegion":
        return cls()

    def copy(self) -> "NaiveRegion":
        dup = NaiveRegion()
        dup._rects = list(self._rects)
        return dup

    # -- inspection --------------------------------------------------------

    @property
    def rects(self) -> Sequence[Rect]:
        return tuple(self._rects)

    @property
    def is_empty(self) -> bool:
        return not self._rects

    @property
    def area(self) -> int:
        return sum(r.area for r in self._rects)

    @property
    def bounds(self) -> Rect:
        """Smallest rectangle covering the whole region."""
        if not self._rects:
            return Rect(0, 0, 0, 0)
        x1 = min(r.x for r in self._rects)
        y1 = min(r.y for r in self._rects)
        x2 = max(r.x2 for r in self._rects)
        y2 = max(r.y2 for r in self._rects)
        return Rect.from_corners(x1, y1, x2, y2)

    def contains_point(self, x: int, y: int) -> bool:
        return any(r.contains_point(x, y) for r in self._rects)

    def contains_rect(self, rect: Rect) -> bool:
        """True when every pixel of *rect* is in the region."""
        if rect.empty:
            return True
        remaining = [rect]
        for r in self._rects:
            nxt: List[Rect] = []
            for piece in remaining:
                nxt.extend(piece.subtract(r))
            remaining = nxt
            if not remaining:
                return True
        return not remaining

    def overlaps_rect(self, rect: Rect) -> bool:
        return any(r.overlaps(rect) for r in self._rects)

    def overlaps(self, other: "NaiveRegion") -> bool:
        return any(self.overlaps_rect(r) for r in other._rects)

    # -- mutation ------------------------------------------------------------

    def add(self, rect: Rect) -> None:
        """Union a rectangle into the region, keeping rects disjoint."""
        if rect.empty:
            return
        pending = [rect]
        for existing in self._rects:
            nxt: List[Rect] = []
            for piece in pending:
                nxt.extend(piece.subtract(existing))
            pending = nxt
            if not pending:
                return
        self._rects.extend(pending)

    def subtract_rect(self, rect: Rect) -> None:
        if rect.empty or not self._rects:
            return
        out: List[Rect] = []
        for existing in self._rects:
            out.extend(existing.subtract(rect))
        self._rects = out

    def union(self, other: "NaiveRegion") -> "NaiveRegion":
        result = self.copy()
        for r in other._rects:
            result.add(r)
        return result

    def subtract(self, other: "NaiveRegion") -> "NaiveRegion":
        result = self.copy()
        for r in other._rects:
            result.subtract_rect(r)
        return result

    def intersect_rect(self, rect: Rect) -> "NaiveRegion":
        result = NaiveRegion()
        for existing in self._rects:
            clipped = existing.intersect(rect)
            if clipped:
                result._rects.append(clipped)
        return result

    def intersect(self, other: "NaiveRegion") -> "NaiveRegion":
        result = NaiveRegion()
        for r in other._rects:
            part = self.intersect_rect(r)
            result._rects.extend(part._rects)
        return result

    def translate(self, dx: int, dy: int) -> "NaiveRegion":
        result = NaiveRegion()
        result._rects = [r.translate(dx, dy) for r in self._rects]
        return result

    # -- protocol glue ------------------------------------------------------

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __bool__(self) -> bool:
        return bool(self._rects)

    def __eq__(self, other: object) -> bool:
        """Pixel-set equality (representation independent)."""
        if not isinstance(other, NaiveRegion):
            return NotImplemented
        return self.area == other.area and self.intersect(other).area == self.area

    def __hash__(self):  # regions are mutable; forbid hashing
        raise TypeError("NaiveRegion is unhashable")

    def __repr__(self) -> str:
        return f"NaiveRegion({len(self._rects)} rects, area={self.area})"
