"""Rectangle geometry primitives.

Everything in the display stack is expressed in terms of axis-aligned
integer rectangles.  A :class:`Rect` uses the X-server convention of an
origin plus a width and height; the half-open span covered is
``[x, x + width) x [y, y + height)``.

Rectangles are immutable value objects.  Degenerate rectangles (zero or
negative width/height) are normalised to the canonical empty rectangle so
that emptiness has a single representation and equality behaves sanely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["Rect", "EMPTY_RECT"]


@dataclass(frozen=True, order=True, slots=True)
class Rect:
    """An immutable, half-open, axis-aligned integer rectangle."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            # Canonical empty rectangle: all-zero.
            object.__setattr__(self, "x", 0)
            object.__setattr__(self, "y", 0)
            object.__setattr__(self, "width", 0)
            object.__setattr__(self, "height", 0)

    # -- basic derived coordinates ------------------------------------

    @property
    def x2(self) -> int:
        """One past the right-most column covered."""
        return self.x + self.width

    @property
    def y2(self) -> int:
        """One past the bottom-most row covered."""
        return self.y + self.height

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def empty(self) -> bool:
        return self.width == 0 or self.height == 0

    @classmethod
    def from_corners(cls, x1: int, y1: int, x2: int, y2: int) -> "Rect":
        """Build a rectangle from two corners; empty if inverted."""
        return cls(x1, y1, x2 - x1, y2 - y1)

    # -- predicates ----------------------------------------------------

    def contains_point(self, px: int, py: int) -> bool:
        return self.x <= px < self.x2 and self.y <= py < self.y2

    def contains(self, other: "Rect") -> bool:
        """True when *other* lies entirely within this rectangle.

        The empty rectangle is contained in everything.
        """
        if other.empty:
            return True
        if self.empty:
            return False
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share at least one pixel."""
        if self.empty or other.empty:
            return False
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    # -- set-like operations -------------------------------------------

    def intersect(self, other: "Rect") -> "Rect":
        """The overlapping area of two rectangles (possibly empty)."""
        return Rect.from_corners(
            max(self.x, other.x),
            max(self.y, other.y),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def union_bounds(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both operands."""
        if self.empty:
            return other
        if other.empty:
            return self
        return Rect.from_corners(
            min(self.x, other.x),
            min(self.y, other.y),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def subtract(self, other: "Rect") -> List["Rect"]:
        """This rectangle minus *other*, as at most four disjoint rects.

        The pieces are emitted in top, bottom, left, right order and
        exactly tile ``self - other``.
        """
        clip = self.intersect(other)
        if clip.empty:
            return [] if self.empty else [self]
        pieces: List[Rect] = []
        if clip.y > self.y:  # band above the hole
            pieces.append(Rect.from_corners(self.x, self.y, self.x2, clip.y))
        if clip.y2 < self.y2:  # band below the hole
            pieces.append(Rect.from_corners(self.x, clip.y2, self.x2, self.y2))
        if clip.x > self.x:  # left remnant beside the hole
            pieces.append(Rect.from_corners(self.x, clip.y, clip.x, clip.y2))
        if clip.x2 < self.x2:  # right remnant beside the hole
            pieces.append(Rect.from_corners(clip.x2, clip.y, self.x2, clip.y2))
        return pieces

    # -- transforms ------------------------------------------------------

    def translate(self, dx: int, dy: int) -> "Rect":
        if self.empty:
            return self
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def scale(self, sx: float, sy: float) -> "Rect":
        """Scale about the origin, rounding outward to cover the source."""
        if self.empty:
            return self
        import math

        x1 = math.floor(self.x * sx)
        y1 = math.floor(self.y * sy)
        x2 = math.ceil(self.x2 * sx)
        y2 = math.ceil(self.y2 * sy)
        return Rect.from_corners(x1, y1, x2, y2)

    def clip_to(self, bounds: "Rect") -> "Rect":
        return self.intersect(bounds)

    # -- misc ------------------------------------------------------------

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.x, self.y, self.width, self.height)

    def pixels(self) -> Iterator[Tuple[int, int]]:
        """Iterate (x, y) pairs covered; intended for small test rects."""
        for py in range(self.y, self.y2):
            for px in range(self.x, self.x2):
                yield (px, py)

    def __bool__(self) -> bool:
        return not self.empty

    def __repr__(self) -> str:  # compact, log-friendly
        return f"Rect({self.x},{self.y} {self.width}x{self.height})"


EMPTY_RECT = Rect(0, 0, 0, 0)
