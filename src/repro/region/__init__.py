"""Rectangle and region algebra used across the display stack."""

from .geometry import EMPTY_RECT, Rect
from .region import Region

__all__ = ["Rect", "Region", "EMPTY_RECT"]
