"""Rectangle and region algebra used across the display stack."""

from .geometry import EMPTY_RECT, Rect
from .naive import NaiveRegion
from .region import Region

__all__ = ["Rect", "Region", "NaiveRegion", "EMPTY_RECT"]
