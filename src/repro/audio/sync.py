"""A/V synchronisation and playback-quality analysis.

THINC timestamps audio and video at the server so the client can
deliver them with the server's synchronisation (Section 4.2).  These
helpers turn a client's arrival records into the quality measures the
paper's slow-motion A/V benchmark reports: a stream plays at 100%
quality when every unit arrived in time to be presented on its ideal
schedule; data that is dropped, or that stretches playback beyond
real-time, reduces quality proportionally.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["audio_quality", "av_sync_skew", "playback_quality"]


def playback_quality(units_received: int, units_total: int,
                     ideal_duration: float, actual_duration: float) -> float:
    """The slow-motion quality measure (Section 8.2).

    100% means every unit played at real-time speed.  Dropped units and
    stretched playback both degrade the score: e.g. half the data
    dropped, or all data in twice the time, each give 50%.
    """
    if units_total <= 0 or ideal_duration <= 0:
        raise ValueError("totals must be positive")
    delivered = min(1.0, units_received / units_total)
    if units_received == 0:
        return 0.0
    slowdown = max(actual_duration, 1e-12) / ideal_duration
    speed = min(1.0, 1.0 / slowdown) if slowdown > 1.0 else 1.0
    return delivered * speed


def audio_quality(arrivals: Sequence[Tuple[float, float]],
                  chunks_total: int, ideal_duration: float,
                  start_offset: float = 0.25) -> float:
    """Audio quality from (server timestamp, arrival time) pairs.

    The client buffers ``start_offset`` seconds before starting
    playback; a chunk is on time when it arrives before its scheduled
    play-out instant.  Quality is the on-time fraction scaled by
    delivery completeness.
    """
    if chunks_total <= 0:
        raise ValueError("chunks_total must be positive")
    if not arrivals:
        return 0.0
    base_ts, base_arrival = arrivals[0]
    deadline_origin = base_arrival + start_offset
    on_time = 0
    for ts, arrival in arrivals:
        deadline = deadline_origin + (ts - base_ts)
        if arrival <= deadline + 1e-9:
            on_time += 1
    return (on_time / chunks_total)


def av_sync_skew(audio_arrivals: Sequence[Tuple[float, float]],
                 video_arrivals: Sequence[Tuple[float, float]]) -> float:
    """Mean |audio - video| delivery-delay difference, in seconds.

    Both sequences hold (server timestamp, client arrival) pairs; the
    skew compares the two streams' average network delays — with
    server-side timestamping the client can absorb any *common* delay,
    so only the difference degrades lip sync.
    """
    if not audio_arrivals or not video_arrivals:
        return 0.0

    def mean_delay(pairs):
        return sum(arr - ts for ts, arr in pairs) / len(pairs)

    return abs(mean_delay(audio_arrivals) - mean_delay(video_arrivals))
