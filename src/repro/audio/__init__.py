"""Audio support: virtual audio driver and A/V sync analysis."""

from .driver import AudioFormat, VirtualAudioDriver
from .sync import audio_quality, av_sync_skew, playback_quality

__all__ = [
    "AudioFormat",
    "VirtualAudioDriver",
    "audio_quality",
    "av_sync_skew",
    "playback_quality",
]
