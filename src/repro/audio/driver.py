"""The virtual audio driver (paper Sections 4.2 and 7).

THINC applies its virtual-driver idea to sound: a virtualised ALSA-style
driver sits at the audio device layer, accepts PCM from applications
(whatever audio library they use — they all bottom out at the device),
timestamps it with server time, and forwards it to the per-client
delivery path.  Timestamping at the server is what lets the client
reproduce the same A/V synchronisation the server had.
"""

from __future__ import annotations

from typing import Optional, Protocol

__all__ = ["AudioFormat", "VirtualAudioDriver"]


class AudioSink(Protocol):
    def submit_audio(self, timestamp: float, samples: bytes) -> None: ...


class AudioFormat:
    """PCM stream parameters (defaults: CD-quality stereo)."""

    def __init__(self, sample_rate: int = 44100, channels: int = 2,
                 sample_bytes: int = 2):
        if sample_rate <= 0 or channels <= 0 or sample_bytes <= 0:
            raise ValueError("audio format fields must be positive")
        self.sample_rate = sample_rate
        self.channels = channels
        self.sample_bytes = sample_bytes

    @property
    def frame_bytes(self) -> int:
        """Bytes per sample frame (one sample per channel)."""
        return self.channels * self.sample_bytes

    @property
    def bytes_per_second(self) -> int:
        return self.sample_rate * self.frame_bytes

    def duration_of(self, nbytes: int) -> float:
        return nbytes / self.bytes_per_second

    def bytes_for(self, seconds: float) -> int:
        raw = int(round(seconds * self.bytes_per_second))
        # Round down to a whole sample frame.
        return raw - raw % self.frame_bytes


class VirtualAudioDriver:
    """Chunks and timestamps PCM written by applications.

    The *period* mirrors an ALSA period size: applications write
    arbitrary amounts; the driver signals the per-client daemon (the
    sink) once per accumulated period.  Timestamps carry the *playback*
    time of the chunk's first sample in server time.
    """

    def __init__(self, sink: AudioSink, clock, fmt: Optional[AudioFormat] = None,
                 period: float = 0.05):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sink = sink
        self.clock = clock
        self.fmt = fmt or AudioFormat()
        self.period_bytes = max(self.fmt.frame_bytes,
                                self.fmt.bytes_for(period))
        self._pending = bytearray()
        # Playback position: server timestamp of the next byte queued.
        self._stream_time: Optional[float] = None
        self.chunks_emitted = 0
        self.bytes_emitted = 0

    def play(self, samples: bytes) -> None:
        """Application writes PCM data to the device."""
        if len(samples) % self.fmt.frame_bytes:
            raise ValueError("write must be whole sample frames")
        if self._stream_time is None:
            self._stream_time = self.clock.now
        self._pending.extend(samples)
        while len(self._pending) >= self.period_bytes:
            chunk = bytes(self._pending[: self.period_bytes])
            del self._pending[: self.period_bytes]
            self._emit(chunk)

    def drain(self) -> None:
        """Flush any partial period (end of stream)."""
        if self._pending:
            chunk = bytes(self._pending)
            self._pending.clear()
            self._emit(chunk)
        self._stream_time = None

    def _emit(self, chunk: bytes) -> None:
        assert self._stream_time is not None
        self.sink.submit_audio(self._stream_time, chunk)
        self._stream_time += self.fmt.duration_of(len(chunk))
        self.chunks_emitted += 1
        self.bytes_emitted += len(chunk)
