"""YUV pixel formats and colour-space conversion.

THINC ships video frames in planar YUV (primarily YV12) so that the
*client's* video hardware performs colour-space conversion and scaling
(Section 4.2).  YV12 stores a full-resolution luma (Y) plane followed by
quarter-resolution V and U chroma planes: 12 bits per pixel instead of
24, a free 2x reduction in network bytes with no perceptible loss.

These routines implement BT.601 full-range conversion with 4:2:0 chroma
subsampling, plus the packing/unpacking of the planar wire layout.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "yv12_frame_size",
    "rgb_to_yv12",
    "yv12_to_rgb",
    "pack_yv12",
    "unpack_yv12",
    "yuy2_frame_size",
    "rgb_to_yuy2",
    "yuy2_to_rgb",
    "frame_size",
    "encode_frame",
    "decode_frame",
    "FORMATS",
    "scale_rgb",
]


def yv12_frame_size(width: int, height: int) -> int:
    """Bytes in one YV12 frame: Y plane + two quarter-size chroma planes."""
    if width % 2 or height % 2:
        raise ValueError("YV12 dimensions must be even")
    return width * height * 3 // 2


def _subsample(plane: np.ndarray) -> np.ndarray:
    """Average 2x2 blocks down to one sample (4:2:0 chroma siting)."""
    h, w = plane.shape
    return (
        plane.reshape(h // 2, 2, w // 2, 2)
        .mean(axis=(1, 3))
    )


def rgb_to_yv12(rgb: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert an HxWx3 uint8 RGB frame to (Y, V, U) planes.

    Returns uint8 planes: Y is HxW, V and U are (H/2)x(W/2).
    """
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[2] < 3:
        raise ValueError("expected HxWx3 RGB input")
    if rgb.shape[0] % 2 or rgb.shape[1] % 2:
        raise ValueError("YV12 dimensions must be even")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    u = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0
    v = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0
    y8 = np.clip(np.rint(y), 0, 255).astype(np.uint8)
    u8 = np.clip(np.rint(_subsample(u)), 0, 255).astype(np.uint8)
    v8 = np.clip(np.rint(_subsample(v)), 0, 255).astype(np.uint8)
    return y8, v8, u8


def yv12_to_rgb(y: np.ndarray, v: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Reconstruct an HxWx3 uint8 RGB frame from planar YV12 data."""
    y = np.asarray(y, dtype=np.float64)
    # Upsample chroma by pixel replication (what cheap hardware does).
    uf = np.repeat(np.repeat(np.asarray(u, dtype=np.float64), 2, 0), 2, 1)
    vf = np.repeat(np.repeat(np.asarray(v, dtype=np.float64), 2, 0), 2, 1)
    uf = uf[: y.shape[0], : y.shape[1]] - 128.0
    vf = vf[: y.shape[0], : y.shape[1]] - 128.0
    r = y + 1.402 * vf
    g = y - 0.344136 * uf - 0.714136 * vf
    b = y + 1.772 * uf
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def pack_yv12(y: np.ndarray, v: np.ndarray, u: np.ndarray) -> bytes:
    """Serialise planes into the YV12 wire layout (Y then V then U)."""
    return y.tobytes() + v.tobytes() + u.tobytes()


def unpack_yv12(data: bytes, width: int, height: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Parse the YV12 wire layout back into (Y, V, U) planes."""
    expected = yv12_frame_size(width, height)
    if len(data) != expected:
        raise ValueError(
            f"YV12 buffer is {len(data)} bytes, expected {expected} "
            f"for {width}x{height}"
        )
    ysize = width * height
    csize = ysize // 4
    y = np.frombuffer(data, dtype=np.uint8, count=ysize).reshape(
        height, width)
    v = np.frombuffer(data, dtype=np.uint8, count=csize, offset=ysize
                      ).reshape(height // 2, width // 2)
    u = np.frombuffer(data, dtype=np.uint8, count=csize,
                      offset=ysize + csize).reshape(height // 2, width // 2)
    return y, v, u


def yuy2_frame_size(width: int, height: int) -> int:
    """Bytes in one YUY2 frame: packed 4:2:2, 16 bits per pixel."""
    if width % 2:
        raise ValueError("YUY2 width must be even")
    return width * height * 2


def _full_yuv(rgb: np.ndarray):
    rgb = np.asarray(rgb, dtype=np.float64)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    u = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0
    v = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0
    return y, u, v


def rgb_to_yuy2(rgb: np.ndarray) -> bytes:
    """Convert an HxWx3 uint8 RGB frame to packed YUY2 (Y0 U Y1 V).

    Chroma is averaged over each horizontal pixel pair (4:2:2): half
    the chroma of RGB, twice that of YV12, at 16 bits per pixel.
    """
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] < 3:
        raise ValueError("expected HxWx3 RGB input")
    if rgb.shape[1] % 2:
        raise ValueError("YUY2 width must be even")
    y, u, v = _full_yuv(rgb[..., :3])
    h, w = y.shape
    y8 = np.clip(np.rint(y), 0, 255).astype(np.uint8)
    u8 = np.clip(np.rint(u.reshape(h, w // 2, 2).mean(axis=2)),
                 0, 255).astype(np.uint8)
    v8 = np.clip(np.rint(v.reshape(h, w // 2, 2).mean(axis=2)),
                 0, 255).astype(np.uint8)
    packed = np.empty((h, w * 2), dtype=np.uint8)
    packed[:, 0::4] = y8[:, 0::2]
    packed[:, 1::4] = u8
    packed[:, 2::4] = y8[:, 1::2]
    packed[:, 3::4] = v8
    return packed.tobytes()


def yuy2_to_rgb(data: bytes, width: int, height: int) -> np.ndarray:
    """Decode packed YUY2 back to an HxWx3 uint8 RGB frame."""
    expected = yuy2_frame_size(width, height)
    if len(data) != expected:
        raise ValueError(
            f"YUY2 buffer is {len(data)} bytes, expected {expected} "
            f"for {width}x{height}"
        )
    packed = np.frombuffer(data, dtype=np.uint8).reshape(height, width * 2)
    y = np.empty((height, width), dtype=np.float64)
    y[:, 0::2] = packed[:, 0::4]
    y[:, 1::2] = packed[:, 2::4]
    u = np.repeat(packed[:, 1::4], 2, axis=1).astype(np.float64) - 128.0
    v = np.repeat(packed[:, 3::4], 2, axis=1).astype(np.float64) - 128.0
    r = y + 1.402 * v
    g = y - 0.344136 * u - 0.714136 * v
    b = y + 1.772 * u
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


# Format registry used by the video pipeline: wire id, sizing, codecs.
FORMATS = ("YV12", "YUY2")


def frame_size(pixel_format: str, width: int, height: int) -> int:
    """Bytes of one frame of *pixel_format* at the given dimensions."""
    if pixel_format == "YV12":
        return yv12_frame_size(width, height)
    if pixel_format == "YUY2":
        return yuy2_frame_size(width, height)
    raise ValueError(f"unknown pixel format {pixel_format!r}")


def encode_frame(pixel_format: str, rgb: np.ndarray) -> bytes:
    """Encode an RGB frame in the given wire pixel format."""
    if pixel_format == "YV12":
        return pack_yv12(*rgb_to_yv12(np.asarray(rgb)[..., :3]))
    if pixel_format == "YUY2":
        return rgb_to_yuy2(rgb)
    raise ValueError(f"unknown pixel format {pixel_format!r}")


def decode_frame(pixel_format: str, data: bytes, width: int,
                 height: int) -> np.ndarray:
    """Decode a wire frame back to RGB."""
    if pixel_format == "YV12":
        return yv12_to_rgb(*unpack_yv12(data, width, height))
    if pixel_format == "YUY2":
        return yuy2_to_rgb(data, width, height)
    raise ValueError(f"unknown pixel format {pixel_format!r}")


def scale_rgb(rgb: np.ndarray, width: int, height: int) -> np.ndarray:
    """Nearest-neighbour scale, modelling the client's hardware scaler.

    Hardware overlay scalers do cheap sampling; the point in THINC is
    that scaling happens *after* the network, so the wire cost is
    independent of the viewing size.
    """
    rgb = np.asarray(rgb)
    if width <= 0 or height <= 0:
        raise ValueError("target dimensions must be positive")
    src_h, src_w = rgb.shape[0], rgb.shape[1]
    ys = (np.arange(height) * src_h // height).clip(0, src_h - 1)
    xs = (np.arange(width) * src_w // width).clip(0, src_w - 1)
    return rgb[np.ix_(ys, xs)]
