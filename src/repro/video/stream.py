"""Synthetic video sources.

The paper's A/V benchmark plays a 34.75 s, 352x240 MPEG-1 clip.  MPEG
decoding happens in the *application* (MPlayer) — what reaches the
display system, and hence THINC, is the decoded YV12 frame stream.
:class:`SyntheticVideoClip` therefore generates decoded frames directly:
temporally coherent moving content with photographic texture, matching
the data volume (12 bpp x resolution x frame rate) and the
incompressibility characteristics of real decoded video.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from . import yuv

__all__ = ["SyntheticVideoClip", "BENCHMARK_CLIP"]


class SyntheticVideoClip:
    """A deterministic generator of decoded video frames."""

    def __init__(self, width: int = 352, height: int = 240,
                 fps: float = 24.0, duration: float = 34.75,
                 seed: int = 2005):
        if width % 2 or height % 2:
            raise ValueError("frame dimensions must be even for YV12")
        if fps <= 0 or duration <= 0:
            raise ValueError("fps and duration must be positive")
        self.width = width
        self.height = height
        self.fps = fps
        self.duration = duration
        self.seed = seed
        # A static textured background the camera "pans" across.
        rng = np.random.default_rng(seed)
        self._backdrop = rng.integers(
            0, 256, size=(height * 2, width * 2, 3), dtype=np.uint8)
        # Smooth the noise into photographic-looking texture.
        self._backdrop = (
            self._backdrop.astype(np.uint16)
            + np.roll(self._backdrop, 1, axis=0)
            + np.roll(self._backdrop, 1, axis=1)
            + np.roll(self._backdrop, 2, axis=1)
        ) // 4
        self._backdrop = self._backdrop.astype(np.uint8)

    @property
    def frame_count(self) -> int:
        return int(round(self.duration * self.fps))

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.fps

    @property
    def frame_bytes(self) -> int:
        """Bytes of one decoded YV12 frame."""
        return yuv.yv12_frame_size(self.width, self.height)

    def rgb_frame(self, index: int) -> np.ndarray:
        """Decoded RGB content of frame *index* (deterministic)."""
        if not 0 <= index < self.frame_count:
            raise IndexError(f"frame {index} outside clip")
        # Pan diagonally across the backdrop; add a moving bright blob
        # so consecutive frames differ everywhere a codec would differ.
        ox = (index * 3) % self.width
        oy = (index * 2) % self.height
        frame = self._backdrop[oy : oy + self.height,
                               ox : ox + self.width].copy()
        cx = int((0.5 + 0.4 * np.sin(index / 9.0)) * self.width)
        cy = int((0.5 + 0.4 * np.cos(index / 7.0)) * self.height)
        ys, xs = np.ogrid[: self.height, : self.width]
        blob = (xs - cx) ** 2 + (ys - cy) ** 2 < (self.height // 6) ** 2
        frame[blob] = np.minimum(frame[blob].astype(np.uint16) + 90,
                                 255).astype(np.uint8)
        return frame

    def yv12_frame(self, index: int) -> bytes:
        """Frame *index* in the YV12 wire layout (what MPlayer hands X)."""
        return yuv.pack_yv12(*yuv.rgb_to_yv12(self.rgb_frame(index)))

    def encoded_frame(self, index: int, pixel_format: str = "YV12") -> bytes:
        """Frame *index* in any registered wire pixel format."""
        return yuv.encode_frame(pixel_format, self.rgb_frame(index))

    def frames(self, limit: Optional[int] = None) -> Iterator[Tuple[float, bytes]]:
        """Yield (presentation time, yv12 bytes) pairs."""
        count = self.frame_count if limit is None else min(
            limit, self.frame_count)
        for i in range(count):
            yield (i * self.frame_interval, self.yv12_frame(i))


def BENCHMARK_CLIP() -> SyntheticVideoClip:
    """The paper's benchmark clip: 34.75 s of 352x240 video at 24 fps."""
    return SyntheticVideoClip(width=352, height=240, fps=24.0,
                              duration=34.75)
