"""Video support: YUV formats and stream objects (paper Section 4.2)."""

from . import yuv

__all__ = ["yuv"]
