"""The THINC client: a thin, mostly stateless display device.

The client decrypts, parses and executes protocol commands against its
local framebuffer — nothing more.  Each command maps onto an operation
commodity display hardware accelerates (Section 3), so execution is a
direct call into the framebuffer raster ops.

Two features mirror the paper's experimental apparatus:

* a **headless** mode reproducing the instrumented client deployed on
  the PlanetLab sites (Section 8.1): all data is processed and
  accounted for, but nothing is rendered; and
* a simple **client processing-time model** (cost per byte parsed plus
  cost per pixel drawn) standing in for the client-side instrumentation
  used to include processing time in Figure 2's cross-hatched bars.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..display.framebuffer import Framebuffer
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import Command, VideoFrameCommand
from ..protocol.limits import LIMITS
from ..protocol.rc4 import RC4
from ..protocol.spec import CLIENT_ACCEPTS

__all__ = ["THINCClient", "ClientCostModel", "VideoStreamStats",
           "AudioStats"]


@dataclass(frozen=True)
class ClientCostModel:
    """Per-message client processing cost, in seconds.

    ``per_byte`` models parse/decompress work, ``per_pixel`` models
    drawing work.  Defaults approximate the paper's 450 MHz PII client:
    tens of MB/s of protocol processing, hundreds of Mpix/s of blitting.
    """

    per_byte: float = 2e-8
    per_pixel: float = 2e-9
    fixed: float = 2e-6

    def cost(self, nbytes: int, npixels: int) -> float:
        return self.fixed + nbytes * self.per_byte + npixels * self.per_pixel


@dataclass
class VideoStreamStats:
    stream_id: int
    frames_received: int = 0
    first_frame_time: Optional[float] = None
    last_frame_time: Optional[float] = None
    frame_numbers: List[int] = field(default_factory=list)
    # (frame number, client arrival time) pairs for sync analysis.
    arrivals: List[Tuple[int, float]] = field(default_factory=list)


@dataclass
class AudioStats:
    chunks_received: int = 0
    bytes_received: int = 0
    # (server timestamp, client arrival time) pairs for sync analysis.
    arrivals: List[Tuple[float, float]] = field(default_factory=list)


class THINCClient:
    """Executes the THINC protocol against a local framebuffer."""

    # Sanity cap on a frame's declared payload length: a corrupted
    # header must raise a ProtocolError, not stall the parser forever
    # waiting for gigabytes that will never arrive.
    MAX_FRAME = LIMITS.max_frame_bytes

    def __init__(self, loop: EventLoop, connection: Optional[Connection],
                 viewport: Optional[Tuple[int, int]] = None,
                 headless: bool = False,
                 decrypt_key: Optional[bytes] = None,
                 cost_model: Optional[ClientCostModel] = None):
        self.loop = loop
        self.connection = connection
        self.headless = headless
        self._decrypt_key = decrypt_key
        self.cipher = RC4(decrypt_key) if decrypt_key else None
        self.cost_model = cost_model or ClientCostModel()
        self.parser = self._make_parser()
        # Resilience state: highest CHECKED sequence applied (resync
        # replay duplicates are skipped by it), and an optional hook a
        # resilient wrapper sets to turn parse failures into reconnects
        # instead of crashes.
        self.last_applied_seq = 0
        self._seq_barrier = False
        self.on_protocol_error: Optional[callable] = None
        # Governance hook: called with an AttachDeniedMessage when the
        # server's governor turns this client away (admission refusal
        # or eviction); the client also counts it and remembers the
        # retry hint so callers can surface it cleanly.
        self.on_attach_denied: Optional[callable] = None
        self.attach_denied: Optional[wire.AttachDeniedMessage] = None
        self.fb: Optional[Framebuffer] = None
        if viewport is not None:
            self.fb = Framebuffer(*viewport)
        # Hardware-cursor model: position tracked locally from the
        # user's own input (zero-latency), shape pushed by the server.
        self.cursor_pos: Tuple[int, int] = (0, 0)
        self.cursor_image = None  # numpy HxWx4 when a shape arrives
        self.cursor_hotspot: Tuple[int, int] = (0, 0)
        self.video_streams: Dict[int, wire.VideoSetupMessage] = {}
        self.video_stats: Dict[int, VideoStreamStats] = {}
        # Latest QoS descriptor per stream: which degradation rung the
        # server's QoS plane is feeding this client at (repro.core.qos).
        self.video_quality: Dict[int, wire.VideoQualityMessage] = {}
        # Display-wall membership, set by a TILE_ASSIGN from the server
        # after a tile-mode SUBSCRIBE.
        self.tile_assignment: Optional[wire.TileAssignMessage] = None
        self.audio = AudioStats()
        self.stats = {
            "bytes_received": 0,
            "messages": 0,
            "commands_by_kind": {},
            "bytes_by_kind": {},
            "last_update_time": 0.0,
            "processing_time": 0.0,
            "last_rx_time": 0.0,
            "protocol_errors": 0,
            "replay_skipped": 0,
            "seq_gaps": 0,
            "attach_denied": 0,
        }
        if connection is not None:
            connection.down.connect(self._on_data)

    # -- connection management -----------------------------------------------

    def _make_parser(self) -> wire.StreamParser:
        """A fresh downlink parser.  The accepted-id set comes from the
        protocol spec (THL201): a server-to-server frame — say a
        SESSION_TRANSFER smuggled down a compromised relay — dies at
        the frame header, before any payload decode runs."""
        return wire.StreamParser(max_frame=self.MAX_FRAME,
                                 allowed=CLIENT_ACCEPTS)

    def rebind(self, connection: Connection) -> None:
        """Attach to a freshly dialled connection after a reconnect.

        The old endpoint is neutralised (late in-flight segments must
        not reach the new parser), parsing restarts clean, and the RC4
        keystream restarts to mirror the server's re-key.  Framebuffer
        and cursor state survive: the resync stream builds on it.
        """
        if self.connection is not None:
            self.connection.down.disconnect()
        self.connection = connection
        self.parser = self._make_parser()
        if self._decrypt_key is not None:
            self.cipher = RC4(self._decrypt_key)
        connection.down.connect(self._on_data)

    def note_snapshot_resync(self) -> None:
        """The server dropped its replay log (snapshot resync): the
        next CHECKED sequence number is adopted without counting the
        inherent discontinuity as a gap."""
        self._seq_barrier = True

    # -- input injection (client -> server) ---------------------------------------

    def send_input(self, kind: str, x: int, y: int) -> None:
        # The pointer moves locally before the event reaches the server.
        self.cursor_pos = (x, y)
        msg = wire.InputMessage(kind, x, y, self.loop.now)
        self.connection.up.write(wire.encode_message(msg))

    def request_resize(self, width: int, height: int) -> None:
        """Report a new viewport size to the server (Section 6)."""
        self.connection.up.write(
            wire.encode_message(wire.ResizeMessage(width, height)))

    def request_refresh(self, rect) -> None:
        """Ask the server to resend a region (server coordinates)."""
        self.connection.up.write(
            wire.encode_message(wire.RefreshRequestMessage(rect)))

    def request_subscribe(self, mode: int = 0, cols: int = 0,
                          rows: int = 0, index: int = 0) -> None:
        """Join the broadcast fan-out plane (mirror by default; pass
        ``mode=wire.SUBSCRIBE_TILE`` plus a grid to claim a wall tile)."""
        self.connection.up.write(wire.encode_message(
            wire.SubscribeMessage(mode, cols, rows, index)))

    def request_zoom(self, rect) -> None:
        """Zoom the viewport onto a desktop region (Section 6); an
        empty rect zooms back out to the whole desktop."""
        self.connection.up.write(
            wire.encode_message(wire.ZoomRequestMessage(rect)))

    def send_qos_report(self, stream_id: int, units_total: int,
                        ideal_duration: float,
                        start_offset: float = 0.25) \
            -> wire.QosReportMessage:
        """Measure playback health and report it upstream.

        The paper's quality measures (Section 8.2) are computed where
        they are observable — at the client — from the arrival records
        this client already keeps: video slow-motion quality from the
        stream's frame span, audio quality from chunk timeliness, and
        A/V sync skew from the delivery-delay difference.  The caller
        supplies the source's ground truth (*units_total* frames over
        *ideal_duration* seconds).
        """
        from ..audio import sync

        vstats = self.video_stats.get(stream_id)
        frames = vstats.frames_received if vstats is not None else 0
        playback = 0.0
        if frames and units_total > 0 and ideal_duration > 0:
            actual = max(vstats.last_frame_time
                         - vstats.first_frame_time, 0.0)
            playback = sync.playback_quality(
                frames, units_total, ideal_duration, actual)
        audio_q = 1.0
        if self.audio.arrivals:
            audio_q = sync.audio_quality(
                self.audio.arrivals, self.audio.chunks_received,
                ideal_duration, start_offset=start_offset)
        skew = 0.0
        if vstats is not None and vstats.arrivals and units_total > 0:
            # Video arrivals carry frame numbers; the source cadence
            # turns them into server-side timestamps for the skew
            # comparison against audio's real timestamps.
            period = ideal_duration / units_total
            video_pairs = [(no * period, arr)
                           for no, arr in vstats.arrivals]
            skew = sync.av_sync_skew(self.audio.arrivals, video_pairs)
        msg = wire.QosReportMessage(
            stream_id, frames,
            min(1.0, max(0.0, playback)),
            min(1.0, max(0.0, audio_q)),
            min(LIMITS.max_av_skew, max(0.0, skew)))
        self.connection.up.write(wire.encode_message(msg))
        return msg

    # -- receive path ---------------------------------------------------------

    def _on_data(self, chunk: bytes) -> None:
        self.stats["bytes_received"] += len(chunk)
        self.stats["last_rx_time"] = self.loop.now
        if self.cipher is not None:
            chunk = self.cipher.process(chunk)
        try:
            messages = self.parser.feed(chunk)
            for msg in messages:
                self._handle(msg, len_hint=len(chunk))
        except (ValueError, KeyError, struct.error, zlib.error) as exc:
            # A corrupted stream can fail anywhere in parse/decode.
            # With a resilience hook installed the client reports the
            # damage and expects a resync; without one this is a real
            # bug and must surface.
            if self.on_protocol_error is None:
                raise
            self.stats["protocol_errors"] += 1
            self.parser = self._make_parser()
            self.on_protocol_error(exc)

    def _handle(self, msg, len_hint: int = 0) -> None:
        if isinstance(msg, wire.CheckedFrame):
            # Sequenced stream: skip anything already applied (resync
            # replays overlap by design — duplicates are benign, which
            # is what makes non-idempotent COPY safe to replay), and
            # record gaps, which a correct server never produces.
            if msg.seq <= self.last_applied_seq:
                self.stats["replay_skipped"] += 1
                return
            if self._seq_barrier:
                self._seq_barrier = False
            elif self.last_applied_seq and \
                    msg.seq > self.last_applied_seq + 1:
                self.stats["seq_gaps"] += 1
            self.last_applied_seq = msg.seq
            msg = msg.message
        self.stats["messages"] += 1
        now = self.loop.now
        if isinstance(msg, (wire.HeartbeatMessage,
                            wire.ReconnectAcceptMessage,
                            wire.ReconnectDeniedMessage)):
            # Session-plane traffic; arrival time alone is the signal
            # (a resilient wrapper tracks last_rx_time).
            return
        if isinstance(msg, wire.AttachDeniedMessage):
            # The governor turned this client away (admission refusal
            # or eviction).  Surface it cleanly — no exception, no
            # diagnosing a silent hangup.
            self.stats["attach_denied"] += 1
            self.attach_denied = msg
            if self.on_attach_denied is not None:
                self.on_attach_denied(msg)
            return
        if isinstance(msg, wire.ScreenInitMessage):
            if self.fb is None or (self.fb.width, self.fb.height) != (
                    msg.width, msg.height):
                self.fb = Framebuffer(msg.width, msg.height)
            return
        if isinstance(msg, wire.TileAssignMessage):
            # Display-wall membership: remember which sub-rectangle of
            # the virtual wall this panel owns.  The stream that
            # follows is already clipped to it (at 1:1), so execution
            # needs no change — the assignment is for placement and
            # wall reassembly.
            self.tile_assignment = msg
            return
        if isinstance(msg, wire.VideoSetupMessage):
            self.video_streams[msg.stream_id] = msg
            self.video_stats.setdefault(
                msg.stream_id, VideoStreamStats(msg.stream_id))
            return
        if isinstance(msg, wire.VideoMoveMessage):
            return
        if isinstance(msg, wire.VideoQualityMessage):
            # The server announced a ladder move; rung 0 means the
            # stream is back to full-rate video.
            if msg.rung == 0:
                self.video_quality.pop(msg.stream_id, None)
            else:
                self.video_quality[msg.stream_id] = msg
            return
        if isinstance(msg, wire.VideoTeardownMessage):
            self.video_streams.pop(msg.stream_id, None)
            self.video_quality.pop(msg.stream_id, None)
            return
        if isinstance(msg, wire.CursorImageMessage):
            import numpy as np

            self.cursor_image = np.frombuffer(
                msg.rgba, dtype=np.uint8).reshape(msg.height, msg.width, 4)
            self.cursor_hotspot = (msg.hot_x, msg.hot_y)
            return
        if isinstance(msg, wire.AudioChunkMessage):
            self.audio.chunks_received += 1
            self.audio.bytes_received += len(msg.samples)
            self.audio.arrivals.append((msg.timestamp, now))
            return
        if isinstance(msg, Command):
            self._execute(msg, now)
            return
        raise ValueError(f"client cannot handle message {msg!r}")

    def _execute(self, cmd: Command, now: float) -> None:
        kinds = self.stats["commands_by_kind"]
        kinds[cmd.kind] = kinds.get(cmd.kind, 0) + 1
        sizes = self.stats["bytes_by_kind"]
        sizes[cmd.kind] = sizes.get(cmd.kind, 0) + cmd.wire_size()
        npixels = cmd.dest.area
        self.stats["processing_time"] += self.cost_model.cost(
            cmd.wire_size(), npixels)
        self.stats["last_update_time"] = now
        if isinstance(cmd, VideoFrameCommand):
            vstats = self.video_stats.setdefault(
                cmd.stream_id, VideoStreamStats(cmd.stream_id))
            vstats.frames_received += 1
            vstats.frame_numbers.append(cmd.frame_no)
            vstats.arrivals.append((cmd.frame_no, now))
            if vstats.first_frame_time is None:
                vstats.first_frame_time = now
            vstats.last_frame_time = now
        if not self.headless and self.fb is not None:
            cmd.apply(self.fb)

    # -- analysis helpers ---------------------------------------------------------

    def total_commands(self) -> int:
        return sum(self.stats["commands_by_kind"].values())

    def done_time_with_processing(self) -> float:
        """Last-update time plus modelled client processing time."""
        return self.stats["last_update_time"] + self.stats["processing_time"]

    def render_with_cursor(self):
        """The displayed image: framebuffer with the cursor composited.

        The hardware cursor is an overlay — the framebuffer itself never
        contains it — so tests that want "what the user sees" ask here.
        """
        if self.fb is None:
            return None
        view = self.fb.clone()
        if self.cursor_image is not None:
            from ..region import Rect

            x = self.cursor_pos[0] - self.cursor_hotspot[0]
            y = self.cursor_pos[1] - self.cursor_hotspot[1]
            h, w = self.cursor_image.shape[:2]
            view.composite(Rect(x, y, w, h), self.cursor_image)
        return view
