"""The THINC server: sessions, framing, encryption, push delivery.

The server owns one :class:`~repro.core.translation.THINCDriver` (which
plugs into the window server as its video driver) and any number of
client sessions.  Display updates flow through the staged pipeline of
:mod:`repro.core.pipeline`: translated commands are admitted once,
scaled and compressed once per distinct viewport on the shared
**prepare plane**, and then fanned out to each session, whose own state
is only the scheduler-backed buffer, the optional RC4 stream cipher
(Section 7) and the flush machinery.  Updates are *pushed*: whenever
work is buffered the session schedules flush periods on the event loop
and commits as much as the non-blocking transport will take.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..display.driver import InputEvent, VideoStreamInfo
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import (Command, CompositeCommand, RawCommand,
                                 VideoFrameCommand)
from ..protocol.rc4 import RC4
from ..region import Rect
from . import pipeline
from . import sanitizer as _sanitizer
from .delivery import ClientBuffer
from .resize import DisplayScaler, resample, scale_rect
from .scheduler import SRSFScheduler
from .translation import THINCDriver

__all__ = ["THINCServer", "THINCSession", "ServerCostModel"]

FLUSH_INTERVAL = 0.002  # seconds between flush periods while backlogged


class ServerCostModel:
    """Server CPU accounting for command preparation.

    Translation itself is almost free — that is the point of the design
    — but RAW payload compression is not (Section 8.3 observes THINC
    losing to cheap-codec systems on single-large-image pages exactly
    because of PNG compression time).  Rates are calibrated to the
    paper's dual-933 MHz PIII server.  Video frames are only copied,
    never re-encoded: the architectural win behind Figure 5.
    """

    png_bytes_per_second = 16e6  # PNG-model filter + DEFLATE
    copy_bytes_per_second = 400e6  # packetising video/audio payloads
    per_command = 2e-6  # translation bookkeeping

    def cost(self, command) -> float:
        cpu = self.per_command
        if isinstance(command, RawCommand) and command.compress:
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, CompositeCommand):
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, VideoFrameCommand):
            cpu += len(command.yuv_bytes) / self.copy_bytes_per_second
        return cpu


class THINCSession:
    """Per-client server state: buffer/schedule, frame/encrypt, flush.

    Scaling and compression live on the server's shared prepare plane;
    the session only receives already-prepared commands through
    :meth:`enqueue_prepared`.
    """

    def __init__(self, server: "THINCServer", connection: Connection,
                 viewport=None, encrypt_key: Optional[bytes] = None):
        self.server = server
        self.connection = connection
        self.loop = server.loop
        self.viewport = viewport or (server.width, server.height)
        self.scaler = DisplayScaler((server.width, server.height),
                                    self.viewport)
        self.frame_stage = pipeline.FrameStage(
            RC4(encrypt_key) if encrypt_key else None)
        self.buffer = ClientBuffer(
            scheduler=server.scheduler_factory(),
            merge=server.merge,
            frame=self.frame_stage.frame,
        )
        self._control: Deque[bytes] = deque()
        self._audio: Deque[bytes] = deque()
        self._flush_scheduled = False
        # Monotonic per-session enqueue horizon: a cache hit on the
        # prepare plane can be ready *before* this session's previously
        # submitted work, and the buffer stage must still see commands
        # in submission order (see repro.core.pipeline module docs).
        self._pipe_tail = 0.0
        self.stats = {"messages_sent": 0, "bytes_sent": 0,
                      "flush_periods": 0, "cpu_time": 0.0}
        connection.up.connect(self._on_client_data)
        self._parser = wire.StreamParser()
        self.queue_control(wire.ScreenInitMessage(*self.viewport))

    @property
    def cipher(self):
        return self.frame_stage.cipher

    # -- framing ------------------------------------------------------------

    def _frame(self, msg) -> bytes:
        return self.frame_stage.frame(msg)

    # -- enqueue paths ---------------------------------------------------------

    def submit(self, command: Command) -> None:
        """Route a display command through the shared prepare plane.

        Preparation (scaling + compression) costs real server CPU; a
        command only becomes sendable once prepared.  The plane's cache
        means a command another same-viewport session already paid for
        arrives here for free.
        """
        self.server.plane.submit(command, (self,))

    def enqueue_prepared(self, command: Command,
                         ready_at: float = 0.0) -> None:
        """Buffer a prepared command once its CPU completion time passes.

        Clamped to the session's pipe tail so adds stay in submission
        order even when a cache hit is ready before earlier work.
        """
        ready = max(ready_at, self._pipe_tail)
        self._pipe_tail = ready
        _sanitizer.check_pipe_tail(self, ready)
        if ready <= self.loop.now:
            self._add_to_buffer(command)
        else:
            self.loop.schedule(ready - self.loop.now,
                               lambda c=command: self._add_to_buffer(c))

    def _add_to_buffer(self, command: Command) -> None:
        self.buffer.add(command, now=self.loop.now)
        self._kick()

    def queue_control(self, message) -> None:
        self._control.append(self._frame(message))
        self._kick()

    def queue_audio(self, timestamp: float, samples: bytes) -> None:
        self._audio.append(
            self._frame(wire.AudioChunkMessage(timestamp, samples)))
        self._kick()

    def note_input(self, event: InputEvent) -> None:
        # Input arrives in session coordinates; the real-time region is
        # matched against commands already mapped into this client's
        # (possibly zoomed, scaled) viewport space.
        x, y = self.scaler.map_point(event.x, event.y)
        self.buffer.note_input(x, y, event.time)

    # -- flush machinery ----------------------------------------------------------

    def _kick(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.schedule(0.0, self._flush)

    def pending(self) -> bool:
        return bool(self._control or self._audio
                    or self.buffer.pending_commands())

    def _flush(self) -> None:
        self._flush_scheduled = False
        self.stats["flush_periods"] += 1
        writer = self.connection.down
        # Control messages first (tiny, order-sensitive), then audio
        # (latency-sensitive), then display commands in SRSF order.
        for fifo in (self._control, self._audio):
            while fifo and len(fifo[0]) <= writer.writable_bytes():
                data = fifo.popleft()
                writer.write(data)
                self.stats["messages_sent"] += 1
                self.stats["bytes_sent"] += len(data)
        if not self._control:
            result = self.buffer.flush(writer)
            self.stats["messages_sent"] += result.commands_sent
            self.stats["bytes_sent"] += result.bytes_written
        if self.pending():
            self._flush_scheduled = True
            self.loop.schedule(FLUSH_INTERVAL, self._flush)

    # -- instrumentation -----------------------------------------------------

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters for this session's half of the pipeline."""
        bstats = self.buffer.stats
        return {
            "buffer": {
                "commands_in": bstats["commands_in"],
                "commands_out": bstats["commands_out"],
                "bytes_out": bstats["bytes_out"],
                "commands_split": bstats["commands_split"],
                "queue_depth": self.buffer.pending_commands(),
            },
            "frame": self.frame_stage.stats.as_dict(),
            "flush": {
                "flush_periods": self.stats["flush_periods"],
                "commands_out": self.stats["messages_sent"],
                "bytes_out": self.stats["bytes_sent"],
                "queue_depth": len(self._control) + len(self._audio),
            },
        }

    # -- client-to-server traffic ---------------------------------------------

    def _on_client_data(self, chunk: bytes) -> None:
        # Client->server traffic is not encrypted in this model (input
        # events only; the paper encrypts both ways but RC4 is
        # size-preserving so accounting is identical).
        for msg in self._parser.feed(chunk):
            self.server.handle_client_message(self, msg)


class THINCServer:
    """The THINC server core, acting as the translation layer's sink."""

    def __init__(self, loop: EventLoop, width: int, height: int,
                 compress_raw: bool = True,
                 offscreen_awareness: bool = True,
                 merge: bool = True,
                 scheduler_factory: Callable[[], object] = SRSFScheduler,
                 encrypt_key: Optional[bytes] = None,
                 cost_model: Optional[ServerCostModel] = None,
                 prepare_cache_entries: int = 128):
        self.loop = loop
        self.cost_model = cost_model or ServerCostModel()
        self.width = width
        self.height = height
        self.merge = merge
        self.scheduler_factory = scheduler_factory
        self.encrypt_key = encrypt_key
        self.driver = THINCDriver(self, compress_raw=compress_raw,
                                  offscreen_awareness=offscreen_awareness)
        self.translate = pipeline.TranslateStage()
        self.plane = pipeline.PreparePlane(
            loop, self.cost_model, cache_entries=prepare_cache_entries)
        self.sessions: List[THINCSession] = []
        # Callback invoked with (session, InputMessage) for every input
        # event a client sends; the testbed wires this to the window
        # server and the workload's think-time logic.
        self.input_handler: Optional[Callable] = None

    # -- session management -----------------------------------------------------

    def attach_client(self, connection: Connection,
                      viewport=None) -> THINCSession:
        """Attach a client; a mid-session join receives the current
        screen contents (the mobility story: connect from any client,
        resume the same persistent session)."""
        session = THINCSession(self, connection, viewport,
                               encrypt_key=self.encrypt_key)
        self.sessions.append(session)
        self._submit_refresh(session)
        # Active video streams need no replay: frames are self-contained
        # and the next one repaints the stream's destination.
        return session

    def detach_client(self, session: THINCSession) -> None:
        self.sessions.remove(session)

    def _submit_refresh(self, session: THINCSession,
                        rect: Optional[Rect] = None) -> None:
        """Push current screen content for *rect* (whole screen when
        None) to one session as a RAW update."""
        screen = self.driver.screen_drawable
        if screen is None:
            return
        rect = screen.bounds if rect is None else rect
        session.submit(RawCommand(rect, screen.fb.read_pixels(rect),
                                  compress=self.driver.compress_raw))

    # -- UpdateSink interface (called by THINCDriver) ------------------------------

    def submit(self, command: Command) -> None:
        self.plane.submit(self.translate.admit(command), self.sessions)

    def video_setup(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(wire.VideoSetupMessage(
                stream.stream_id, stream.pixel_format,
                stream.src_width, stream.src_height, dst))

    def video_move(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(
                wire.VideoMoveMessage(stream.stream_id, dst))

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            session.queue_control(
                wire.VideoTeardownMessage(stream.stream_id))

    def cursor_set(self, pixels, hotspot) -> None:
        for session in self.sessions:
            img, (hx, hy) = pixels, hotspot
            if not session.scaler.identity:
                sx, sy = session.scaler.sx, session.scaler.sy
                w = max(1, int(round(img.shape[1] * sx)))
                h = max(1, int(round(img.shape[0] * sy)))
                img = resample(img, w, h)
                hx = min(int(hx * sx), w - 1)
                hy = min(int(hy * sy), h - 1)
            session.queue_control(wire.CursorImageMessage(
                hx, hy, img.shape[1], img.shape[0], img.tobytes()))

    def note_input(self, event: InputEvent) -> None:
        for session in self.sessions:
            session.note_input(event)

    # -- audio (Section 4.2's virtual audio driver feeds this) ---------------------

    def submit_audio(self, timestamp: float, samples: bytes) -> None:
        for session in self.sessions:
            session.queue_audio(timestamp, samples)

    # -- upstream traffic ------------------------------------------------------------

    def handle_client_message(self, session: THINCSession, msg) -> None:
        if isinstance(msg, wire.ZoomRequestMessage):
            view = msg.rect.intersect(
                Rect(0, 0, self.width, self.height))
            if view.empty:
                view = None  # zoom out to the full desktop
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport,
                                           view_rect=view)
            # Push the content of the new view at its new resolution
            # ("the client ... requests updated content from the
            # server" when the display size increases).
            self._submit_refresh(session, rect=view)
            return
        if isinstance(msg, wire.RefreshRequestMessage):
            screen = self.driver.screen_drawable
            if screen is not None:
                rect = msg.rect.intersect(screen.bounds)
                if rect:
                    self._submit_refresh(session, rect=rect)
            return
        if isinstance(msg, wire.ResizeMessage):
            session.viewport = (msg.width, msg.height)
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport)
            # The client's framebuffer geometry changes, and it only has
            # a resampled version of the display — push the new geometry
            # and a full-screen refresh (Section 6: "the client requests
            # updated content from the server").
            session.queue_control(wire.ScreenInitMessage(*session.viewport))
            self._submit_refresh(session)
        elif self.input_handler is not None:
            self.input_handler(session, msg)

    # -- diagnostics ----------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, float]:
        """Headline server counters (CPU spent preparing, cache hit rate)."""
        plane = self.plane.stats
        return {
            "cpu_time": plane.cpu_seconds,
            "prepare_cache_hits": plane.cache_hits,
            "prepare_cache_misses": plane.cache_misses,
            "commands_translated": self.translate.stats.commands_in,
        }

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters across the whole pipeline.

        Shared stages (translate/scale/prepare) are reported directly;
        per-session stages (buffer/frame/flush) are summed over attached
        sessions, except queue depths which are point-in-time gauges.
        """
        stats: Dict[str, Dict[str, float]] = {
            "translate": {
                **self.translate.stats.as_dict(),
                "driver_ops": self.driver.stats.get("driver_ops", 0),
            },
            "scale": self.plane.scale_stats.as_dict(),
            "prepare": {
                **self.plane.stats.as_dict(),
                "cache_entries": self.plane.cache_size(),
            },
        }
        for name in ("buffer", "frame", "flush"):
            merged: Dict[str, float] = {}
            for session in self.sessions:
                for k, v in session.pipeline_stats()[name].items():
                    merged[k] = merged.get(k, 0) + v
            stats[name] = merged
        return stats

    def pending(self) -> bool:
        return any(s.pending() for s in self.sessions)
