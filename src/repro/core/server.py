"""The THINC server: sessions, framing, encryption, push delivery.

The server owns one :class:`~repro.core.translation.THINCDriver` (which
plugs into the window server as its video driver) and any number of
client sessions.  Display updates flow through the staged pipeline of
:mod:`repro.core.pipeline`: translated commands are admitted once,
scaled and compressed once per distinct viewport on the shared
**prepare plane**, and then fanned out to each session, whose own state
is only the scheduler-backed buffer, the optional RC4 stream cipher
(Section 7) and the flush machinery.  Updates are *pushed*: whenever
work is buffered the session schedules flush periods on the event loop
and commits as much as the non-blocking transport will take.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..display.driver import InputEvent, VideoStreamInfo
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import (Command, CompositeCommand, RawCommand,
                                 VideoFrameCommand)
from ..protocol.limits import LIMITS
from ..protocol.rc4 import RC4
from ..protocol.spec import UPLINK_TYPE_IDS
from ..region import Rect
from . import pipeline
from . import sanitizer as _sanitizer
from .delivery import ClientBuffer
from .governor import Budget, Governor, ServerBudget
from .resize import DisplayScaler, resample, scale_rect
from .scheduler import SRSFScheduler
from .translation import THINCDriver

__all__ = ["THINCServer", "THINCSession", "ServerCostModel"]

FLUSH_INTERVAL = 0.002  # seconds between flush periods while backlogged


class _SessionWriter:
    """The session's write-side proxy over the transport endpoint.

    Three concerns live here rather than in the framing stage so they
    happen only for bytes that actually reach the socket:

    * **encryption** — frames are plaintext until written (framing a
      split head that then fails the fit check must not consume RC4
      keystream, and journaled frames must be re-encryptable under a
      fresh key after a reconnect);
    * **sequencing** — resilient sessions wrap every outgoing frame in
      a CHECKED wrapper whose sequence number is assigned in *send*
      order, so the client's cumulative ack and the replay log agree
      byte-for-byte about what the client may have seen; and
    * **journaling** — each wrapped plaintext frame is handed to the
      resilience plane's per-session log before encryption.

    ``writable_bytes`` subtracts the wrapper overhead so the flush
    stage's size arithmetic keeps working unchanged.
    """

    def __init__(self, session: "THINCSession", sequenced: bool):
        self.session = session
        self.sequenced = sequenced
        self.overhead = wire.CHECKED_OVERHEAD if sequenced else 0
        self.last_seq = 0
        self.total_bytes = 0

    def _endpoint(self):
        return self.session.connection.down

    def writable_bytes(self) -> int:
        return max(0, self._endpoint().writable_bytes() - self.overhead)

    def write(self, data: bytes) -> None:
        if self.sequenced:
            self.last_seq += 1
            data = wire.wrap_checked(data, self.last_seq)
            if self.session.journal is not None:
                self.session.journal(self.last_seq, data)
        self.total_bytes += len(data)
        self._endpoint().write(self.session.frame_stage.encrypt(data))

    def write_prewrapped(self, data: bytes) -> None:
        """Write an already-wrapped frame (resync replay): encrypt
        only — it carries its original sequence number and is already
        in the journal."""
        self.total_bytes += len(data)
        self._endpoint().write(self.session.frame_stage.encrypt(data))

    def prewrapped_writable(self) -> int:
        return self._endpoint().writable_bytes()


class ServerCostModel:
    """Server CPU accounting for command preparation.

    Translation itself is almost free — that is the point of the design
    — but RAW payload compression is not (Section 8.3 observes THINC
    losing to cheap-codec systems on single-large-image pages exactly
    because of PNG compression time).  Rates are calibrated to the
    paper's dual-933 MHz PIII server.  Video frames are only copied,
    never re-encoded: the architectural win behind Figure 5.
    """

    png_bytes_per_second = 16e6  # PNG-model filter + DEFLATE
    copy_bytes_per_second = 400e6  # packetising video/audio payloads
    per_command = 2e-6  # translation bookkeeping

    def cost(self, command) -> float:
        cpu = self.per_command
        if isinstance(command, RawCommand) and command.compress:
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, CompositeCommand):
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, VideoFrameCommand):
            cpu += len(command.yuv_bytes) / self.copy_bytes_per_second
        return cpu


class THINCSession:
    """Per-client server state: buffer/schedule, frame/encrypt, flush.

    Scaling and compression live on the server's shared prepare plane;
    the session only receives already-prepared commands through
    :meth:`enqueue_prepared`.
    """

    def __init__(self, server: "THINCServer", connection: Connection,
                 viewport=None, encrypt_key: Optional[bytes] = None,
                 sequenced: bool = False):
        self.server = server
        self.connection = connection
        self.loop = server.loop
        self.viewport = viewport or (server.width, server.height)
        self.scaler = DisplayScaler((server.width, server.height),
                                    self.viewport)
        self._encrypt_key = encrypt_key
        self.frame_stage = pipeline.FrameStage(
            RC4(encrypt_key) if encrypt_key else None)
        self.buffer = ClientBuffer(
            scheduler=server.scheduler_factory(),
            merge=server.merge,
            frame=self.frame_stage.frame,
        )
        # Resilience state: a detached session buffers but does not
        # flush; the plane sets ``journal`` to log sent frames, fills
        # ``_replay`` on resync, and toggles degraded/shed flags.
        self.sequenced = sequenced
        self._writer = _SessionWriter(self, sequenced)
        self.journal: Optional[Callable[[int, bytes], None]] = None
        self.detached = False
        self.degraded = False
        self.shed_display = False
        self.quarantined = False
        self._replay: Deque[bytes] = deque()
        self._control: Deque[bytes] = deque()
        self._audio: Deque[bytes] = deque()
        # Byte gauges over the control/audio queues, maintained at the
        # append/pop sites so the governor's backlog checks stay O(1).
        self._control_bytes = 0
        self._audio_bytes = 0
        self._flush_scheduled = False
        # Monotonic per-session enqueue horizon: a cache hit on the
        # prepare plane can be ready *before* this session's previously
        # submitted work, and the buffer stage must still see commands
        # in submission order (see repro.core.pipeline module docs).
        self._pipe_tail = 0.0
        self.stats = {"messages_sent": 0, "bytes_sent": 0,
                      "flush_periods": 0, "cpu_time": 0.0,
                      "audio_dropped": 0, "display_shed": 0,
                      "uplink_dropped": 0, "wire_errors": 0}
        connection.up.connect(self._on_client_data)
        self.reset_parser()
        self.queue_control(wire.ScreenInitMessage(*self.viewport))

    @property
    def cipher(self):
        return self.frame_stage.cipher

    # -- framing ------------------------------------------------------------

    def _frame(self, msg) -> bytes:
        return self.frame_stage.frame(msg)

    # -- enqueue paths ---------------------------------------------------------

    def submit(self, command: Command) -> None:
        """Route a display command through the shared prepare plane.

        Preparation (scaling + compression) costs real server CPU; a
        command only becomes sendable once prepared.  The plane's cache
        means a command another same-viewport session already paid for
        arrives here for free.
        """
        self.server.plane.submit(command, (self,))

    def enqueue_prepared(self, command: Command,
                         ready_at: float = 0.0) -> None:
        """Buffer a prepared command once its CPU completion time passes.

        Clamped to the session's pipe tail so adds stay in submission
        order even when a cache hit is ready before earlier work.
        """
        ready = max(ready_at, self._pipe_tail)
        self._pipe_tail = ready
        _sanitizer.check_pipe_tail(self, ready)
        if ready <= self.loop.now:
            self._add_to_buffer(command)
        else:
            self.loop.schedule(ready - self.loop.now,
                               lambda c=command: self._add_to_buffer(c))

    def _add_to_buffer(self, command: Command) -> None:
        if self.shed_display or self.quarantined:
            # The detach window expired and the queue was dropped (or
            # the governor evicted the session): the reconnect resync
            # will be a snapshot of *current* content, so buffering
            # more display work is pure waste.
            self.stats["display_shed"] += 1
            return
        self.buffer.add(command, now=self.loop.now)
        self.server.governor.after_display_add(self)
        self._kick()

    def queue_control(self, message) -> None:
        if self.quarantined:
            return
        data = self._frame(message)
        self._control.append(data)
        self._control_bytes += len(data)
        self.server.governor.after_control_add(self)
        self._kick()

    def queue_audio(self, timestamp: float, samples: bytes) -> None:
        if self.detached or self.degraded or self.quarantined:
            # Audio is useless late: a detached client cannot hear it
            # and a congested pipe should spend its bytes on display
            # updates (graceful degradation sheds audio first).
            self.stats["audio_dropped"] += 1
            return
        data = self._frame(wire.AudioChunkMessage(timestamp, samples))
        self._audio.append(data)
        self._audio_bytes += len(data)
        self.server.governor.after_audio_add(self)
        self._kick()

    # -- governance gauges and hooks -----------------------------------------

    @property
    def audio_backlog_bytes(self) -> int:
        return self._audio_bytes

    @property
    def control_backlog_bytes(self) -> int:
        return self._control_bytes

    def drop_oldest_audio(self) -> None:
        data = self._audio.popleft()
        self._audio_bytes -= len(data)
        self.stats["audio_dropped"] += 1

    def clear_audio(self) -> None:
        self._audio.clear()
        self._audio_bytes = 0

    def reset_parser(self) -> None:
        """(Re)create the uplink parser with the typed wire limits:
        small frames only, a bounded reassembly buffer, and only
        client-to-server message types accepted."""
        self._parser = wire.StreamParser(
            max_frame=LIMITS.max_uplink_frame_bytes,
            max_pending=LIMITS.max_uplink_pending_bytes,
            allowed=UPLINK_TYPE_IDS)

    def note_input(self, event: InputEvent) -> None:
        # Input arrives in session coordinates; the real-time region is
        # matched against commands already mapped into this client's
        # (possibly zoomed, scaled) viewport space.
        x, y = self.scaler.map_point(event.x, event.y)
        self.buffer.note_input(x, y, event.time)

    # -- flush machinery ----------------------------------------------------------

    def _kick(self) -> None:
        if self.detached:
            return  # rebind() re-kicks when a connection is back
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.schedule(0.0, self._flush)

    def pending(self) -> bool:
        return bool(self._replay or self._control or self._audio
                    or self.buffer.pending_commands())

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self.detached:
            return  # no socket to write to; rebind() resumes flushing
        self.stats["flush_periods"] += 1
        writer = self._writer
        sent_before = writer.total_bytes
        # Resync replay drains first (the client must catch up to the
        # stream point before new frames make sense), then control
        # messages (tiny, order-sensitive), then audio
        # (latency-sensitive), then display commands in SRSF order.
        while self._replay and \
                len(self._replay[0]) <= writer.prewrapped_writable():
            writer.write_prewrapped(self._replay.popleft())
            self.stats["messages_sent"] += 1
        for fifo in (self._control, self._audio):
            if self._replay:
                break
            while fifo and len(fifo[0]) <= writer.writable_bytes():
                data = fifo.popleft()
                if fifo is self._control:
                    self._control_bytes -= len(data)
                else:
                    self._audio_bytes -= len(data)
                writer.write(data)
                self.stats["messages_sent"] += 1
        if not self._replay and not self._control:
            result = self.buffer.flush(writer)
            self.stats["messages_sent"] += result.commands_sent
        self.stats["bytes_sent"] += writer.total_bytes - sent_before
        if self.pending():
            self._flush_scheduled = True
            self.loop.schedule(FLUSH_INTERVAL, self._flush)

    # -- resilience hooks (driven by repro.core.resilience) -------------------

    def detach(self) -> None:
        """The plane lost the client: stop flushing, keep absorbing.

        The command queue keeps taking display updates (eviction keeps
        it minimal — exactly the Section 4 replay invariant the resync
        relies on); audio is shed; control messages are preserved.
        """
        self.detached = True

    def rebind(self, connection: Connection) -> None:
        """Bind this session to a freshly dialled connection.

        The old endpoint's receiver is neutralised so late in-flight
        segments cannot reach the new parser, the parser restarts
        clean, and both sides restart their RC4 keystreams (the replay
        log holds plaintext frames, re-encrypted on the way out).
        """
        if self.connection is not None:
            self.connection.up.disconnect()
        self.connection = connection
        connection.up.connect(self._on_client_data)
        self.reset_parser()
        if self._encrypt_key is not None:
            self.frame_stage.rekey(RC4(self._encrypt_key))
        self.detached = False
        self._kick()

    # -- instrumentation -----------------------------------------------------

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters for this session's half of the pipeline."""
        bstats = self.buffer.stats
        return {
            "buffer": {
                "commands_in": bstats["commands_in"],
                "commands_out": bstats["commands_out"],
                "bytes_out": bstats["bytes_out"],
                "commands_split": bstats["commands_split"],
                "queue_depth": self.buffer.pending_commands(),
            },
            "frame": self.frame_stage.stats.as_dict(),
            "flush": {
                "flush_periods": self.stats["flush_periods"],
                "commands_out": self.stats["messages_sent"],
                "bytes_out": self.stats["bytes_sent"],
                "queue_depth": len(self._control) + len(self._audio),
            },
        }

    # -- client-to-server traffic ---------------------------------------------

    def _on_client_data(self, chunk: bytes) -> None:
        # Client->server traffic is not encrypted in this model (input
        # events only; the paper encrypts both ways but RC4 is
        # size-preserving so accounting is identical).
        if self.quarantined:
            return
        governor = self.server.governor
        try:
            for msg in self._parser.feed(chunk):
                if not governor.allow_uplink(self):
                    self.stats["uplink_dropped"] += 1
                    continue
                self.server.handle_client_message(self, msg)
        except (ValueError, KeyError, struct.error, zlib.error) as exc:
            # Any decode failure is a session-scoped event, never a
            # server crash: the governor either resets the parser (a
            # resilient session on a lossy link — heartbeats repeat and
            # the liveness clock already advanced when the bytes
            # arrived) or quarantines and detaches the session.
            self.stats["wire_errors"] += 1
            governor.on_wire_error(self, exc)


class THINCServer:
    """The THINC server core, acting as the translation layer's sink."""

    def __init__(self, loop: EventLoop, width: int, height: int,
                 compress_raw: bool = True,
                 offscreen_awareness: bool = True,
                 merge: bool = True,
                 scheduler_factory: Callable[[], object] = SRSFScheduler,
                 encrypt_key: Optional[bytes] = None,
                 cost_model: Optional[ServerCostModel] = None,
                 prepare_cache_entries: int = 128,
                 resilience=None,
                 budget: Optional[Budget] = None,
                 server_budget: Optional[ServerBudget] = None):
        self.loop = loop
        self.cost_model = cost_model or ServerCostModel()
        self.width = width
        self.height = height
        self.merge = merge
        self.scheduler_factory = scheduler_factory
        self.encrypt_key = encrypt_key
        self.driver = THINCDriver(self, compress_raw=compress_raw,
                                  offscreen_awareness=offscreen_awareness)
        self.translate = pipeline.TranslateStage()
        self.plane = pipeline.PreparePlane(
            loop, self.cost_model, cache_entries=prepare_cache_entries)
        self.sessions: List[THINCSession] = []
        # Callback invoked with (session, InputMessage) for every input
        # event a client sends; the testbed wires this to the window
        # server and the workload's think-time logic.
        self.input_handler: Optional[Callable] = None
        # Session resilience plane (liveness, reconnect, resync); pass
        # a ResilienceConfig to enable.  Clients then attach through
        # ``server.resilience.accept`` instead of ``attach_client``.
        if resilience is not None:
            from .resilience import ResiliencePlane
            self.resilience = ResiliencePlane(self, resilience)
        else:
            self.resilience = None
        # Resource governance: per-session budgets enforced at the
        # queue/uplink chokepoints plus server-wide admission control.
        self.governor = Governor(self, budget, server_budget)

    # -- session management -----------------------------------------------------

    def attach_client(self, connection: Connection,
                      viewport=None) -> THINCSession:
        """Attach a client; a mid-session join receives the current
        screen contents (the mobility story: connect from any client,
        resume the same persistent session).

        Raises :class:`~repro.core.governor.AdmissionDenied` (after
        writing a typed :class:`~repro.protocol.wire.AttachDeniedMessage`
        down the connection) when the server is past its global
        admission budget."""
        # Active video streams need no replay: frames are self-contained
        # and the next one repaints the stream's destination.
        self.governor.admit(connection)
        return self._make_session(connection, viewport)

    def _make_session(self, connection: Connection, viewport=None,
                      sequenced: bool = False) -> THINCSession:
        session = THINCSession(self, connection, viewport,
                               encrypt_key=self.encrypt_key,
                               sequenced=sequenced)
        self.sessions.append(session)
        self.governor.register(session)
        self._submit_refresh(session)
        return session

    def detach_client(self, session: THINCSession) -> None:
        self.sessions.remove(session)
        self.governor.forget(session)

    def _submit_refresh(self, session: THINCSession,
                        rect: Optional[Rect] = None,
                        chunk_rows: Optional[int] = None) -> None:
        """Push current screen content for *rect* (whole screen when
        None) to one session as a RAW update.

        ``chunk_rows`` splits the refresh into row bands of at most
        that height — the snapshot resync path uses it so a recovering
        client never faces one monolithic frame that cannot squeeze
        through a congested pipe's flush budget.
        """
        screen = self.driver.screen_drawable
        if screen is None:
            return
        rect = screen.bounds if rect is None else rect
        if chunk_rows is None or rect.height <= chunk_rows:
            session.submit(RawCommand(rect, screen.fb.read_pixels(rect),
                                      compress=self.driver.compress_raw))
            return
        bottom = rect.y + rect.height
        for y in range(rect.y, bottom, chunk_rows):
            band = Rect(rect.x, y, rect.width, min(chunk_rows, bottom - y))
            session.submit(RawCommand(band, screen.fb.read_pixels(band),
                                      compress=self.driver.compress_raw))

    # -- UpdateSink interface (called by THINCDriver) ------------------------------

    def submit(self, command: Command) -> None:
        self.plane.submit(self.translate.admit(command), self.sessions)

    def video_setup(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(wire.VideoSetupMessage(
                stream.stream_id, stream.pixel_format,
                stream.src_width, stream.src_height, dst))

    def video_move(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(
                wire.VideoMoveMessage(stream.stream_id, dst))

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            session.queue_control(
                wire.VideoTeardownMessage(stream.stream_id))

    def cursor_set(self, pixels, hotspot) -> None:
        for session in self.sessions:
            img, (hx, hy) = pixels, hotspot
            if not session.scaler.identity:
                sx, sy = session.scaler.sx, session.scaler.sy
                w = max(1, int(round(img.shape[1] * sx)))
                h = max(1, int(round(img.shape[0] * sy)))
                img = resample(img, w, h)
                hx = min(int(hx * sx), w - 1)
                hy = min(int(hy * sy), h - 1)
            session.queue_control(wire.CursorImageMessage(
                hx, hy, img.shape[1], img.shape[0], img.tobytes()))

    def note_input(self, event: InputEvent) -> None:
        for session in self.sessions:
            session.note_input(event)

    # -- audio (Section 4.2's virtual audio driver feeds this) ---------------------

    def submit_audio(self, timestamp: float, samples: bytes) -> None:
        for session in self.sessions:
            session.queue_audio(timestamp, samples)

    # -- upstream traffic ------------------------------------------------------------

    def handle_client_message(self, session: THINCSession, msg) -> None:
        if self.resilience is not None and \
                self.resilience.handle_session_message(session, msg):
            return
        if isinstance(msg, wire.ZoomRequestMessage):
            view = msg.rect.intersect(
                Rect(0, 0, self.width, self.height))
            if view.empty:
                view = None  # zoom out to the full desktop
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport,
                                           view_rect=view)
            # Push the content of the new view at its new resolution
            # ("the client ... requests updated content from the
            # server" when the display size increases).
            self._submit_refresh(session, rect=view)
            return
        if isinstance(msg, wire.RefreshRequestMessage):
            screen = self.driver.screen_drawable
            if screen is not None:
                rect = msg.rect.intersect(screen.bounds)
                if rect:
                    self._submit_refresh(session, rect=rect)
            return
        if isinstance(msg, wire.ResizeMessage):
            # Never trust client geometry: the decode layer bounds it,
            # but this handler is also reachable with locally built
            # messages — clamp to [1, max_viewport_dim] so a degenerate
            # viewport can never reach the scaler's division.
            session.viewport = (
                max(1, min(msg.width, LIMITS.max_viewport_dim)),
                max(1, min(msg.height, LIMITS.max_viewport_dim)))
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport)
            # The client's framebuffer geometry changes, and it only has
            # a resampled version of the display — push the new geometry
            # and a full-screen refresh (Section 6: "the client requests
            # updated content from the server").
            session.queue_control(wire.ScreenInitMessage(*session.viewport))
            self._submit_refresh(session)
        elif self.input_handler is not None:
            self.input_handler(session, msg)

    # -- diagnostics ----------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, float]:
        """Headline server counters (CPU spent preparing, cache hit rate)."""
        plane = self.plane.stats
        out = {
            "cpu_time": plane.cpu_seconds,
            "prepare_cache_hits": plane.cache_hits,
            "prepare_cache_misses": plane.cache_misses,
            "commands_translated": self.translate.stats.commands_in,
            "sessions": len(self.sessions),
        }
        for key, value in self.governor.stats.as_dict().items():
            out[f"governor_{key}"] = value
        return out

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters across the whole pipeline.

        Shared stages (translate/scale/prepare) are reported directly;
        per-session stages (buffer/frame/flush) are summed over attached
        sessions, except queue depths which are point-in-time gauges.
        """
        stats: Dict[str, Dict[str, float]] = {
            "translate": {
                **self.translate.stats.as_dict(),
                "driver_ops": self.driver.stats.get("driver_ops", 0),
            },
            "scale": self.plane.scale_stats.as_dict(),
            "prepare": {
                **self.plane.stats.as_dict(),
                "cache_entries": self.plane.cache_size(),
            },
        }
        for name in ("buffer", "frame", "flush"):
            merged: Dict[str, float] = {}
            for session in self.sessions:
                for k, v in session.pipeline_stats()[name].items():
                    merged[k] = merged.get(k, 0) + v
            stats[name] = merged
        return stats

    def pending(self) -> bool:
        return any(s.pending() for s in self.sessions)
