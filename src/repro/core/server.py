"""The THINC server: a thin shard host over session units.

The server owns one :class:`~repro.core.translation.THINCDriver` (which
plugs into the window server as its video driver) and any number of
client sessions.  Display updates flow through the staged pipeline of
:mod:`repro.core.pipeline`: translated commands are admitted once,
scaled and compressed once per distinct viewport on the shared
**prepare plane**, and then fanned out to each session, whose own state
is only the scheduler-backed buffer, the optional RC4 stream cipher
(Section 7) and the flush machinery.  Updates are *pushed*: whenever
work is buffered the session schedules flush periods on the event loop
and commits as much as the non-blocking transport will take.

All per-client state lives in :class:`~repro.core.session_unit.
SessionUnit` (``THINCSession`` remains as its historical alias); the
server itself holds only the *shared planes* — driver, translate stage,
prepare plane, governor, optional resilience plane — plus the session
list.  That split is what makes a server a **shard**: units can leave
one host frozen (:meth:`SessionUnit.freeze`) and arrive at another via
:meth:`THINCServer.thaw_session`, with :mod:`repro.cluster` providing
the fabric that moves them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..codec import Encoding, EncoderPolicy, LinkPosture
from ..display.driver import InputEvent, VideoStreamInfo
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import (Command, CompositeCommand, RawCommand,
                                 VideoFrameCommand, decode_command)
from ..protocol.limits import LIMITS
from ..region import Rect
from . import pipeline
from .fanout import BroadcastPlane, FanoutConfig
from .governor import Budget, Governor, ServerBudget
from .qos import QosConfig, QosPlane
from .resize import DisplayScaler, resample, scale_rect
from .scheduler import SRSFScheduler
from .session_unit import FLUSH_INTERVAL, FrozenSession, SessionUnit
from .translation import THINCDriver

__all__ = ["THINCServer", "THINCSession", "SessionUnit", "FrozenSession",
           "ServerCostModel", "FLUSH_INTERVAL"]

#: Historical name: the per-client state grew an explicit serializable
#: surface and moved to its own module; every existing call site keeps
#: working through this alias.
THINCSession = SessionUnit


class ServerCostModel:
    """Server CPU accounting for command preparation.

    Translation itself is almost free — that is the point of the design
    — but RAW payload compression is not (Section 8.3 observes THINC
    losing to cheap-codec systems on single-large-image pages exactly
    because of PNG compression time).  Rates are calibrated to the
    paper's dual-933 MHz PIII server.  Video frames are only copied,
    never re-encoded: the architectural win behind Figure 5.
    """

    png_bytes_per_second = 16e6  # PNG-model filter + DEFLATE
    rle_bytes_per_second = 120e6  # run-length pass, no entropy coder
    lossy_bytes_per_second = 28e6  # subsample + quantise + light DEFLATE
    copy_bytes_per_second = 400e6  # packetising video/audio payloads
    per_command = 2e-6  # translation bookkeeping

    def _raw_rate(self, encoding: int) -> float:
        if encoding == Encoding.RLE:
            return self.rle_bytes_per_second
        if encoding == Encoding.LOSSY:
            return self.lossy_bytes_per_second
        return self.png_bytes_per_second

    def cost(self, command) -> float:
        cpu = self.per_command
        if isinstance(command, RawCommand) and command.compress:
            cpu += command.pixels.nbytes / self._raw_rate(command.encoding)
        elif isinstance(command, CompositeCommand):
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, VideoFrameCommand):
            cpu += len(command.yuv_bytes) / self.copy_bytes_per_second
        return cpu


class THINCServer:
    """The THINC server core, acting as the translation layer's sink."""

    #: Seconds a memoised posture verdict stays fresh, and the trailing
    #: window over which downlink throughput is measured against link
    #: capacity.  Both are simulated-clock quantities.
    posture_interval = 0.05
    posture_window = 0.25

    def __init__(self, loop: EventLoop, width: int, height: int,
                 compress_raw: bool = True,
                 offscreen_awareness: bool = True,
                 merge: bool = True,
                 scheduler_factory: Callable[[], object] = SRSFScheduler,
                 encrypt_key: Optional[bytes] = None,
                 cost_model: Optional[ServerCostModel] = None,
                 prepare_cache_entries: int = 128,
                 resilience=None,
                 budget: Optional[Budget] = None,
                 server_budget: Optional[ServerBudget] = None,
                 adaptive_encoding: bool = False,
                 encoder_policy: Optional[EncoderPolicy] = None,
                 fanout: Optional[FanoutConfig] = None,
                 qos: Optional[QosConfig] = None):
        self.loop = loop
        self.cost_model = cost_model or ServerCostModel()
        self.width = width
        self.height = height
        self.merge = merge
        self.scheduler_factory = scheduler_factory
        self.encrypt_key = encrypt_key
        self.driver = THINCDriver(self, compress_raw=compress_raw,
                                  offscreen_awareness=offscreen_awareness)
        self.translate = pipeline.TranslateStage()
        self.plane = pipeline.PreparePlane(
            loop, self.cost_model, cache_entries=prepare_cache_entries)
        self.plane.read_back = self._read_screen_pixels
        self.sessions: List[THINCSession] = []
        # Callback invoked with (session, InputMessage) for every input
        # event a client sends; the testbed wires this to the window
        # server and the workload's think-time logic.
        self.input_handler: Optional[Callable] = None
        # Session resilience plane (liveness, reconnect, resync); pass
        # a ResilienceConfig to enable.  Clients then attach through
        # ``server.resilience.accept`` instead of ``attach_client``.
        if resilience is not None:
            from .resilience import ResiliencePlane
            self.resilience = ResiliencePlane(self, resilience)
        else:
            self.resilience = None
        # Resource governance: per-session budgets enforced at the
        # queue/uplink chokepoints plus server-wide admission control.
        self.governor = Governor(self, budget, server_budget)
        # Content-adaptive, link-aware RAW encoding: hand the prepare
        # plane a codec policy plus this server's posture probe.  Off
        # by default — the paper's fixed PNG path stays the baseline.
        self.encoder_policy = None
        if adaptive_encoding or encoder_policy is not None:
            self.encoder_policy = encoder_policy or EncoderPolicy()
            self.plane.policy = self.encoder_policy
            self.plane.posture = self._encoder_posture
        # Memoised posture probe (recomputed at most once per simulated
        # interval): scanning the packet trace per submitted command
        # would turn the monitor into the hot path.
        self._posture_at = -1.0
        self._posture_value = LinkPosture.LOSSLESS
        # Per-session posture memo for the fan-out plane's encoding
        # classes; keyed by session identity, reset each interval.
        self._postures: Dict[int, LinkPosture] = {}
        self._postures_at = -1.0
        # Broadcast fan-out plane: always constructed (the SUBSCRIBE
        # handler must exist), inert until the first subscriber.
        self.fanout = BroadcastPlane(self, fanout)
        # Adaptive QoS plane: degrade video before interactivity on
        # contended links.  Off by default — the paper's fixed-rate
        # video path stays the baseline, byte-for-byte.
        self.qos = QosPlane(self, qos) if qos is not None else None

    # -- session management -----------------------------------------------------

    def attach_client(self, connection: Connection,
                      viewport=None) -> THINCSession:
        """Attach a client; a mid-session join receives the current
        screen contents (the mobility story: connect from any client,
        resume the same persistent session).

        Raises :class:`~repro.core.governor.AdmissionDenied` (after
        writing a typed :class:`~repro.protocol.wire.AttachDeniedMessage`
        down the connection) when the server is past its global
        admission budget."""
        # Active video streams need no replay: frames are self-contained
        # and the next one repaints the stream's destination.
        self.governor.admit(connection)
        return self._make_session(connection, viewport)

    def _make_session(self, connection: Connection, viewport=None,
                      sequenced: bool = False) -> THINCSession:
        session = THINCSession(self, connection, viewport,
                               encrypt_key=self.encrypt_key,
                               sequenced=sequenced)
        self.sessions.append(session)
        self.governor.register(session)
        self._submit_refresh(session)
        return session

    def detach_client(self, session: THINCSession) -> None:
        self.fanout.unsubscribe(session)
        self.sessions.remove(session)
        self.governor.forget(session)

    def thaw_session(self, frozen: FrozenSession) -> SessionUnit:
        """Rebuild a live :class:`SessionUnit` from its frozen surface.

        The inverse of :meth:`SessionUnit.freeze`, run on the migration
        target.  The unit starts detached — its client is still dialling
        — and deliberately receives *no* refresh: the restored queue and
        journal already describe exactly what the client is missing, and
        injecting a snapshot here would break the replay resync's
        byte-for-byte fidelity.  Valid on any server sharing the source
        shard's simulation clock and geometry (the frozen pipe tail and
        journal sequence marks are clock-relative).

        Governance restarts fresh (meter position is not part of the
        frozen surface) and the resilience plane adopts the unit under
        its original token, so the client's redial resyncs exactly as
        it would after a network fault.
        """
        session = SessionUnit(self, None, viewport=frozen.viewport,
                              encrypt_key=self.encrypt_key,
                              sequenced=frozen.sequenced, greet=False)
        session.scaler = DisplayScaler((self.width, self.height),
                                       frozen.viewport,
                                       view_rect=frozen.view_rect)
        session._writer.last_seq = frozen.last_seq
        session._pipe_tail = frozen.pipe_tail
        session.degraded = frozen.degraded
        session.shed_display = frozen.shed_display
        # The QoS ladder position survives migration; hysteresis state
        # is plane-owned and re-derives from live polls on this shard.
        session.qos_rung = frozen.qos_rung
        for blob in frozen.commands:
            # Straight into the buffer: governor hooks and the shed
            # check are skipped because this content was already
            # admitted (and governed) on the source shard.
            session.buffer.add(decode_command(blob), now=self.loop.now)
        session._replay.extend(frozen.replay)
        for data in frozen.control:
            session._control.append(data)
            session._control_bytes += len(data)
        session.stats.update(frozen.stats)
        self.sessions.append(session)
        self.governor.register(session)
        if self.resilience is not None and frozen.token:
            self.resilience.adopt(session, frozen)
        if frozen.subscribed:
            # Re-enroll in the fan-out plane without a refresh — the
            # restored queue already describes what the client misses.
            self.fanout.adopt(session, tile_mode=frozen.tile_mode)
        return session

    def _read_screen_pixels(self, rect: Rect):
        """``rect -> pixels`` over the live screen, for the scale
        stage's COPY materialisation (tile walls, zoomed views)."""
        screen = self.driver.screen_drawable
        if screen is None:
            raise RuntimeError(
                "COPY submitted before any screen drawable exists")
        return screen.fb.read_pixels(rect)

    def _submit_refresh(self, session: THINCSession,
                        rect: Optional[Rect] = None,
                        chunk_rows: Optional[int] = None) -> None:
        """Push current screen content for *rect* (whole screen when
        None) to one session as a RAW update.

        ``chunk_rows`` splits the refresh into row bands of at most
        that height — the snapshot resync path uses it so a recovering
        client never faces one monolithic frame that cannot squeeze
        through a congested pipe's flush budget.
        """
        screen = self.driver.screen_drawable
        if screen is None:
            return
        rect = screen.bounds if rect is None else rect
        if chunk_rows is None or rect.height <= chunk_rows:
            session.submit(RawCommand(rect, screen.fb.read_pixels(rect),
                                      compress=self.driver.compress_raw))
            return
        bottom = rect.y + rect.height
        bands = []
        for y in range(rect.y, bottom, chunk_rows):
            band = Rect(rect.x, y, rect.width, min(chunk_rows, bottom - y))
            bands.append(RawCommand(band, screen.fb.read_pixels(band),
                                    compress=self.driver.compress_raw))
        # One drain: equal-height bands share a fused filter pass on
        # the prepare plane's batch path.
        session.submit_batch(bands)

    def _encoder_posture(self) -> LinkPosture:
        """Posture of the worst attached downlink, for the adaptive
        encoder.

        DEGRADED when the governor already degraded a session, when a
        session's send backlog exceeds the policy's drain horizon, or
        when the packet monitor's measured downlink throughput over the
        recent window sits within the policy's saturation fraction of
        the link's capacity.  PLENTIFUL only when *every* attached link
        is LAN-class and nearly idle.  Memoised per simulated interval
        — the probe runs once per prepared command otherwise.
        """
        now = self.loop.now
        if self._posture_at >= 0.0 \
                and now - self._posture_at < self.posture_interval:
            return self._posture_value
        self._posture_at = now
        posture = LinkPosture.LOSSLESS
        linked = 0
        plentiful = 0
        for session in self.sessions:
            link_posture = self._session_posture(session)
            if link_posture is LinkPosture.DEGRADED:
                posture = LinkPosture.DEGRADED
                break
            if session.connection is None:
                continue
            linked += 1
            if link_posture is LinkPosture.PLENTIFUL:
                plentiful += 1
        if posture is not LinkPosture.DEGRADED and linked \
                and plentiful == linked:
            posture = LinkPosture.PLENTIFUL
        self._posture_value = posture
        return posture

    def _session_posture(self, session: THINCSession) -> LinkPosture:
        """Posture of *one* session's downlink, memoised per interval.

        The prepare plane's ``posture_of`` hook: with fan-out
        subscribers on heterogeneous links, encoding classes split per
        subscriber posture instead of all paying for the worst link —
        one congested 802.11g viewer no longer costs the LAN viewers
        their lossless stream.  The memo is plane-owned (keyed by
        session identity, reset each interval), never a session
        attribute, so the frozen-surface allowlist stays exact.
        """
        now = self.loop.now
        if self._postures_at < 0.0 \
                or now - self._postures_at >= self.posture_interval:
            self._postures = {}
            self._postures_at = now
        cached = self._postures.get(id(session))
        if cached is not None:
            return cached
        posture = self._probe_link(session, now)
        self._postures[id(session)] = posture
        return posture

    def _probe_link(self, session: THINCSession, now: float) -> LinkPosture:
        if session.degraded or session.shed_display:
            return LinkPosture.DEGRADED
        if session.connection is None:
            return LinkPosture.LOSSLESS
        down = session.connection.down
        monitor = getattr(down, "monitor", None)
        measured = None
        if monitor is not None:
            measured = (monitor.total_bytes(
                "server->client", start=now - self.posture_window)
                * 8.0 / self.posture_window)
        # Backlog = commands still queued in the session buffer plus
        # bytes already flushed into the transport's bounded send
        # buffer but not yet delivered — both sit in front of the
        # link.
        backlog = (session.buffer.pending_bytes()
                   + getattr(down, "queued_bytes", 0))
        return self.encoder_policy.posture_for(
            measured, down.link.throughput * 8.0, backlog)

    # -- UpdateSink interface (called by THINCDriver) ------------------------------

    def submit(self, command: Command) -> None:
        command = self.translate.admit(command)
        if self.fanout.active:
            # One variants pass covers direct sessions and subscribers
            # alike; the fan-out plane routes tiles and relays.
            self.fanout.dispatch(command)
        elif self.qos is not None and self.qos.intercepts(command):
            # Video — and only video — detours through the QoS ladder;
            # interactive display commands keep the direct path so
            # their latency is never taxed by the detour.
            self.qos.dispatch(command, self.sessions)
        else:
            self.plane.submit(command, self.sessions)

    def video_setup(self, stream: VideoStreamInfo) -> None:
        if self.qos is not None:
            self.qos.note_setup(stream)
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(wire.VideoSetupMessage(
                stream.stream_id, stream.pixel_format,
                stream.src_width, stream.src_height, dst))
            if self.qos is not None and session.qos_rung:
                # A stream born mid-congestion opens already degraded:
                # the descriptor rides right behind the VSETUP.
                session.queue_control(self.qos.quality_message(
                    stream.stream_id, session.qos_rung))

    def video_move(self, stream: VideoStreamInfo) -> None:
        if self.qos is not None:
            self.qos.note_move(stream)
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(
                wire.VideoMoveMessage(stream.stream_id, dst))

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        if self.qos is not None:
            self.qos.note_teardown(stream.stream_id)
        for session in self.sessions:
            session.queue_control(
                wire.VideoTeardownMessage(stream.stream_id))

    def cursor_set(self, pixels, hotspot) -> None:
        for session in self.sessions:
            img, (hx, hy) = pixels, hotspot
            if not session.scaler.identity:
                sx, sy = session.scaler.sx, session.scaler.sy
                w = max(1, int(round(img.shape[1] * sx)))
                h = max(1, int(round(img.shape[0] * sy)))
                img = resample(img, w, h)
                hx = min(int(hx * sx), w - 1)
                hy = min(int(hy * sy), h - 1)
            session.queue_control(wire.CursorImageMessage(
                hx, hy, img.shape[1], img.shape[0], img.tobytes()))

    def note_input(self, event: InputEvent) -> None:
        for session in self.sessions:
            session.note_input(event)

    # -- audio (Section 4.2's virtual audio driver feeds this) ---------------------

    def submit_audio(self, timestamp: float, samples: bytes) -> None:
        for session in self.sessions:
            session.queue_audio(timestamp, samples)

    # -- upstream traffic ------------------------------------------------------------

    def handle_client_message(self, session: THINCSession, msg) -> None:
        if self.resilience is not None and \
                self.resilience.handle_session_message(session, msg):
            return
        if isinstance(msg, wire.ZoomRequestMessage):
            view = msg.rect.intersect(
                Rect(0, 0, self.width, self.height))
            if view.empty:
                view = None  # zoom out to the full desktop
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport,
                                           view_rect=view)
            # Push the content of the new view at its new resolution
            # ("the client ... requests updated content from the
            # server" when the display size increases).
            self._submit_refresh(session, rect=view)
            return
        if isinstance(msg, wire.SubscribeMessage):
            self.fanout.handle_subscribe(session, msg)
            return
        if isinstance(msg, wire.QosReportMessage):
            # Client-measured playback health (Section 8.2's quality
            # measures, computed where they are observable).  Recorded
            # only — the ladder is driven by the server's own link
            # probe, so a lying client cannot steer another session's
            # bandwidth share.
            if self.qos is not None:
                self.qos.note_report(session, msg)
            return
        if isinstance(msg, wire.RefreshRequestMessage):
            screen = self.driver.screen_drawable
            if screen is not None:
                rect = msg.rect.intersect(screen.bounds)
                if rect:
                    self._submit_refresh(session, rect=rect)
            return
        if isinstance(msg, wire.ResizeMessage):
            # Never trust client geometry: the decode layer bounds it,
            # but this handler is also reachable with locally built
            # messages — clamp to [1, max_viewport_dim] so a degenerate
            # viewport can never reach the scaler's division.
            session.viewport = (
                max(1, min(msg.width, LIMITS.max_viewport_dim)),
                max(1, min(msg.height, LIMITS.max_viewport_dim)))
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport)
            # A tile-wall member that resizes has left the wall: its
            # scaler now views the full desktop, so keeping the tile
            # route would starve everything outside the old rectangle.
            # Fall back to mirror membership.
            if self.fanout.is_tile(session):
                self.fanout.subscribe(session)
            # The client's framebuffer geometry changes, and it only has
            # a resampled version of the display — push the new geometry
            # and a full-screen refresh (Section 6: "the client requests
            # updated content from the server").
            session.queue_control(wire.ScreenInitMessage(*session.viewport))
            self._submit_refresh(session)
        elif isinstance(msg, wire.InputMessage):
            # Explicit INPUT dispatch (THL202): the old fall-through
            # also handed stray-but-parseable uplink frames (a
            # heartbeat on a plain session, a mid-stream reconnect
            # request) to the input handler as if they were input.
            if self.input_handler is not None:
                self.input_handler(session, msg)

    # -- diagnostics ----------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, float]:
        """Headline server counters (CPU spent preparing, cache hit rate)."""
        plane = self.plane.stats
        out = {
            "cpu_time": plane.cpu_seconds,
            "prepare_cache_hits": plane.cache_hits,
            "prepare_cache_misses": plane.cache_misses,
            "commands_translated": self.translate.stats.commands_in,
            "sessions": len(self.sessions),
        }
        for key, value in self.governor.stats.as_dict().items():
            out[f"governor_{key}"] = value
        if self.fanout.active or self.fanout.stats["subscribed"]:
            for key, value in self.fanout.stats.items():
                out[f"fanout_{key}"] = value
        if self.qos is not None:
            for key, value in self.qos.stats.items():
                out[f"qos_{key}"] = value
        return out

    def pipeline_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-stage counters across the whole pipeline.

        Shared stages (translate/scale/prepare) are reported directly;
        per-session stages (buffer/frame/flush) are summed over attached
        sessions, except queue depths which are point-in-time gauges.
        """
        stats: Dict[str, Dict[str, float]] = {
            "translate": {
                **self.translate.stats.as_dict(),
                "driver_ops": self.driver.stats.get("driver_ops", 0),
            },
            "scale": self.plane.scale_stats.as_dict(),
            "prepare": {
                **self.plane.stats.as_dict(),
                "cache_entries": self.plane.cache_size(),
            },
        }
        for name in ("buffer", "frame", "flush"):
            merged: Dict[str, float] = {}
            for session in self.sessions:
                for k, v in session.pipeline_stats()[name].items():
                    merged[k] = merged.get(k, 0) + v
            stats[name] = merged
        return stats

    def pending(self) -> bool:
        return any(s.pending() for s in self.sessions)
