"""The THINC server: sessions, framing, encryption, push delivery.

The server owns one :class:`~repro.core.translation.THINCDriver` (which
plugs into the window server as its video driver) and any number of
client sessions.  Each session has its own command buffer, SRSF
scheduler, optional server-side display scaler (Section 6) and optional
RC4 stream cipher (Section 7).  Updates are *pushed*: whenever work is
buffered the session schedules flush periods on the event loop and
commits as much as the non-blocking transport will take.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..display.driver import InputEvent, VideoStreamInfo
from ..net.clock import EventLoop
from ..net.transport import Connection
from ..protocol import wire
from ..protocol.commands import Command
from ..protocol.rc4 import RC4
from ..region import Rect
from .delivery import ClientBuffer
from .resize import DisplayScaler
from .scheduler import SRSFScheduler
from .translation import THINCDriver

__all__ = ["THINCServer", "THINCSession", "ServerCostModel"]

FLUSH_INTERVAL = 0.002  # seconds between flush periods while backlogged


class ServerCostModel:
    """Server CPU accounting for command preparation.

    Translation itself is almost free — that is the point of the design
    — but RAW payload compression is not (Section 8.3 observes THINC
    losing to cheap-codec systems on single-large-image pages exactly
    because of PNG compression time).  Rates are calibrated to the
    paper's dual-933 MHz PIII server.  Video frames are only copied,
    never re-encoded: the architectural win behind Figure 5.
    """

    png_bytes_per_second = 16e6  # PNG-model filter + DEFLATE
    copy_bytes_per_second = 400e6  # packetising video/audio payloads
    per_command = 2e-6  # translation bookkeeping

    def cost(self, command) -> float:
        from ..protocol.commands import (CompositeCommand, RawCommand,
                                         VideoFrameCommand)

        cpu = self.per_command
        if isinstance(command, RawCommand) and command.compress:
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, CompositeCommand):
            cpu += command.pixels.nbytes / self.png_bytes_per_second
        elif isinstance(command, VideoFrameCommand):
            cpu += len(command.yuv_bytes) / self.copy_bytes_per_second
        return cpu


class THINCSession:
    """Per-client server state."""

    def __init__(self, server: "THINCServer", connection: Connection,
                 viewport=None, encrypt_key: Optional[bytes] = None):
        self.server = server
        self.connection = connection
        self.loop = server.loop
        self.viewport = viewport or (server.width, server.height)
        self.scaler = DisplayScaler((server.width, server.height),
                                    self.viewport)
        self.cipher = RC4(encrypt_key) if encrypt_key else None
        self.buffer = ClientBuffer(
            scheduler=server.scheduler_factory(),
            merge=server.merge,
            frame=self._frame,
        )
        self._control: List[bytes] = []
        self._audio: List[bytes] = []
        self._flush_scheduled = False
        self._cpu_free_at = 0.0
        self.stats = {"messages_sent": 0, "bytes_sent": 0,
                      "flush_periods": 0, "cpu_time": 0.0}
        connection.up.connect(self._on_client_data)
        self._parser = wire.StreamParser()
        self.queue_control(wire.ScreenInitMessage(*self.viewport))

    # -- framing ------------------------------------------------------------

    def _frame(self, msg) -> bytes:
        data = wire.encode_message(msg)
        if self.cipher is not None:
            data = self.cipher.process(data)
        return data

    # -- enqueue paths ---------------------------------------------------------

    def submit(self, command: Command) -> None:
        """Buffer a display command, scaled to this client's viewport.

        Commands pass through a serial CPU pipeline: compressing a RAW
        payload takes real server time, and a command only becomes
        sendable once prepared.  The pipeline is FIFO, so command order
        is preserved.
        """
        for scaled in self.scaler.scale_command(command):
            cpu = self.server.cost_model.cost(scaled)
            start = max(self.loop.now, self._cpu_free_at)
            self._cpu_free_at = start + cpu
            self.stats["cpu_time"] += cpu
            delay = self._cpu_free_at - self.loop.now
            if delay <= 0:
                self.buffer.add(scaled, now=self.loop.now)
            else:
                self.loop.schedule(
                    delay,
                    lambda c=scaled: (self.buffer.add(c, now=self.loop.now),
                                      self._kick()))
        self._kick()

    def queue_control(self, message) -> None:
        self._control.append(self._frame(message))
        self._kick()

    def queue_audio(self, timestamp: float, samples: bytes) -> None:
        self._audio.append(
            self._frame(wire.AudioChunkMessage(timestamp, samples)))
        self._kick()

    def note_input(self, event: InputEvent) -> None:
        # Input arrives in session coordinates; the real-time region is
        # matched against commands already mapped into this client's
        # (possibly zoomed, scaled) viewport space.
        x, y = self.scaler.map_point(event.x, event.y)
        self.buffer.note_input(x, y, event.time)

    # -- flush machinery ----------------------------------------------------------

    def _kick(self) -> None:
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.schedule(0.0, self._flush)

    def pending(self) -> bool:
        return bool(self._control or self._audio
                    or self.buffer.pending_commands())

    def _flush(self) -> None:
        self._flush_scheduled = False
        self.stats["flush_periods"] += 1
        writer = self.connection.down
        # Control messages first (tiny, order-sensitive), then audio
        # (latency-sensitive), then display commands in SRSF order.
        for fifo in (self._control, self._audio):
            while fifo and len(fifo[0]) <= writer.writable_bytes():
                data = fifo.pop(0)
                writer.write(data)
                self.stats["messages_sent"] += 1
                self.stats["bytes_sent"] += len(data)
        if not self._control:
            result = self.buffer.flush(writer)
            self.stats["messages_sent"] += result.commands_sent
            self.stats["bytes_sent"] += result.bytes_written
        if self.pending():
            self._flush_scheduled = True
            self.loop.schedule(FLUSH_INTERVAL, self._flush)

    # -- client-to-server traffic ---------------------------------------------

    def _on_client_data(self, chunk: bytes) -> None:
        # Client->server traffic is not encrypted in this model (input
        # events only; the paper encrypts both ways but RC4 is
        # size-preserving so accounting is identical).
        for msg in self._parser.feed(chunk):
            self.server.handle_client_message(self, msg)


class THINCServer:
    """The THINC server core, acting as the translation layer's sink."""

    def __init__(self, loop: EventLoop, width: int, height: int,
                 compress_raw: bool = True,
                 offscreen_awareness: bool = True,
                 merge: bool = True,
                 scheduler_factory: Callable[[], object] = SRSFScheduler,
                 encrypt_key: Optional[bytes] = None,
                 cost_model: Optional[ServerCostModel] = None):
        self.loop = loop
        self.cost_model = cost_model or ServerCostModel()
        self.width = width
        self.height = height
        self.merge = merge
        self.scheduler_factory = scheduler_factory
        self.encrypt_key = encrypt_key
        self.driver = THINCDriver(self, compress_raw=compress_raw,
                                  offscreen_awareness=offscreen_awareness)
        self.sessions: List[THINCSession] = []
        # Callback invoked with (session, InputMessage) for every input
        # event a client sends; the testbed wires this to the window
        # server and the workload's think-time logic.
        self.input_handler: Optional[Callable] = None

    # -- session management -----------------------------------------------------

    def attach_client(self, connection: Connection,
                      viewport=None) -> THINCSession:
        """Attach a client; a mid-session join receives the current
        screen contents (the mobility story: connect from any client,
        resume the same persistent session)."""
        session = THINCSession(self, connection, viewport,
                               encrypt_key=self.encrypt_key)
        self.sessions.append(session)
        screen = self.driver.screen_drawable
        if screen is not None:
            from ..protocol.commands import RawCommand

            session.submit(RawCommand(
                screen.bounds, screen.fb.read_pixels(screen.bounds),
                compress=self.driver.compress_raw))
        # Active video streams need no replay: frames are self-contained
        # and the next one repaints the stream's destination.
        return session

    def detach_client(self, session: THINCSession) -> None:
        self.sessions.remove(session)

    # -- UpdateSink interface (called by THINCDriver) ------------------------------

    def submit(self, command: Command) -> None:
        for session in self.sessions:
            session.submit(command)

    def video_setup(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                from .resize import scale_rect

                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(wire.VideoSetupMessage(
                stream.stream_id, stream.pixel_format,
                stream.src_width, stream.src_height, dst))

    def video_move(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            dst = stream.dst_rect
            if not session.scaler.identity:
                from .resize import scale_rect

                dst = scale_rect(dst, session.scaler.sx, session.scaler.sy)
            session.queue_control(
                wire.VideoMoveMessage(stream.stream_id, dst))

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        for session in self.sessions:
            session.queue_control(
                wire.VideoTeardownMessage(stream.stream_id))

    def cursor_set(self, pixels, hotspot) -> None:
        for session in self.sessions:
            img, (hx, hy) = pixels, hotspot
            if not session.scaler.identity:
                from .resize import resample

                sx, sy = session.scaler.sx, session.scaler.sy
                w = max(1, int(round(img.shape[1] * sx)))
                h = max(1, int(round(img.shape[0] * sy)))
                img = resample(img, w, h)
                hx = min(int(hx * sx), w - 1)
                hy = min(int(hy * sy), h - 1)
            session.queue_control(wire.CursorImageMessage(
                hx, hy, img.shape[1], img.shape[0], img.tobytes()))

    def note_input(self, event: InputEvent) -> None:
        for session in self.sessions:
            session.note_input(event)

    # -- audio (Section 4.2's virtual audio driver feeds this) ---------------------

    def submit_audio(self, timestamp: float, samples: bytes) -> None:
        for session in self.sessions:
            session.queue_audio(timestamp, samples)

    # -- upstream traffic ------------------------------------------------------------

    def handle_client_message(self, session: THINCSession, msg) -> None:
        if isinstance(msg, wire.ZoomRequestMessage):
            view = msg.rect.intersect(
                Rect(0, 0, self.width, self.height))
            if view.empty:
                view = None  # zoom out to the full desktop
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport,
                                           view_rect=view)
            # Push the content of the new view at its new resolution
            # ("the client ... requests updated content from the
            # server" when the display size increases).
            screen = self.driver.screen_drawable
            if screen is not None:
                from ..protocol.commands import RawCommand

                source = view or screen.bounds
                session.submit(RawCommand(
                    source, screen.fb.read_pixels(source),
                    compress=self.driver.compress_raw))
            return
        if isinstance(msg, wire.RefreshRequestMessage):
            screen = self.driver.screen_drawable
            if screen is not None:
                rect = msg.rect.intersect(screen.bounds)
                if rect:
                    from ..protocol.commands import RawCommand

                    session.submit(RawCommand(
                        rect, screen.fb.read_pixels(rect),
                        compress=self.driver.compress_raw))
            return
        if isinstance(msg, wire.ResizeMessage):
            session.viewport = (msg.width, msg.height)
            session.scaler = DisplayScaler((self.width, self.height),
                                           session.viewport)
            # The client's framebuffer geometry changes, and it only has
            # a resampled version of the display — push the new geometry
            # and a full-screen refresh (Section 6: "the client requests
            # updated content from the server").
            session.queue_control(wire.ScreenInitMessage(*session.viewport))
            screen = self.driver.screen_drawable
            if screen is not None:
                from ..protocol.commands import RawCommand

                session.submit(RawCommand(
                    screen.bounds, screen.fb.read_pixels(screen.bounds),
                    compress=self.driver.compress_raw))
        elif self.input_handler is not None:
            self.input_handler(session, msg)

    # -- diagnostics ----------------------------------------------------------------

    def pending(self) -> bool:
        return any(s.pending() for s in self.sessions)
