"""Display command scheduling (paper Section 5).

THINC delivers buffered commands with a multi-queue
Shortest-Remaining-Size-First (SRSF) discipline, analogous to SRPT:
commands are sorted into queues by the number of bytes still needed to
deliver them, with queue boundaries at powers of two, and queues are
flushed in increasing order; within a queue, arrival order is kept.
A separate real-time queue preempts everything for updates issued in
direct response to user input.

Correct reordering requires that dependencies flush first.  The paper's
rule for transparent commands — place the command in the queue of the
*largest* command it overlaps — is implemented via a *scheduling floor*
stamped on the command (``sched_floor``): the effective queue index is
``max(natural queue, floor)``.  The same floor mechanism also covers two
cases the transparent rule alone would miss in this reproduction:

* an opaque command partially overlapping an earlier COMPLETE or
  TRANSPARENT command that eviction kept whole (the paper argues
  complete commands are always small enough for queue 0; video frames,
  which we route through the same buffer, are complete but large), and
* a COPY whose *source* pixels are produced by a still-buffered command.

Floors only need to reference queue indices, not command identities:
remaining sizes shrink monotonically, so a dependency can never migrate
to a later-flushed queue than the one recorded in the floor.
"""

from __future__ import annotations

from typing import List, Sequence

from ..protocol.commands import Command

__all__ = ["SRSFScheduler", "FIFOScheduler", "NUM_QUEUES", "BASE_SIZE"]

NUM_QUEUES = 10
BASE_SIZE = 64  # queue 0 holds commands of at most this many bytes


class SRSFScheduler:
    """Multi-queue SRSF ordering with a preempting real-time queue."""

    name = "srsf"

    def __init__(self, num_queues: int = NUM_QUEUES,
                 base_size: int = BASE_SIZE):
        if num_queues < 1 or base_size < 1:
            raise ValueError("need at least one queue and a positive base")
        self.num_queues = num_queues
        self.base_size = base_size
        self.stats = {"orderings": 0, "realtime_preempted": 0}

    def bucket(self, size: int) -> int:
        """Queue index for a command of *size* remaining bytes."""
        if size <= self.base_size:
            return 0
        # Powers-of-two boundaries: (base, 2*base] -> 1, etc.
        idx = (size - 1).bit_length() - (self.base_size - 1).bit_length()
        return min(self.num_queues - 1, max(0, idx))

    def effective_bucket(self, command: Command) -> int:
        return max(self.bucket(command.wire_size()), command.sched_floor)

    def order(self, commands: Sequence[Command]) -> List[Command]:
        """Flush order: real-time first, then (queue, arrival)."""
        realtime = [c for c in commands if c.realtime]
        normal = [c for c in commands if not c.realtime]
        realtime.sort(key=lambda c: c.seq)
        normal.sort(key=lambda c: (self.effective_bucket(c), c.seq))
        self.stats["orderings"] += 1
        self.stats["realtime_preempted"] += len(realtime)
        return realtime + normal


class FIFOScheduler:
    """Pure arrival-order delivery — the ablation baseline."""

    name = "fifo"

    def bucket(self, size: int) -> int:
        return 0

    def effective_bucket(self, command: Command) -> int:
        return 0

    def order(self, commands: Sequence[Command]) -> List[Command]:
        return sorted(commands, key=lambda c: c.seq)
