"""The broadcast fan-out plane: one desktop, K subscribers.

THINC's central economy is that translation happens once and
preparation once per distinct viewport (``repro.core.pipeline``).  This
module promotes that sharing into a first-class delivery mode: a
:class:`BroadcastPlane` through which one desktop's translated command
stream is prepared exactly once per **(scale, pixel-format, encoding)
equivalence class** and relayed to any number of subscriber sessions,
plus a :class:`TileWall` mode where each subscriber owns a
sub-rectangle of a large virtual framebuffer (display walls, following
the virtual-framebuffer abstraction for tiled walls in PAPERS.md).

Placement: ``repro.core.fanout`` sits *beside* the delivery stages at
core's rank in the layer map (see ``repro.analysis.layermap`` — the
module note there mirrors this one).  It depends only on the prepare
plane below it and the session units beside it; the cluster fabric and
the wire protocol learn about it through two control messages
(SUBSCRIBE / TILE_ASSIGN), never the other way around.

Delivery model
--------------
Subscribers remain ordinary :class:`~repro.core.session_unit.
SessionUnit`\\ s — they flush, encrypt, journal and migrate exactly like
unicast sessions — but display commands reach them through a
per-subscriber **bounded relay queue** of references into the prepare
cache rather than through a private prepare pass:

1. :meth:`BroadcastPlane.dispatch` routes each translated command —
   mirror subscribers always, tile subscribers only when the command's
   destination overlaps their tile (a 64-px grid index, the same
   banding the command queue uses).
2. The prepare plane's :meth:`~repro.core.pipeline.PreparePlane.
   variants` partitions receivers into posture equivalence classes
   (so one congested subscriber never forces lossy payloads on its
   LAN-class peers) and each class's entry is prepared once and
   **pinned** in the cache while any relay queue still references it.
3. Draining moves prepared clones into the subscriber's normal buffer
   stage; the clamped pipe tail keeps per-subscriber ordering intact.

Slow-subscriber ladder
----------------------
A subscriber whose relay queue exceeds its byte bound climbs a
three-rung ladder (each rung escalates only if the previous one fires
again within ``ladder_cooldown``; quiet subscribers de-escalate):

1. **coalesce-to-refresh** — drop the relay backlog and push a
   row-banded full refresh (the governor's own coalesce economics);
2. **drop-to-keyframe** — drop the relay backlog *and* the buffered
   queue, then push one monolithic keyframe refresh;
3. **evict** — hand the session to the PR 5 governor ladder's
   quarantine (typed denial, detach, budget eviction accounting).

Because rungs 1–2 end with a refresh of current screen content, a
surviving subscriber is always pixel-identical to a dedicated unicast
twin once the stream quiesces — the property the differential harness
in ``tests/fanout`` asserts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..protocol import wire
from ..region import Rect
from . import sanitizer
from .resize import DisplayScaler

__all__ = ["FanoutConfig", "TileWall", "BroadcastPlane",
           "MODE_MIRROR", "MODE_TILE"]

#: SUBSCRIBE message modes.
MODE_MIRROR = 0
MODE_TILE = 1

#: Grid cell edge for the tile routing index, matching the command
#: queue's spatial index banding.
_GRID = 64


@dataclass(frozen=True)
class FanoutConfig:
    """Bounds and cadences for the broadcast plane."""

    #: Relay queue bytes (prepared wire size) above which the
    #: slow-subscriber ladder fires.
    relay_bytes: int = 1 << 20
    #: Buffered-session backlog above which draining pauses and the
    #: relay holds entries (pinned) instead of deepening the buffer.
    subscriber_backlog_bytes: int = 256 << 10
    #: A rung escalates only when the previous rung fired within this
    #: many (simulated) seconds; otherwise the ladder resets to rung 1.
    ladder_cooldown: float = 1.0
    #: Retry cadence for a paused relay drain.
    drain_interval: float = 0.01


class _Subscriber:
    """Relay-side state for one subscribed session (plane-owned: the
    session unit itself stays serialization-clean)."""

    __slots__ = ("session", "tile", "queue", "queued_bytes", "rung",
                 "last_rung_at", "drain_scheduled")

    def __init__(self, session, tile: Optional[Rect]):
        self.session = session
        self.tile = tile
        # FIFO of (cache_key, entry, wire_bytes); every queued key
        # holds one pin on the prepare cache.
        self.queue: "deque[Tuple[Tuple, list, int]]" = deque()
        self.queued_bytes = 0
        self.rung = 0
        self.last_rung_at = -1e9
        self.drain_scheduled = False


class TileWall:
    """Tile index over subscriber sub-rectangles of the virtual wall.

    Wall coordinates are the server's own framebuffer coordinates: a
    tile subscriber's scaler is ``DisplayScaler(server_size,
    (tile_w, tile_h), view_rect=tile)`` — a pure 1:1 translate-clip,
    which :mod:`repro.core.resize` maps byte-exactly.  Routing uses a
    64-px grid so a command is offered only to tiles its destination
    can overlap, then filtered by exact intersection.
    """

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self._cells: Dict[Tuple[int, int], Set] = {}
        self._tiles: Dict[object, Rect] = {}
        self._order: List = []

    @staticmethod
    def grid(width: int, height: int, cols: int, rows: int) -> List[Rect]:
        """Partition ``width x height`` into ``cols x rows`` tiles.

        Row-major (``index = row * cols + col``), edges at
        ``i * extent // n`` — an exact cover: tiles are disjoint and
        their union is the full wall even when the extent does not
        divide evenly, which is what makes seam reassembly byte-exact.
        """
        tiles = []
        for row in range(rows):
            y0 = row * height // rows
            y1 = (row + 1) * height // rows
            for col in range(cols):
                x0 = col * width // cols
                x1 = (col + 1) * width // cols
                tiles.append(Rect(x0, y0, x1 - x0, y1 - y0))
        return tiles

    def _cell_range(self, rect: Rect):
        return (rect.x // _GRID, (rect.x + rect.width - 1) // _GRID,
                rect.y // _GRID, (rect.y + rect.height - 1) // _GRID)

    def assign(self, session, tile: Rect) -> None:
        self.remove(session)
        self._tiles[session] = tile
        self._order.append(session)
        cx0, cx1, cy0, cy1 = self._cell_range(tile)
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                self._cells.setdefault((cx, cy), set()).add(session)

    def remove(self, session) -> None:
        tile = self._tiles.pop(session, None)
        if tile is None:
            return
        self._order.remove(session)
        cx0, cx1, cy0, cy1 = self._cell_range(tile)
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                cell = self._cells.get((cx, cy))
                if cell is not None:
                    cell.discard(session)
                    if not cell:
                        del self._cells[(cx, cy)]

    def tile_of(self, session) -> Optional[Rect]:
        return self._tiles.get(session)

    def members_for(self, dest: Rect) -> List:
        """Sessions whose tile overlaps *dest*, in subscribe order."""
        if not self._tiles:
            return []
        cx0, cx1, cy0, cy1 = self._cell_range(dest)
        candidates = set()
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                candidates |= self._cells.get((cx, cy), set())
        return [s for s in self._order
                if s in candidates
                and not self._tiles[s].intersect(dest).empty]

    def __len__(self) -> int:
        return len(self._tiles)


class BroadcastPlane:
    """Fan one translated stream out to mirror and tile subscribers."""

    def __init__(self, server, config: Optional[FanoutConfig] = None):
        self.server = server
        self.config = config or FanoutConfig()
        self.wall = TileWall(server.width, server.height)
        self._subs: Dict[object, _Subscriber] = {}
        self.stats = {
            "subscribed": 0, "unsubscribed": 0, "commands_relayed": 0,
            "relay_held": 0, "coalesces": 0, "keyframes": 0,
            "evictions": 0,
        }

    # -- membership ----------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self._subs)

    def is_subscriber(self, session) -> bool:
        return session in self._subs

    def is_tile(self, session) -> bool:
        sub = self._subs.get(session)
        return sub is not None and sub.tile is not None

    def subscribers(self) -> List:
        return [sub.session for sub in self._subs.values()]

    def tile_of(self, session) -> Optional[Rect]:
        """The wall rectangle owned by *session*, or ``None`` for
        mirror subscribers and strangers."""
        sub = self._subs.get(session)
        return sub.tile if sub is not None else None

    def subscribe(self, session, tile: Optional[Rect] = None) -> None:
        """Enroll *session* as a mirror (``tile=None``) or tile-wall
        subscriber.  Idempotent per session; re-subscribing moves the
        session between modes.
        """
        self.unsubscribe(session)
        self._subs[session] = _Subscriber(session, tile)
        if tile is not None:
            self.wall.assign(session, tile)
        self.stats["subscribed"] += 1
        # Per-session posture classes: with the adaptive encoder on,
        # heterogeneous subscriber links must split into encoding
        # classes instead of all paying for the worst link.
        if self.server.encoder_policy is not None:
            self.server.plane.posture_of = self.server._session_posture

    def unsubscribe(self, session) -> None:
        """Drop *session* from the plane, releasing its relay pins.
        Idempotent; called by ``THINCServer.detach_client``."""
        sub = self._subs.pop(session, None)
        if sub is None:
            return
        self.wall.remove(session)
        self._clear_relay(sub)
        self.stats["unsubscribed"] += 1

    def handle_subscribe(self, session, msg) -> None:
        """Wire-level SUBSCRIBE: enroll and push the mode's geometry.

        Mirror mode keeps the session's own viewport (the scaler
        already resamples the full desktop into it).  Tile mode carves
        tile ``msg.index`` out of a ``cols x rows`` wall partition,
        points the session's scaler at that sub-rectangle at 1:1, and
        pushes a TILE_ASSIGN plus the standard geometry + refresh
        handshake so the client repaints as its tile.
        """
        if msg.mode == MODE_TILE:
            # Never trust client geometry past the decode bounds: this
            # handler is also reachable with locally built messages.
            # Clamp the grid so no tile can be empty (cols > width
            # would repeat edge coordinates) and the index stays in it.
            cols = max(1, min(msg.cols, self.server.width))
            rows = max(1, min(msg.rows, self.server.height))
            index = min(msg.index, cols * rows - 1)
            tile = self.wall.grid(self.server.width, self.server.height,
                                  cols, rows)[index]
            session.viewport = (tile.width, tile.height)
            session.scaler = DisplayScaler(
                (self.server.width, self.server.height),
                (tile.width, tile.height), view_rect=tile)
            self.subscribe(session, tile=tile)
            session.queue_control(wire.TileAssignMessage(
                self.server.width, self.server.height, tile))
            session.queue_control(
                wire.ScreenInitMessage(tile.width, tile.height))
            self.server._submit_refresh(session, rect=tile)
        else:
            was_tile = self.is_tile(session)
            self.subscribe(session)
            if was_tile:
                # Leaving a tile: restore full-desktop geometry (the
                # session's viewport was carved down to its tile).
                session.viewport = (self.server.width, self.server.height)
                session.scaler = DisplayScaler(
                    (self.server.width, self.server.height),
                    session.viewport)
                session.queue_control(
                    wire.ScreenInitMessage(*session.viewport))
            self.server._submit_refresh(session)

    def adopt(self, session, tile_mode: bool = False) -> None:
        """Re-enroll a thawed subscriber without touching its stream.

        The thaw contract forbids injecting refreshes (the restored
        queue and journal already describe what the client is missing),
        so this only rebuilds plane membership; a tile subscriber's
        rectangle is its scaler's view, which migrated with it.
        """
        self.subscribe(session,
                       tile=session.scaler.view if tile_mode else None)

    # -- the fan-out path ----------------------------------------------------

    def dispatch(self, command) -> None:
        """Deliver one translated command to every receiver.

        Non-subscriber sessions take the classic per-session prepare
        path; subscribers receive pinned references through their relay
        queues.  Both go through one :meth:`~repro.core.pipeline.
        PreparePlane.variants` pass so a direct session and a
        same-class subscriber share a single prepared entry.
        """
        server = self.server
        plane = server.plane
        targets = [s for s in server.sessions if s not in self._subs]
        for sub in self._subs.values():
            if sub.tile is None or not sub.tile.intersect(
                    command.dest).empty:
                targets.append(sub.session)
        if not targets:
            return
        for members, variant in plane.variants(command, targets):
            for session in members:
                sub = self._subs.get(session)
                if sub is None:
                    _, entry = plane.prepare_entry(variant, session)
                    for prepared in entry:
                        session.enqueue_prepared(
                            prepared.command.translated(0, 0),
                            prepared.ready_at)
                else:
                    self._push(sub, variant)

    def _push(self, sub: _Subscriber, variant) -> None:
        plane = self.server.plane
        key, entry = plane.prepare_entry(variant, sub.session, pin=True)
        if not entry:
            plane.unpin(key)
            return  # clipped to nothing for this viewport
        size = sum(p.command.wire_size() for p in entry)
        sub.queue.append((key, entry, size))
        sub.queued_bytes += size
        self._drain(sub)
        if sub.queued_bytes > self.config.relay_bytes:
            self._overflow(sub)

    def _drain(self, sub: _Subscriber, force: bool = False) -> None:
        """Move relay entries into the subscriber's buffer stage.

        Pauses (leaving entries pinned) while the session's own buffer
        backlog is past the configured bound — deepening a slow
        subscriber's buffer would only feed the governor's ladder with
        work the relay could still coalesce away.  ``force`` ignores
        the bound; the freeze path uses it so no pixels are lost at
        migration time.
        """
        session = sub.session
        plane = self.server.plane
        cfg = self.config
        while sub.queue:
            if not force and session.buffer.pending_bytes() \
                    > cfg.subscriber_backlog_bytes:
                self.stats["relay_held"] += 1
                if not sub.drain_scheduled:
                    sub.drain_scheduled = True
                    self.server.loop.schedule(
                        cfg.drain_interval,
                        lambda s=sub: self._drain_tick(s))
                return
            key, entry, size = sub.queue.popleft()
            sub.queued_bytes -= size
            for prepared in entry:
                session.enqueue_prepared(prepared.command.translated(0, 0),
                                         prepared.ready_at)
            plane.unpin(key)
            self.stats["commands_relayed"] += 1
        sanitizer.check_prepare_pins(plane)

    def _drain_tick(self, sub: _Subscriber) -> None:
        sub.drain_scheduled = False
        if sub.session in self._subs:
            self._drain(sub)

    def flush(self, session) -> None:
        """Force-drain *session*'s relay queue (freeze/migration)."""
        sub = self._subs.get(session)
        if sub is not None:
            self._drain(sub, force=True)

    # -- the slow-subscriber ladder ------------------------------------------

    def _clear_relay(self, sub: _Subscriber) -> None:
        plane = self.server.plane
        while sub.queue:
            key, _, _ = sub.queue.popleft()
            plane.unpin(key)
        sub.queued_bytes = 0
        sanitizer.check_prepare_pins(plane)

    def _overflow(self, sub: _Subscriber) -> None:
        now = self.server.loop.now
        if now - sub.last_rung_at < self.config.ladder_cooldown:
            sub.rung = min(sub.rung + 1, 3)
        else:
            sub.rung = 1
        sub.last_rung_at = now
        session = sub.session
        self._clear_relay(sub)
        if sub.rung == 1:
            # Coalesce-to-refresh: the relay backlog costs more than
            # repainting; the refresh is row-banded to fit a congested
            # pipe's flush budget.
            self.stats["coalesces"] += 1
            self.server._submit_refresh(session, chunk_rows=64)
        elif sub.rung == 2:
            # Drop-to-keyframe: the buffered queue goes too, replaced
            # by one monolithic keyframe.
            self.stats["keyframes"] += 1
            session.buffer.queue.clear()
            rect = sub.tile
            self.server._submit_refresh(session, rect=rect)
        else:
            # Evict through the governor so denial framing, budget
            # accounting and quarantine semantics stay in one place
            # (quarantine ends with detach_client -> unsubscribe).
            self.stats["evictions"] += 1
            self.server.governor.quarantine(
                session, wire.DENY_SESSION_BUDGET, evicted=True)

    # -- diagnostics ---------------------------------------------------------

    def relay_depth(self, session) -> int:
        sub = self._subs.get(session)
        return len(sub.queue) if sub is not None else 0

    def relay_bytes(self, session) -> int:
        sub = self._subs.get(session)
        return sub.queued_bytes if sub is not None else 0
