"""The session resilience plane: liveness, reconnect, resync.

THINC's push delivery assumes a live pipe; this plane makes sessions
survive the pipe failing.  The design leans on the paper's own
command-queue semantics (Section 4): the per-region queues always hold
exactly the commands needed to reconstruct current screen contents, so
recovering a client is a *replay*, not a framebuffer retransmit.

Server side (:class:`ResiliencePlane`):

* **Liveness** — clients heartbeat with a cumulative ack; a quiet
  client is *detached* after ``liveness_timeout``.  Detached sessions
  stop flushing but keep absorbing display updates (eviction keeps the
  queue minimal).  If traffic resumes on the same connection the
  session re-attaches in place; otherwise the client dials back.
* **Detach window** — after ``detach_window`` of absence the queue and
  replay log are dropped and further display buffering is shed; the
  eventual resync falls back to a region-chunked RAW snapshot.
* **Resync by replay** — every sent frame is wrapped in a CHECKED
  sequence wrapper and journaled (plaintext) in a per-session log,
  pruned by the client's acks.  On reconnect the client names its last
  applied sequence; the plane replays the unacked suffix and then the
  surviving queue flushes normally.  Replay is only chosen when its
  byte cost is at most a full-screen RAW snapshot's, so "replay bytes
  <= full-screen RAW bytes" holds by construction.  Replay duplication
  is benign: the client skips sequences it already applied, which is
  what makes non-idempotent COPY safe.
* **Backoff** — reconnect accepts are spaced by exponential backoff
  with deterministic seeded jitter; too-early attempts are denied with
  a retry-after hint.
* **Degradation** — sustained back-pressure (buffer backlog above a
  high-water mark across consecutive checks) puts the session in
  degraded mode: audio is shed and display coalescing does the rest;
  it exits below the low-water mark.

Client side (:class:`ResilientClient`) wraps a
:class:`~repro.core.client.THINCClient` with the mirror duties:
heartbeating, server-liveness detection, dialling with its own
backoff, the plaintext reconnect prelude, and turning wire corruption
(a typed :class:`~repro.protocol.wire.ProtocolError`) into a reconnect
instead of a crash.

Everything is driven by the deterministic event loop and explicitly
seeded RNGs, so a whole chaos scenario — faults, backoff jitter, all
of it — replays identically from its seeds.  Note the plane and the
client run perpetual timers: drive these simulations with
``run_until(t)``, not ``run_until_idle``.
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from ..net.transport import Connection
from ..protocol import wire
from .client import THINCClient

__all__ = ["ResilienceConfig", "ResilienceStats", "SessionGuard",
           "ResiliencePlane", "ResilientClient"]

# Headroom added to raw pixel bytes when costing a full-screen RAW
# snapshot: frame/CHECKED headers per chunk plus zlib's worst-case
# expansion on incompressible content.
_SNAPSHOT_SLACK = 4096


@dataclass
class ResilienceConfig:
    """Tunables for both sides of the resilience protocol."""

    heartbeat_interval: float = 0.25
    liveness_timeout: float = 1.0
    check_interval: float = 0.1
    detach_window: float = 5.0
    backoff_base: float = 0.25
    backoff_max: float = 8.0
    backoff_jitter: float = 0.25
    flap_window: float = 1.0  # accepts closer than this escalate backoff
    snapshot_chunk_rows: int = 32
    # Per-session replay log cap; None derives a full-screen RAW cost
    # from the session viewport (past which replay loses to snapshot).
    replay_log_limit: Optional[int] = None
    degrade_high_bytes: int = 256_000
    degrade_low_bytes: int = 64_000
    degrade_after_checks: int = 3
    seed: int = 0
    # Token namespacing for sharded deployments: shard *i* of *N* runs
    # with ``token_start=i+1, token_stride=N`` so freshly issued tokens
    # never collide across shards, while adopted (migrated) tokens keep
    # their original value — the token is the session's cluster-wide
    # identity.
    token_start: int = 1
    token_stride: int = 1


class ResilienceStats:
    """Plane-wide resilience counters (StageStats pattern)."""

    __slots__ = ("attaches", "reattaches", "disconnects", "heartbeats",
                 "resyncs_replay", "resyncs_snapshot", "reconnects_denied",
                 "queues_dropped", "log_overflows", "replayed_bytes",
                 "max_replay_bytes", "snapshot_bytes", "degrade_entered",
                 "degrade_exited")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"ResilienceStats({body})"


class _PreludeReader:
    """Byte-exact reader for the plaintext prelude of a connection.

    The first frame on a dialled connection (reconnect request one
    way, accept/denied the other) travels in the clear; everything
    after the accept may be encrypted under a fresh key.  A normal
    StreamParser cannot be used — it would try to parse the ciphered
    tail — so this reader consumes exactly one frame's bytes and keeps
    the remainder untouched for whoever owns the stream next.
    """

    MAX_PRELUDE = 4096  # prelude frames are tiny; anything bigger is junk

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> Optional[bytes]:
        """Returns the first complete frame's bytes, or None."""
        self._buffer.extend(chunk)
        if len(self._buffer) < wire.FRAME_OVERHEAD:
            return None
        length = int.from_bytes(self._buffer[1:5], "big")
        if length > self.MAX_PRELUDE:
            raise wire.ProtocolError(
                f"prelude frame declares {length} bytes")
        end = wire.FRAME_OVERHEAD + length
        if len(self._buffer) < end:
            return None
        frame = bytes(self._buffer[:end])
        del self._buffer[:end]
        return frame

    def remainder(self) -> bytes:
        """Bytes received beyond the prelude frame."""
        rest = bytes(self._buffer)
        self._buffer.clear()
        return rest


def _checked_prelude(msg) -> bytes:
    """Encode a prelude message inside a CHECKED wrapper (seq 0).

    The prelude travels in the clear, where a few flipped bytes could
    otherwise still parse as a *valid but wrong* request or accept
    (wrong token, wrong resync mode).  The CRC turns that whole class
    into a detected failure: the reader raises, the dial is abandoned
    and retried.
    """
    return wire.wrap_checked(wire.encode_message(msg), 0)


def _decode_prelude(frame: bytes):
    """Decode one prelude frame, unwrapping (and CRC-checking) it."""
    msg = wire.parse_messages(frame)[0]
    if isinstance(msg, wire.CheckedFrame):
        msg = msg.message
    return msg


class SessionGuard:
    """Per-session resilience bookkeeping held by the plane."""

    __slots__ = ("token", "session", "last_seen", "detached_at",
                 "queue_dropped", "log", "log_bytes", "log_limit",
                 "log_dropped", "acked_seq", "not_before",
                 "last_accept_time", "flap_level", "pressure_ticks",
                 "last_writer_bytes", "last_tx_time")

    def __init__(self, token: int, session, now: float, log_limit: int):
        self.token = token
        self.session = session
        self.last_seen = now
        self.detached_at: Optional[float] = None
        self.queue_dropped = False
        # Plaintext CHECKED frames sent but not yet acked, in seq order.
        self.log: Deque[Tuple[int, bytes]] = deque()
        self.log_bytes = 0
        self.log_limit = log_limit
        self.log_dropped = False
        self.acked_seq = 0
        self.not_before = now
        self.last_accept_time = now
        self.flap_level = 0
        self.pressure_ticks = 0
        self.last_writer_bytes = 0
        self.last_tx_time = now


class ResiliencePlane:
    """Server-side owner of session guards, liveness and resync."""

    def __init__(self, server, config: Optional[ResilienceConfig] = None):
        self.server = server
        self.loop = server.loop
        self.config = config or ResilienceConfig()
        self.stats = ResilienceStats()
        self.guards: Dict[int, SessionGuard] = {}
        self._by_session: Dict[object, SessionGuard] = {}
        self._next_token = self.config.token_start
        self._tick_scheduled = False
        self._rng = random.Random(
            zlib.crc32(f"plane|{self.config.seed}".encode("utf-8")))

    # -- attach / reconnect --------------------------------------------------

    def accept(self, connection: Connection, viewport=None) -> None:
        """Take ownership of a freshly dialled connection.

        Models the listening socket: the plane reads the plaintext
        reconnect request, then either creates a session (token 0),
        resyncs the named one, or pushes back with a denial.  A
        malformed prelude (corruption can hit the dial too) abandons
        the connection; the client times out and redials.
        """
        reader = _PreludeReader()

        def on_data(chunk: bytes) -> None:
            try:
                frame = reader.feed(chunk)
                if frame is None:
                    return
                msg = _decode_prelude(frame)
                if not isinstance(msg, wire.ReconnectRequestMessage):
                    raise wire.ProtocolError(
                        f"expected reconnect request, got {msg!r}")
            except (ValueError, KeyError):
                connection.up.disconnect()
                return
            self._on_request(connection, msg, reader.remainder(), viewport)

        connection.up.connect(on_data)

    def _on_request(self, connection: Connection,
                    req: wire.ReconnectRequestMessage, rest: bytes,
                    viewport) -> None:
        now = self.loop.now
        guard = self.guards.get(req.token) if req.token else None
        if guard is None:
            # Fresh attach (or a token the plane no longer knows) —
            # subject to the governor's global admission budget, with
            # the denial in this path's own typed wire format.
            governor = self.server.governor
            if governor.check_admission() is not None:
                governor.stats.admission_denied += 1
                self.stats.reconnects_denied += 1
                self._write_plain(connection, wire.ReconnectDeniedMessage(
                    governor.server_budget.retry_after))
                return
            governor.stats.admitted += 1
            token = self._next_token
            self._next_token += self.config.token_stride
            self._write_plain(connection, wire.ReconnectAcceptMessage(
                token, wire.RESYNC_FRESH))
            session = self.server._make_session(connection, viewport,
                                                sequenced=True)
            limit = min(
                self.config.replay_log_limit or
                2 * self._snapshot_cost(session),
                governor.budget.max_journal_bytes)
            guard = SessionGuard(token, session, now, limit)
            session.journal = self._journal_for(guard)
            session.guard = guard
            self.guards[token] = guard
            self._by_session[session] = guard
            self.stats.attaches += 1
            self._note_accept(guard, now)
            self._ensure_tick()
        else:
            if now < guard.not_before:
                self.stats.reconnects_denied += 1
                self._write_plain(connection, wire.ReconnectDeniedMessage(
                    max(0.0, guard.not_before - now)))
                return
            self._resync(guard, connection, req.last_seq, now)
        if rest:
            guard.session._on_client_data(rest)

    def _resync(self, guard: SessionGuard, connection: Connection,
                client_last_seq: int, now: float) -> None:
        session = guard.session
        replay = [(seq, data) for seq, data in guard.log
                  if seq > client_last_seq]
        replay_bytes = sum(len(data) for _, data in replay)
        snapshot_cost = self._snapshot_cost(session)
        # Replay must be cheaper than a snapshot *and* gap-free from
        # the client's position; the log limit makes the first hold in
        # steady state, this is the belt to those braces.
        contiguous = not guard.log or guard.log[0][0] <= client_last_seq + 1
        use_replay = (not guard.log_dropped and not guard.queue_dropped
                      and contiguous and replay_bytes <= snapshot_cost)
        mode = wire.RESYNC_REPLAY if use_replay else wire.RESYNC_SNAPSHOT
        self._write_plain(connection,
                          wire.ReconnectAcceptMessage(guard.token, mode))
        session.rebind(connection)
        guard.detached_at = None
        guard.last_seen = now
        guard.pressure_ticks = 0
        self._note_accept(guard, now)
        if use_replay:
            session._replay.extend(data for _, data in replay)
            self.stats.resyncs_replay += 1
            self.stats.replayed_bytes += replay_bytes
            self.stats.max_replay_bytes = max(self.stats.max_replay_bytes,
                                              replay_bytes)
        else:
            # Stale state is worthless now: drop it all and push a
            # freshly read, row-banded snapshot of current content.
            session.buffer.queue.clear()
            session._replay.clear()
            session.clear_audio()
            guard.log.clear()
            guard.log_bytes = 0
            guard.log_dropped = False
            guard.queue_dropped = False
            session.shed_display = False
            self.stats.resyncs_snapshot += 1
            self.stats.snapshot_bytes += snapshot_cost
            self.server._submit_refresh(
                session, chunk_rows=self.config.snapshot_chunk_rows)
        session._kick()

    def _snapshot_cost(self, session) -> int:
        """What a full-screen RAW snapshot would put on the wire:
        raw pixel bytes plus framing/wrapper/compression overhead for
        the worst (incompressible) case.  This is the yardstick replay
        must beat — replay bytes never exceed it by construction."""
        w, h = session.viewport
        return w * h * 4 + _SNAPSHOT_SLACK

    def _note_accept(self, guard: SessionGuard, now: float) -> None:
        """Exponential backoff with seeded jitter between accepts."""
        if now - guard.last_accept_time < self.config.flap_window:
            guard.flap_level = min(guard.flap_level + 1, 16)
        else:
            guard.flap_level = 0
        guard.last_accept_time = now
        delay = min(self.config.backoff_base * (2 ** guard.flap_level),
                    self.config.backoff_max)
        delay *= 1.0 + self.config.backoff_jitter * self._rng.random()
        guard.not_before = now + delay

    def _journal_for(self, guard: SessionGuard) -> Callable[[int, bytes],
                                                            None]:
        def record(seq: int, data: bytes) -> None:
            guard.log.append((seq, data))
            guard.log_bytes += len(data)
            if guard.log_bytes > guard.log_limit:
                guard.log.clear()
                guard.log_bytes = 0
                guard.log_dropped = True
                self.stats.log_overflows += 1
        return record

    def _write_plain(self, connection: Connection, msg) -> None:
        data = _checked_prelude(msg)
        if connection.down.writable_bytes() >= len(data):
            connection.down.write(data)

    # -- in-session traffic --------------------------------------------------

    def handle_session_message(self, session, msg) -> bool:
        """First look at every client message; True when consumed."""
        guard = self._by_session.get(session)
        if guard is None:
            return False
        now = self.loop.now
        guard.last_seen = now
        if guard.detached_at is not None and not guard.queue_dropped \
                and session.connection is not None \
                and not session.connection.closed:
            # The quiet spell ended on the same pipe (a one-way stall):
            # re-attach in place, no resync needed — the client never
            # missed a byte.
            guard.detached_at = None
            session.detached = False
            self.stats.reattaches += 1
            session._kick()
        if isinstance(msg, wire.HeartbeatMessage):
            self.stats.heartbeats += 1
            if msg.last_seq > guard.acked_seq:
                guard.acked_seq = msg.last_seq
                log = guard.log
                while log and log[0][0] <= guard.acked_seq:
                    _, data = log.popleft()
                    guard.log_bytes -= len(data)
            return True
        return False

    # -- the liveness / pressure tick ---------------------------------------

    def _ensure_tick(self) -> None:
        if not self._tick_scheduled and self.guards:
            self._tick_scheduled = True
            self.loop.schedule(self.config.check_interval, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        now = self.loop.now
        cfg = self.config
        for guard in self.guards.values():
            session = guard.session
            if guard.detached_at is None:
                if now - guard.last_seen > cfg.liveness_timeout:
                    guard.detached_at = now
                    self.stats.disconnects += 1
                    session.detach()
                else:
                    self._check_pressure(guard, session)
                    self._keepalive(guard, session, now)
            elif not guard.queue_dropped and (
                    now - guard.detached_at > cfg.detach_window
                    or session.buffer.pending_bytes() >
                    self.server.governor.budget.max_queue_bytes):
                # The client stayed away too long — or its absent-state
                # footprint hit the session budget early.  Holding a
                # queue (and log) for it no longer beats a snapshot.
                # Keep control state (cursor, video lifecycles) — only
                # pixels are cheaper to re-read than to replay.
                self._drop_session_state(guard)
        self._ensure_tick()

    def _drop_session_state(self, guard: SessionGuard) -> None:
        """Drop a detached session's queue, log and audio backlog; the
        eventual resync falls back to a fresh RAW snapshot."""
        session = guard.session
        guard.queue_dropped = True
        guard.log.clear()
        guard.log_bytes = 0
        guard.log_dropped = True
        session.buffer.queue.clear()
        session.clear_audio()
        session.shed_display = True
        self.stats.queues_dropped += 1

    def drop_guard(self, session) -> None:
        """Forget a session entirely (governor eviction, or the source
        side of a migration): its token will no longer resync *here* —
        a redial becomes a fresh attach."""
        guard = self._by_session.pop(session, None)
        session.guard = None
        if guard is not None:
            self.guards.pop(guard.token, None)

    # -- migration (driven by repro.cluster) ---------------------------------

    def adopt(self, session, frozen) -> SessionGuard:
        """Take guardianship of a thawed session under its original
        token.

        The mirror of the fresh-attach bookkeeping in ``_on_request``,
        fed from a :class:`~repro.core.session_unit.FrozenSession`
        instead of a dialled connection: the journal, cumulative-ack
        mark and drop flags transfer verbatim, so the client's eventual
        redial takes exactly the replay-vs-snapshot resync decision it
        would have taken on the source shard.  The detach window starts
        *now* — migration spends part of the same bounded absence the
        network-fault path does.
        """
        now = self.loop.now
        limit = min(
            self.config.replay_log_limit or
            2 * self._snapshot_cost(session),
            self.server.governor.budget.max_journal_bytes)
        guard = SessionGuard(frozen.token, session, now, limit)
        guard.acked_seq = frozen.acked_seq
        guard.log_dropped = frozen.log_dropped
        guard.queue_dropped = frozen.queue_dropped
        for seq, data in frozen.journal:
            guard.log.append((seq, data))
            guard.log_bytes += len(data)
        guard.detached_at = now
        session.journal = self._journal_for(guard)
        session.guard = guard
        self.guards[frozen.token] = guard
        self._by_session[session] = guard
        self.stats.attaches += 1
        self._ensure_tick()
        return guard

    def _check_pressure(self, guard: SessionGuard, session) -> None:
        backlog = session.buffer.pending_bytes()
        if backlog > self.config.degrade_high_bytes:
            guard.pressure_ticks += 1
            if not session.degraded and \
                    guard.pressure_ticks >= self.config.degrade_after_checks:
                session.degraded = True
                self.stats.degrade_entered += 1
        elif backlog < self.config.degrade_low_bytes:
            guard.pressure_ticks = 0
            if session.degraded:
                session.degraded = False
                self.stats.degrade_exited += 1

    def _keepalive(self, guard: SessionGuard, session, now: float) -> None:
        """An idle downlink still needs bytes on it, or the client's
        liveness detector would declare a healthy server dead."""
        sent = session._writer.total_bytes
        if sent != guard.last_writer_bytes:
            guard.last_writer_bytes = sent
            guard.last_tx_time = now
        elif now - guard.last_tx_time >= self.config.heartbeat_interval:
            guard.last_tx_time = now
            session.queue_control(wire.HeartbeatMessage(0, now))
            session._kick()


class ResilientClient:
    """A THINC client wrapped with reconnect/resync behaviour.

    ``dial`` is a zero-argument callable producing a fresh
    :class:`Connection` whose server side is already routed to the
    resilience plane (see :func:`repro.net.faults.dial_factory`).
    """

    def __init__(self, loop, dial: Callable[[], Connection],
                 config: Optional[ResilienceConfig] = None,
                 viewport=None, headless: bool = False,
                 decrypt_key: Optional[bytes] = None,
                 cost_model=None, seed: int = 0):
        self.loop = loop
        self.dial = dial
        self.config = config or ResilienceConfig()
        self.client = THINCClient(loop, None, viewport=viewport,
                                  headless=headless,
                                  decrypt_key=decrypt_key,
                                  cost_model=cost_model)
        self.client.on_protocol_error = self._on_protocol_error
        self.client.on_attach_denied = self._on_attach_denied
        self.token = 0
        self.attached = False
        self._stopped = False
        self._pending_conn: Optional[Connection] = None
        self._dial_deadline: Optional[float] = None
        self._retry_level = 0
        self._progress_mark = 0
        self._progress_time = 0.0
        self._rng = random.Random(
            zlib.crc32(f"client|{seed}".encode("utf-8")))
        self.stats = {"dials": 0, "accepts": 0, "denials": 0,
                      "dead_detected": 0, "desyncs_detected": 0,
                      "protocol_errors": 0, "attach_denied": 0,
                      "replay_resyncs": 0, "snapshot_resyncs": 0}

    def _parse_progress(self) -> int:
        """Frames the parser has completed, applied or replay-skipped.

        Bytes received are *not* progress: a corrupted length field can
        leave the stream parser waiting on a phantom frame that keeps
        absorbing (healthy-looking) traffic forever.  Only a completed
        frame proves the framing layer is still synchronised.
        """
        return (self.client.stats["messages"] +
                self.client.stats["replay_skipped"])

    # Convenience pass-throughs ------------------------------------------------

    @property
    def fb(self):
        return self.client.fb

    def start(self) -> None:
        self._dial_now()
        self.loop.schedule(self.config.heartbeat_interval,
                           self._heartbeat_tick)
        self.loop.schedule(self.config.check_interval, self._watch_tick)

    def stop(self) -> None:
        self._stopped = True

    # -- dialling --------------------------------------------------------------

    def _dial_now(self) -> None:
        if self._stopped:
            return
        self.attached = False
        self.stats["dials"] += 1
        conn = self.dial()
        self._pending_conn = conn
        reader = _PreludeReader()

        def on_answer(chunk: bytes) -> None:
            if self._pending_conn is not conn:
                return  # a stale dial answered after we moved on
            try:
                frame = reader.feed(chunk)
                if frame is None:
                    return
                msg = _decode_prelude(frame)
            except (ValueError, KeyError):
                # Corrupted prelude: abandon the dial and retry.
                self.stats["protocol_errors"] += 1
                conn.down.disconnect()
                self._pending_conn = None
                self._dial_deadline = None
                self._schedule_redial()
                return
            self._on_answer(conn, msg, reader.remainder())

        conn.down.connect(on_answer)
        req = _checked_prelude(wire.ReconnectRequestMessage(
            self.token, self.client.last_applied_seq))
        if conn.up.writable_bytes() >= len(req):
            conn.up.write(req)
        self._dial_deadline = self.loop.now + self.config.liveness_timeout

    def _on_answer(self, conn: Connection, msg, rest: bytes) -> None:
        if isinstance(msg, wire.ReconnectAcceptMessage):
            self.token = msg.token
            self.attached = True
            self._pending_conn = None
            self._dial_deadline = None
            self._retry_level = 0
            self.stats["accepts"] += 1
            self._progress_mark = self._parse_progress()
            self._progress_time = self.loop.now
            if msg.resync == wire.RESYNC_FRESH:
                # A brand-new session: sequence space restarts.
                self.client.last_applied_seq = 0
            elif msg.resync == wire.RESYNC_REPLAY:
                self.stats["replay_resyncs"] += 1
            else:
                # RESYNC_SNAPSHOT — and the safe reading of anything
                # unrecognised: expect a sequence discontinuity.
                self.stats["snapshot_resyncs"] += 1
                self.client.note_snapshot_resync()
            self.client.rebind(conn)
            self.client.stats["last_rx_time"] = self.loop.now
            if rest:
                self.client._on_data(rest)
            self._send_heartbeat()  # ack immediately; prunes the log
        elif isinstance(msg, wire.ReconnectDeniedMessage):
            self.stats["denials"] += 1
            conn.down.disconnect()
            self._pending_conn = None
            self._dial_deadline = None
            self._schedule_redial(min_delay=msg.retry_after)
        # Anything else in the prelude is junk; the watch timer retries.

    def _schedule_redial(self, min_delay: float = 0.0) -> None:
        if self._stopped:
            return
        delay = min(self.config.backoff_base * (2 ** self._retry_level),
                    self.config.backoff_max)
        delay *= 1.0 + self.config.backoff_jitter * self._rng.random()
        self._retry_level = min(self._retry_level + 1, 16)
        self.loop.schedule(max(delay, min_delay), self._dial_now)

    # -- steady-state timers ---------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self._stopped:
            return
        if self.attached:
            self._send_heartbeat()
        self.loop.schedule(self.config.heartbeat_interval,
                           self._heartbeat_tick)

    def _send_heartbeat(self) -> None:
        conn = self.client.connection
        if conn is None or conn.closed:
            return
        data = wire.encode_message(wire.HeartbeatMessage(
            self.client.last_applied_seq, self.loop.now))
        if conn.up.writable_bytes() >= len(data):
            conn.up.write(data)

    def _watch_tick(self) -> None:
        if self._stopped:
            return
        now = self.loop.now
        if self.attached:
            quiet = now - self.client.stats["last_rx_time"]
            progress = self._parse_progress()
            if progress != self._progress_mark:
                self._progress_mark = progress
                self._progress_time = now
            if quiet > self.config.liveness_timeout:
                self.stats["dead_detected"] += 1
                self._reconnect()
            elif now - self._progress_time > self.config.liveness_timeout:
                # Bytes keep arriving but no frame ever completes: a
                # corrupted length field has wedged the stream parser on
                # a phantom frame.  The server's keepalives guarantee
                # frame progress on a healthy link, so a silent parser
                # means the framing is desynchronised — resync.
                self.stats["desyncs_detected"] += 1
                self._reconnect()
        elif self._dial_deadline is not None and now > self._dial_deadline:
            # The dial never got an answer (partition, dead socket).
            self._pending_conn = None
            self._dial_deadline = None
            self._schedule_redial()
        self.loop.schedule(self.config.check_interval, self._watch_tick)

    # -- failure paths ---------------------------------------------------------

    def _reconnect(self) -> None:
        self.attached = False
        if self.client.connection is not None:
            self.client.connection.down.disconnect()
        self._schedule_redial()

    def _on_protocol_error(self, exc: Exception) -> None:
        self.stats["protocol_errors"] += 1
        if self.attached:
            self._reconnect()

    def _on_attach_denied(self, msg: "wire.AttachDeniedMessage") -> None:
        """The governor evicted this session mid-stream: back off for
        at least the server's retry hint, then redial (the token was
        forgotten server-side, so the redial is a fresh attach)."""
        self.stats["attach_denied"] += 1
        self.token = 0
        self.attached = False
        if self.client.connection is not None:
            self.client.connection.down.disconnect()
        self._schedule_redial(min_delay=msg.retry_after)
