"""The THINC translation layer: a virtual video device driver.

This is the paper's central artifact (Sections 3–4).  Instead of
programming display hardware, the driver translates each driver-level
operation — with its semantic information still intact — into protocol
commands, applying the three design principles of Section 4:

1. translate *as commands occur*, so the mapping is usually one-to-one
   (a solid fill becomes an SFILL, a stipple a BITMAP, ...);
2. decouple translation from transmission, aggregating small updates
   (per-glyph stipples, scan-line image chunks) before they ship; and
3. preserve command semantics for the whole command lifetime, via the
   command queues that track every offscreen region (Section 4.1).

Offscreen handling: drawing to a pixmap adds commands to that pixmap's
queue instead of the network.  Copies between offscreen regions copy
(never move — a region can source many copies) the translated commands
into the destination queue, relocated.  A copy onscreen replays the
queue's commands to the client, which is what lets THINC ship a
double-buffered browser page as fills, tiles and glyphs rather than as
a giant compressed pixel dump.  Where replay cannot be faithful (pixels
never described by queued commands, or transparent blends over such
pixels) the layer falls back to RAW data read from the server-side
framebuffer — precisely the last-resort behaviour the protocol assigns
to RAW.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Tuple

import numpy as np

from ..display.driver import DisplayDriver, InputEvent, VideoStreamInfo
from ..display.pixmap import Drawable
from ..protocol.commands import (BitmapCommand, Command, CompositeCommand,
                                 CopyCommand, PFillCommand, RawCommand,
                                 SFillCommand, VideoFrameCommand)
from ..region import Rect
from .command_queue import CommandQueue

__all__ = ["THINCDriver", "UpdateSink"]

Color = Tuple[int, int, int, int]


class UpdateSink(Protocol):
    """Where translated updates go — implemented by the THINC server."""

    def submit(self, command: Command) -> None: ...

    def cursor_set(self, pixels, hotspot) -> None: ...

    def video_setup(self, stream: VideoStreamInfo) -> None: ...

    def video_move(self, stream: VideoStreamInfo) -> None: ...

    def video_teardown(self, stream: VideoStreamInfo) -> None: ...

    def note_input(self, event: InputEvent) -> None: ...


class THINCDriver(DisplayDriver):
    """Virtual display driver translating driver ops into THINC commands.

    ``offscreen_awareness`` can be disabled for the ablation study: the
    driver then ignores offscreen drawing entirely and ships raw pixels
    whenever offscreen content is copied onscreen — the behaviour of
    thin clients without Section 4.1's optimisation.
    """

    def __init__(self, sink: UpdateSink, compress_raw: bool = True,
                 offscreen_awareness: bool = True):
        self.sink = sink
        self.compress_raw = compress_raw
        self.offscreen_awareness = offscreen_awareness
        self._offscreen: Dict[int, CommandQueue] = {}
        # The screen drawable, remembered from onscreen operations so
        # the server can source full-screen refreshes (e.g. after a
        # client viewport change).
        self.screen_drawable: Optional[Drawable] = None
        self.stats = {
            "driver_ops": 0,
            "onscreen_commands": 0,
            "offscreen_commands": 0,
            "replayed_commands": 0,
            "raw_fallbacks": 0,
        }

    # -- helpers ---------------------------------------------------------

    def _queue_for(self, drawable: Drawable) -> CommandQueue:
        queue = self._offscreen.get(drawable.id)
        if queue is None:
            queue = CommandQueue()
            self._offscreen[drawable.id] = queue
        return queue

    def offscreen_queue(self, drawable: Drawable) -> Optional[CommandQueue]:
        """Expose a pixmap's queue (diagnostics and tests)."""
        return self._offscreen.get(drawable.id)

    def _emit(self, drawable: Drawable, command: Command) -> None:
        """Route a translated command onscreen or to an offscreen queue."""
        if drawable.onscreen:
            self.screen_drawable = drawable
            self.stats["onscreen_commands"] += 1
            self.sink.submit(command)
        elif self.offscreen_awareness:
            self.stats["offscreen_commands"] += 1
            self._queue_for(drawable).add(command)
        # else: offscreen drawing is ignored (ablation), and copies
        # onscreen will fall back to raw framebuffer reads.

    def _raw_from_fb(self, drawable: Drawable, rect: Rect) -> RawCommand:
        pixels = drawable.fb.read_pixels(rect)
        return RawCommand(rect, pixels, compress=self.compress_raw)

    # -- 2D hooks: one-to-one translation -----------------------------------

    def solid_fill(self, drawable: Drawable, rect: Rect,
                   color: Color) -> None:
        self.stats["driver_ops"] += 1
        self._emit(drawable, SFillCommand(rect, color))

    def pattern_fill(self, drawable: Drawable, rect: Rect,
                     tile: np.ndarray, origin: Tuple[int, int]) -> None:
        self.stats["driver_ops"] += 1
        self._emit(drawable, PFillCommand(rect, tile, origin))

    def bitmap_fill(self, drawable: Drawable, rect: Rect, mask: np.ndarray,
                    fg: Color, bg: Optional[Color]) -> None:
        self.stats["driver_ops"] += 1
        self._emit(drawable, BitmapCommand(rect, mask, fg, bg))

    def put_image(self, drawable: Drawable, rect: Rect,
                  pixels: np.ndarray) -> None:
        self.stats["driver_ops"] += 1
        self._emit(drawable,
                   RawCommand(rect, pixels, compress=self.compress_raw))

    def composite(self, drawable: Drawable, rect: Rect,
                  pixels: np.ndarray, operator: str) -> None:
        self.stats["driver_ops"] += 1
        if operator == "over":
            self._emit(drawable, CompositeCommand(rect, pixels))
        else:
            # Exotic operators lose their semantics; ship the result.
            self._emit(drawable, self._raw_from_fb(drawable, rect))

    # -- the four copy cases -----------------------------------------------

    def copy_area(self, src: Drawable, dst: Drawable, src_rect: Rect,
                  dst_x: int, dst_y: int) -> None:
        self.stats["driver_ops"] += 1
        if src.onscreen and dst.onscreen:
            # Screen-to-screen: the client has the pixels; just COPY.
            self.screen_drawable = dst
            dest = Rect(dst_x, dst_y, src_rect.width, src_rect.height)
            self.sink.submit(CopyCommand(src_rect.x, src_rect.y, dest))
            self.stats["onscreen_commands"] += 1
        elif src.onscreen and not dst.onscreen:
            # Screen-to-pixmap: snapshot the pixels into the queue.
            if self.offscreen_awareness:
                dest = Rect(dst_x, dst_y, src_rect.width, src_rect.height)
                raw = RawCommand(dest, src.fb.read_pixels(src_rect),
                                 compress=self.compress_raw)
                self._queue_for(dst).add(raw)
                self.stats["offscreen_commands"] += 1
        elif not src.onscreen and dst.onscreen:
            self.screen_drawable = dst
            self._copy_offscreen_out(src, src_rect, dst_x, dst_y,
                                     self.sink.submit)
        else:
            queue = self._queue_for(dst) if self.offscreen_awareness else None
            if queue is not None:
                self._copy_offscreen_out(src, src_rect, dst_x, dst_y,
                                         queue.add, count_as_replay=False)

    def _copy_offscreen_out(self, src: Drawable, src_rect: Rect,
                            dst_x: int, dst_y: int, emit,
                            count_as_replay: bool = True) -> None:
        """Reproduce offscreen content at a new place (Section 4.1)."""
        dx = dst_x - src_rect.x
        dy = dst_y - src_rect.y
        src_rect = src_rect.intersect(src.bounds)
        if src_rect.empty:
            return
        queue = (self._offscreen.get(src.id)
                 if self.offscreen_awareness else None)
        if queue is None:
            # No semantic record: last-resort RAW of the final pixels.
            raw = self._raw_from_fb(src, src_rect).translated(dx, dy)
            self.stats["raw_fallbacks"] += 1
            emit(raw)
            return
        commands = queue.commands_for_copy(src_rect, dx, dy)
        for cmd in commands:
            emit(cmd)
        if count_as_replay:
            self.stats["replayed_commands"] += len(commands)
        for rect in queue.uncovered_region(src_rect):
            self.stats["raw_fallbacks"] += 1
            emit(self._raw_from_fb(src, rect).translated(dx, dy))

    def destroy_drawable(self, drawable: Drawable) -> None:
        self._offscreen.pop(drawable.id, None)

    # -- video and input --------------------------------------------------

    def video_setup(self, stream: VideoStreamInfo) -> None:
        self.sink.video_setup(stream)

    def video_put(self, stream: VideoStreamInfo, yuv_planes: bytes,
                  dst_rect: Rect) -> None:
        self.stats["driver_ops"] += 1
        self.sink.submit(VideoFrameCommand(
            stream.stream_id, dst_rect, stream.src_width,
            stream.src_height, yuv_planes, frame_no=stream.frames_put,
            pixel_format=stream.pixel_format))

    def video_move(self, stream: VideoStreamInfo, dst_rect: Rect) -> None:
        self.sink.video_move(stream)

    def video_teardown(self, stream: VideoStreamInfo) -> None:
        self.sink.video_teardown(stream)

    def cursor_set(self, pixels: np.ndarray,
                   hotspot: Tuple[int, int]) -> None:
        self.sink.cursor_set(pixels, hotspot)

    def input_event(self, event: InputEvent) -> None:
        self.sink.note_input(event)
