"""Adaptive QoS plane: spend video fidelity before interactivity.

THINC's delivery stack already has the right *primitives* for a
contended link — video frames are self-contained and overwrite their
destination completely (Section 4.2: "frames can simply be dropped"),
the scheduler favours real-time regions, and the governor sheds audio
before display.  What the fixed-rate path lacks is a *policy* that
notices congestion early and sacrifices the most elastic traffic class
first.  This plane supplies it: per session, video walks a seeded,
hysteresis-guarded degradation ladder while interactive updates keep
their latency, and symmetric ramp-up restores full-rate video once the
link clears.

The ladder (rung 0 is the paper's fixed-rate path, byte-identical):

====  ==========================================================
rung  video treatment
====  ==========================================================
0     full-rate YV12 passthrough (the unmodified command object)
1     cadence halving — frames whose number is off the divisor
      grid are dropped before they cost wire bytes
2     rung 1 plus resolution step-down: the frame is decoded,
      nearest-neighbour scaled by ``1 >> scale_shift`` (even
      dimensions preserved for the planar formats) and re-encoded;
      the client's own VFRAME scaling stretches it back over the
      unchanged destination rectangle, so *no wire change at all*
      is needed for reduced-resolution frames
3     rung 2 plus a flat quantiser squeeze on the RGB surface
      before re-encode — the chroma/detail loss DEFLATEs away
====  ==========================================================

Classification is structural: INTERACTIVE traffic (display commands,
control, input echo) never passes through this plane — only
:class:`~repro.protocol.commands.VideoFrameCommand` does — and AUDIO
sits between them via the governor's ladder: a whole video rung is
spent before the degrade stage (which sheds audio) may engage.

Two deliberate design points keep the plane simulation-friendly:

* **No timers.**  Congestion is polled lazily when video frames pass
  through, rate-limited to the configured interval, so an idle server
  schedules nothing and ``run_until_idle`` terminates.  All time comes
  from the :class:`~repro.net.clock.EventLoop` clock.
* **Plane-owned controller state.**  Hysteresis counters, poll clocks
  and the seeded ramp-up jitter live here, keyed by session identity
  — never on the unit — so the frozen-surface allowlist stays exact.
  Only the rung itself (``SessionUnit.qos_rung``) migrates; a thawed
  session re-derives its hysteresis from live measurements.

Every rung change is announced to the client with a
``VIDEO_QUALITY`` descriptor, and recovery to rung 0 triggers a
lossless refresh of each active stream's destination so convergence
back to pixel-exact content never depends on the video source still
producing frames.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..codec import EncoderPolicy, LinkPosture
from ..protocol import wire
from ..protocol.commands import VideoFrameCommand
from ..protocol.limits import LIMITS
from ..region import Rect
from ..video import yuv

__all__ = ["QosConfig", "QosPlane", "MAX_RUNG"]

#: Deepest ladder rung; mirrors the wire bound so a descriptor for any
#: reachable rung always encodes.
MAX_RUNG = LIMITS.max_qos_rung


@dataclass(frozen=True)
class QosConfig:
    """Tunables for the adaptive QoS plane.

    ``degrade_polls`` consecutive congested polls step the ladder down
    one rung; ``recover_polls`` consecutive clear polls (plus a seeded
    jitter of up to ``recover_jitter`` extra polls, so a fleet of
    sessions does not ramp up in lockstep and re-congest the link)
    step it back up.  ``policy`` supplies the congestion verdict —
    the same :class:`~repro.codec.EncoderPolicy` posture probe the
    adaptive encoder uses — and defaults to a stock policy so the QoS
    plane works on servers that keep the fixed PNG encoder.

    ``report_gap``/``report_hold`` govern the *end-to-end* signal: when
    consecutive client QOS_REPORTs show the delivery gap (frames the
    server submitted minus frames the client acknowledges) growing by
    at least ``report_gap`` frames, frames are queuing somewhere past
    this server's own transport — e.g. a relay's thin access link the
    local probe cannot see — and that counts as congestion evidence.
    The signal is degrade-only and recovery stays blocked for
    ``report_hold`` seconds after such evidence: a lying client can
    hurt nothing but its own video quality.
    """

    poll_interval: float = 0.05
    window: float = 0.25
    degrade_polls: int = 2
    recover_polls: int = 6
    recover_jitter: int = 2
    fps_divisor: int = 2
    scale_shift: int = 1
    qstep: int = 8
    report_gap: int = 2
    report_hold: float = 0.5
    seed: int = 0
    policy: Optional[EncoderPolicy] = None

    def __post_init__(self):
        if self.poll_interval <= 0 or self.window <= 0:
            raise ValueError("poll_interval and window must be positive")
        if not 2 <= self.fps_divisor <= LIMITS.max_fps_divisor:
            raise ValueError(
                f"fps_divisor must be in [2, {LIMITS.max_fps_divisor}]")
        if not 1 <= self.scale_shift <= LIMITS.max_scale_shift:
            raise ValueError(
                f"scale_shift must be in [1, {LIMITS.max_scale_shift}]")
        if not 1 <= self.qstep <= LIMITS.max_qos_qstep:
            raise ValueError(
                f"qstep must be in [1, {LIMITS.max_qos_qstep}]")
        if self.degrade_polls < 1 or self.recover_polls < 1:
            raise ValueError("hysteresis poll counts must be >= 1")
        if self.recover_jitter < 0:
            raise ValueError("recover_jitter must be >= 0")
        if self.report_gap < 1:
            raise ValueError("report_gap must be >= 1")
        if self.report_hold < 0:
            raise ValueError("report_hold must be >= 0")


class _SessionQos:
    """Plane-owned controller state for one session (never serialized;
    a migrated session re-derives all of this from live polls)."""

    __slots__ = ("congested", "clear", "last_poll", "last_step",
                 "grace_until", "recover_block_until", "submitted",
                 "base_gap", "rng", "recover_target")

    def __init__(self, rng: random.Random, recover_polls: int,
                 jitter: int):
        self.congested = 0
        self.clear = 0
        self.last_poll = -1e9
        self.last_step = -1e9
        self.grace_until = -1e9
        self.recover_block_until = -1e9
        # Per-stream frames this server actually submitted for the
        # session, and the smallest delivery gap any QOS_REPORT has
        # shown (the low-water mark congestion is judged against).
        self.submitted: Dict[int, int] = {}
        self.base_gap: Dict[int, int] = {}
        self.rng = rng
        self.recover_target = recover_polls + rng.randrange(jitter + 1)

    def reroll(self, recover_polls: int, jitter: int) -> None:
        self.recover_target = recover_polls + self.rng.randrange(jitter + 1)


class QosPlane:
    """Per-session video degradation ladder over the flush boundary."""

    #: Re-exported for callers holding only the plane (the governor's
    #: shed-order check).
    MAX_RUNG = MAX_RUNG

    def __init__(self, server, config: Optional[QosConfig] = None):
        self.server = server
        self.loop = server.loop
        self.config = config or QosConfig()
        self.policy = self.config.policy or EncoderPolicy()
        self._states: Dict[int, _SessionQos] = {}
        self._order = 0
        #: Active stream destinations (server coordinates), fed by the
        #: driver's setup/move hooks and lazily by passing frames; the
        #: recovery refresh repaints exactly these rectangles.
        self.streams: Dict[int, Rect] = {}
        #: Latest client quality report per stream id.
        self.reports: Dict[int, wire.QosReportMessage] = {}
        self.stats: Dict[str, float] = {
            "polls": 0,
            "frames_passed": 0,
            "frames_dropped": 0,
            "frames_degraded": 0,
            "rungs_down": 0,
            "rungs_up": 0,
            "governor_sheds": 0,
            "recoveries": 0,
            "descriptors_sent": 0,
            "reports": 0,
            "report_lag_events": 0,
            "playback_quality": 1.0,
            "audio_quality": 1.0,
            "av_sync_skew": 0.0,
        }

    # -- controller state ----------------------------------------------------

    def _state(self, session) -> _SessionQos:
        state = self._states.get(id(session))
        if state is None:
            # Seeded per registration order (the FaultyEndpoint idiom):
            # the same attach sequence always yields the same ramp-up
            # jitter, so chaos scenarios replay from their seed alone.
            rng = random.Random(zlib.crc32(
                f"{self.config.seed}|{self._order}".encode("utf-8")))
            self._order += 1
            state = _SessionQos(rng, self.config.recover_polls,
                                self.config.recover_jitter)
            self._states[id(session)] = state
        return state

    def _prune(self, sessions) -> None:
        if len(self._states) > len(sessions):
            live = {id(s) for s in sessions}
            self._states = {k: v for k, v in self._states.items()
                            if k in live}

    # -- congestion probe ----------------------------------------------------

    def _congested(self, session, now: float) -> bool:
        """One session's downlink verdict, from the same three signals
        the adaptive encoder's posture probe uses: governor state,
        transport send backlog against the drain horizon, and measured
        throughput against link capacity."""
        if session.connection is None:
            return False  # detached: the ladder holds its position
        if session.degraded or session.shed_display:
            return True
        down = session.connection.down
        monitor = getattr(down, "monitor", None)
        measured = None
        if monitor is not None:
            measured = monitor.rate("server->client",
                                    window=self.config.window, now=now)
        backlog = (session.buffer.pending_bytes()
                   + getattr(down, "queued_bytes", 0))
        posture = self.policy.posture_for(
            measured, down.link.throughput * 8.0, backlog)
        return posture is LinkPosture.DEGRADED

    def _poll(self, session, now: float) -> None:
        cfg = self.config
        state = self._state(session)
        if now - state.last_poll < cfg.poll_interval:
            return
        state.last_poll = now
        self.stats["polls"] += 1
        if now < state.grace_until:
            # A just-sent recovery refresh pollutes the measurement
            # window with our own burst; hold position until it ages
            # out rather than re-degrading on self-inflicted load.
            return
        if self._congested(session, now):
            state.clear = 0
            state.congested += 1
            if state.congested >= cfg.degrade_polls:
                state.congested = 0
                self._step_down(session, now)
        else:
            if now < state.recover_block_until:
                # A recent QOS_REPORT showed end-to-end lag: the local
                # probe's clear verdict only covers the first hop, so
                # neither ramp up nor erase the report's congestion
                # evidence until the reports go quiet.
                state.clear = 0
                return
            state.congested = 0
            if session.qos_rung == 0:
                return
            state.clear += 1
            if state.clear >= state.recover_target:
                state.clear = 0
                self._step_up(session, now)

    # -- ladder steps --------------------------------------------------------

    def _step_down(self, session, now: float) -> bool:
        if session.qos_rung >= MAX_RUNG:
            return False
        state = self._state(session)
        if now - state.last_step < self.config.poll_interval:
            return False  # one rung per interval: never skip rungs
        state.last_step = now
        state.clear = 0
        session.qos_rung += 1
        self.stats["rungs_down"] += 1
        self._announce(session)
        return True

    def _step_up(self, session, now: float) -> None:
        if session.qos_rung <= 0:
            return
        state = self._state(session)
        state.last_step = now
        session.qos_rung -= 1
        state.reroll(self.config.recover_polls, self.config.recover_jitter)
        self.stats["rungs_up"] += 1
        self._announce(session)
        if session.qos_rung == 0:
            self._recover(session)
            # The refresh burst must transmit and then age out of the
            # rate-probe window before verdicts are trustworthy again.
            state.grace_until = now + 2.0 * self.config.window \
                + self.config.poll_interval

    def _recover(self, session) -> None:
        """Back to rung 0: repaint each stream's destination lossless.

        The next full-rate frame would repaint it too (VFRAME is a
        complete overwrite), but the refresh makes pixel-exact
        convergence unconditional — a video source that stopped
        producing mid-recovery leaves no stale degraded pixels behind.
        """
        self.stats["recoveries"] += 1
        screen = self.server.driver.screen_drawable
        for rect in self.streams.values():
            if screen is not None:
                rect = rect.intersect(screen.bounds)
                if rect.empty:
                    continue
            self.server._submit_refresh(session, rect=rect)

    def shed_video(self, session) -> bool:
        """Governor hook: spend one whole video rung before the
        degrade (audio-shedding) stage may engage.  Rate-limited to
        one rung per poll interval so a single queue spike cannot
        race the ladder to the bottom."""
        stepped = self._step_down(session, self.loop.now)
        if stepped:
            self.stats["governor_sheds"] += 1
        return stepped

    # -- descriptors ---------------------------------------------------------

    def descriptor(self, rung: int) -> tuple:
        """``(fps_divisor, scale_shift, qstep)`` announced for *rung*."""
        cfg = self.config
        return (cfg.fps_divisor if rung >= 1 else 1,
                cfg.scale_shift if rung >= 2 else 0,
                cfg.qstep if rung >= 3 else 0)

    def quality_message(self, stream_id: int,
                        rung: int) -> wire.VideoQualityMessage:
        divisor, shift, qstep = self.descriptor(rung)
        return wire.VideoQualityMessage(stream_id, rung, divisor,
                                        shift, qstep)

    def _announce(self, session) -> None:
        for stream_id in self.streams:
            session.queue_control(
                self.quality_message(stream_id, session.qos_rung))
            self.stats["descriptors_sent"] += 1

    # -- stream lifecycle (driven by THINCServer's driver hooks) -------------

    def note_setup(self, stream) -> None:
        self.streams[stream.stream_id] = stream.dst_rect

    def note_move(self, stream) -> None:
        self.streams[stream.stream_id] = stream.dst_rect

    def note_teardown(self, stream_id: int) -> None:
        self.streams.pop(stream_id, None)

    def note_report(self, session, msg: wire.QosReportMessage) -> None:
        """Record a client's QOS_REPORT (Section 8.2's quality measures
        computed at the client, reported upstream) and mine it for the
        end-to-end congestion signal.

        The local probe only sees this server's own transport; behind a
        relay tier the contended access link is invisible to it.  The
        report's ``frames_received`` closes that gap: the server knows
        how many frames it submitted for each stream, so a delivery
        gap sitting ``report_gap`` frames above its low-water mark
        means frames are queuing somewhere downstream.  The signal is
        deliberately asymmetric — it can push the ladder down and
        block recovery, never ramp it up — so a client fabricating
        reports can only degrade its own video.
        """
        self.reports[msg.stream_id] = msg
        self.stats["reports"] += 1
        self.stats["playback_quality"] = msg.playback_quality
        self.stats["audio_quality"] = msg.audio_quality
        self.stats["av_sync_skew"] = msg.av_skew
        state = self._state(session)
        submitted = state.submitted.get(msg.stream_id)
        if submitted is None:
            return  # no frames of this stream sent by this server yet
        gap = submitted - msg.frames_received
        base = state.base_gap.get(msg.stream_id)
        if base is None or gap < base:
            state.base_gap[msg.stream_id] = base = gap
        if gap - base < self.config.report_gap:
            return
        now = self.loop.now
        state.recover_block_until = now + self.config.report_hold
        state.clear = 0
        state.congested += 1
        self.stats["report_lag_events"] += 1
        if state.congested >= self.config.degrade_polls:
            state.congested = 0
            self._step_down(session, now)

    # -- the dispatch boundary -----------------------------------------------

    def intercepts(self, command) -> bool:
        """Traffic classification at the submit boundary: only the
        VIDEO class detours through the ladder.  INTERACTIVE display
        commands and everything else keep the direct prepare-plane
        path untouched."""
        return isinstance(command, VideoFrameCommand)

    def dispatch(self, command: VideoFrameCommand, sessions) -> None:
        """Route one video frame to every session at its own rung.

        Rung-0 sessions receive the *original command object* through
        the same shared prepare-plane call the fixed-rate path makes —
        an uncontended server with QoS enabled is byte-identical to one
        without it.  Degraded sessions share one transformed variant
        per rung, so same-rung fan-out pays the re-encode once.
        """
        now = self.loop.now
        self.streams.setdefault(command.stream_id, command.dest)
        self._prune(sessions)
        groups: Dict[int, List] = {}
        for session in sessions:
            self._poll(session, now)
            groups.setdefault(session.qos_rung, []).append(session)
        sid = command.stream_id
        for rung in sorted(groups):
            group = groups[rung]
            if rung == 0:
                self.stats["frames_passed"] += len(group)
                self._count_submitted(group, sid)
                self.server.plane.submit(command, group)
                continue
            if command.frame_no % self.config.fps_divisor != 0:
                # Cadence rung: off-grid frames die before costing
                # wire bytes (VFRAME overwrites completely, so a
                # dropped frame is pure savings, never corruption).
                self.stats["frames_dropped"] += len(group)
                continue
            self.stats["frames_degraded"] += len(group)
            self._count_submitted(group, sid)
            self.server.plane.submit(self._transform(command, rung), group)

    def _count_submitted(self, group, stream_id: int) -> None:
        # Ground truth for the report-gap signal: frames this server
        # actually put on each session's path (cadence drops excluded).
        for session in group:
            sub = self._state(session).submitted
            sub[stream_id] = sub.get(stream_id, 0) + 1

    def _transform(self, command: VideoFrameCommand,
                   rung: int) -> VideoFrameCommand:
        """The rung's video treatment; rung 1 passes frames untouched
        (cadence alone), deeper rungs decode/squeeze/re-encode."""
        if rung <= 1:
            return command
        cfg = self.config
        rgb = yuv.decode_frame(command.pixel_format, command.yuv_bytes,
                               command.src_width, command.src_height)
        # Even dimensions (floor 2) keep every planar format legal.
        width = max(2, (command.src_width >> cfg.scale_shift) & ~1)
        height = max(2, (command.src_height >> cfg.scale_shift) & ~1)
        rgb = yuv.scale_rgb(rgb, width, height)
        if rung >= 3:
            q = cfg.qstep
            rgb = np.minimum((rgb.astype(np.int32) // q) * q + q // 2,
                             255).astype(np.uint8)
        return VideoFrameCommand(
            command.stream_id, command.dest, width, height,
            yuv.encode_frame(command.pixel_format, rgb),
            frame_no=command.frame_no,
            pixel_format=command.pixel_format)

    # -- diagnostics ---------------------------------------------------------

    def rung_of(self, session) -> int:
        return session.qos_rung
