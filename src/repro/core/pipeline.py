"""The staged command-preparation pipeline.

Display updates flow through six named stages on their way from the
window server to a client::

    Translate -> Scale -> Prepare/Compress -> Buffer/Schedule
              -> Encrypt/Frame -> Flush

The first three stages are *shared* across sessions; the last three are
per-session.  The architectural point (mirroring how VDI systems share
encode work across viewers) is that scaling and RAW/composite payload
compression — the only expensive CPU in the server — happen **once per
distinct viewport**, not once per client:

* :class:`PreparePlane` owns the Scale and Prepare/Compress stages.  A
  prepared-command cache keyed by ``(command identity, viewport scale
  key)`` holds the scaled, compressed result of each translated
  command; N attached clients with the same viewport cause one cache
  miss (the work) and N-1 hits (free).  The serial CPU model charges
  the preparation cost once, on the miss.
* Each session receives a cheap per-session *clone* of the prepared
  command (`Command.translated(0, 0)` shares the pixel arrays and the
  cached compressed payload), because the per-session command queue
  mutates what it stores (sequence numbers, clipping, merging) and the
  cached original must stay pristine.  Shared payloads also make the
  wire frames of cache hits byte-identical across sessions.

Every stage carries a :class:`StageStats` block (commands in/out, bytes
out, CPU seconds, cache hits/misses, queue depth) so servers, sessions
and benchmarks can report exactly where work happens; see
``THINCServer.pipeline_stats`` and :func:`repro.bench.analysis.pipeline_report`.

Ordering guarantee: prepared commands become *ready* at the CPU model's
completion time, and a cache hit can be ready before work submitted
earlier to the same session has finished preparing.  Sessions therefore
enqueue through a monotonic per-session pipe tail (`enqueue_prepared`)
so the buffer stage always sees commands in submission order — the
invariant the command queue's eviction and dependency rules assume.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Tuple

from ..codec import Encoding, LinkPosture, classify
from ..protocol import compression, wire
from ..protocol.commands import (Command, CompositeCommand, RawCommand,
                                 SFillCommand)
from . import sanitizer

__all__ = ["STAGE_NAMES", "StageStats", "PreparedCommand", "PreparePlane",
           "TranslateStage", "FrameStage"]

STAGE_NAMES = ("translate", "scale", "prepare", "buffer", "frame", "flush")


class StageStats:
    """Uniform instrumentation counters carried by every stage."""

    __slots__ = ("commands_in", "commands_out", "bytes_out", "cpu_seconds",
                 "cache_hits", "cache_misses", "queue_depth")

    def __init__(self) -> None:
        self.commands_in = 0
        self.commands_out = 0
        self.bytes_out = 0
        self.cpu_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.queue_depth = 0

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def accumulate(self, other: "StageStats") -> "StageStats":
        """Sum *other* into self (used to aggregate session stages)."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"StageStats({body})"


class TranslateStage:
    """Stage 1 — where translated driver commands enter the pipeline.

    Translation itself happens in :class:`repro.core.translation.
    THINCDriver`; this stage marks the boundary at which a translated
    command is admitted into the delivery pipeline, and counts it.
    """

    name = "translate"

    def __init__(self) -> None:
        self.stats = StageStats()

    def admit(self, command: Command) -> Command:
        self.stats.commands_in += 1
        self.stats.commands_out += 1
        return command


class PreparedCommand:
    """A scaled, compressed command plus the time its CPU work completes."""

    __slots__ = ("command", "ready_at")

    def __init__(self, command: Command, ready_at: float):
        self.command = command
        self.ready_at = ready_at


class PreparePlane:
    """Stages 2–3 — shared Scale and Prepare/Compress planes.

    The cache key is ``(command identity, encoding, viewport scale
    key)``: command identity is a monotonically increasing id stamped
    on each translated command the first time it enters the plane, the
    encoding is the RAW payload encoding the adaptive policy chose (-1
    for non-RAW commands), and the scale key is :attr:`repro.core.
    resize.DisplayScaler.key` (view rect + client size — everything
    that determines the scaled output).
    """

    def __init__(self, loop, cost_model, cache_entries: int = 128):
        self.loop = loop
        self.cost_model = cost_model
        self.cache_entries = cache_entries
        # (prep_id, encoding, scale_key) -> List[PreparedCommand],
        # LRU-ordered.  The encoding joins the key so an entry prepared
        # under one encoding can never satisfy a lookup for another.
        self._cache: "OrderedDict[Tuple, List[PreparedCommand]]" = \
            OrderedDict()
        self._prep_ids = itertools.count()
        # One serial CPU pipeline for the whole server: preparation cost
        # is charged here exactly once per distinct prepared entry.
        self._cpu_free_at = 0.0
        # Optional second-level cache shared *across* prepare planes
        # (duck-typed: get(command, scale_key) / put(command, scale_key,
        # entry)).  The cluster layer injects one so shards stop paying
        # for work a peer already compressed; the core never depends on
        # it.  Entries are keyed by command *content*, not prep id —
        # prep ids are plane-local.
        self.shared_cache = None
        # Optional adaptive encoder: a repro.codec.EncoderPolicy plus a
        # zero-arg posture callable returning a LinkPosture (or a bool
        # meaning degraded-or-not).  When set, every *fresh* RAW
        # command is classified and re-encoded (or demoted to SFILL)
        # before it is stamped with a prep id, so the chosen encoding
        # is part of the command's cached identity.
        self.policy = None
        self.posture = None
        # Optional per-session posture probe (``session -> LinkPosture``
        # or bool).  When set alongside ``policy``, every fresh RAW
        # command is encoded once per *posture equivalence class* of the
        # submitted sessions instead of once under the server-wide
        # worst-link posture — the broadcast fan-out plane wires this so
        # one congested subscriber can never force lossy payloads on its
        # LAN-class peers.  ``posture`` (zero-arg, server-wide) remains
        # the fallback when this is unset.
        self.posture_of = None
        # Pinned cache keys: entries still referenced by a pending
        # broadcast relay queue.  Refcounted; :meth:`_trim` skips them
        # so the LRU bound can never evict work a relay has promised to
        # deliver (the sanitizer audits this — see
        # ``repro.core.sanitizer.check_prepare_pins``).
        self._pins: Dict[Tuple, int] = {}
        # ``rect -> pixels`` over the live screen framebuffer, supplied
        # by the server so the scale stage can materialise COPY
        # commands whose source lies outside a session's view (tile
        # walls, zoomed viewports).
        self.read_back = None
        self.scale_stats = StageStats()
        self.stats = StageStats()  # the Prepare/Compress stage

    # -- adaptive encoding ---------------------------------------------------

    def _demote_solid(self, command: RawCommand, color) -> SFillCommand:
        fill = SFillCommand(command.dest, color)
        fill.seq = command.seq
        fill.realtime = command.realtime
        fill.sched_floor = command.sched_floor
        return fill

    def _admit_encoding(self, command: Command) -> Command:
        if (self.policy is None or not isinstance(command, RawCommand)
                or getattr(command, "_prep_id", None) is not None):
            return command
        posture = self.posture() if self.posture is not None else False
        choice = self.policy.select(command.pixels, posture)
        if choice.solid_color is not None:
            return self._demote_solid(command, choice.solid_color)
        return command.with_encoding(choice.encoding)

    def variants(self, command: Command,
                 sessions: Iterable) -> Iterator[Tuple[List, Command]]:
        """Partition *sessions* into encoding equivalence classes.

        Yields ``(members, variant)`` pairs where *variant* is the
        command encoded for that class and *members* the sessions that
        should receive it.  Without a per-session posture probe this
        degenerates to the single-class path: one variant (the
        server-wide admitted encoding) for every session.  All variants
        of one submitted command share a single prep id, so two posture
        classes that resolve to the same encoding also share one cache
        entry per scale key — the ``(scale, pixel-format, encoding)``
        equivalence class of the fan-out design.
        """
        sessions = list(sessions)
        if (self.policy is None or self.posture_of is None
                or not isinstance(command, RawCommand)
                or getattr(command, "_prep_id", None) is not None):
            variant = self._admit_encoding(command)
            if getattr(variant, "_prep_id", None) is None:
                variant._prep_id = next(self._prep_ids)
            yield sessions, variant
            return
        pid = command._prep_id = next(self._prep_ids)
        classes: "OrderedDict[int, List]" = OrderedDict()
        for session in sessions:
            classes.setdefault(int(self.posture_of(session)),
                               []).append(session)
        # Content statistics are posture-independent: classify once per
        # command, not once per class.
        stats = classify(command.pixels)
        emitted: "OrderedDict[int, Tuple[List, Command]]" = OrderedDict()
        for posture_key, members in classes.items():
            choice = self.policy.select(command.pixels,
                                        LinkPosture(posture_key),
                                        stats=stats)
            if choice.solid_color is not None:
                variant = self._demote_solid(command, choice.solid_color)
            elif choice.encoding is command.encoding:
                # Same encoding the translator produced: reuse the
                # original so a pre-materialised batch payload survives.
                variant = command
            else:
                variant = command.with_encoding(choice.encoding)
            variant._prep_id = pid
            marker = self._encoding_of(variant)
            if marker in emitted:
                emitted[marker][0].extend(members)
            else:
                emitted[marker] = (members, variant)
        for members, variant in emitted.values():
            yield members, variant

    @staticmethod
    def _encoding_of(command: Command) -> int:
        enc = getattr(command, "encoding", None)
        return -1 if enc is None else int(enc)

    # -- the shared path -----------------------------------------------------

    def submit(self, command: Command, sessions: Iterable) -> None:
        """Prepare *command* once per distinct viewport among *sessions*
        and fan the prepared clones out to each session's buffer stage.
        """
        for members, variant in self.variants(command, sessions):
            for session in members:
                _, entry = self.prepare_entry(variant, session)
                for prepared in entry:
                    # Per-session clone: shares pixels and compressed
                    # payload, but queue-mutable state stays private.
                    session.enqueue_prepared(
                        prepared.command.translated(0, 0),
                        prepared.ready_at)

    def prepare_entry(self, command: Command, session,
                      pin: bool = False
                      ) -> Tuple[Tuple, List[PreparedCommand]]:
        """Resolve *command* to its prepared entry for *session*'s
        viewport: cache hit, shared-cache adoption, or a fresh prepare
        (the CPU-charging miss).  Returns ``(cache_key, entry)``.

        Callers that hold entries across event-loop turns (the
        broadcast relay queues) must pass ``pin=True`` rather than
        calling :meth:`pin` afterwards: the store inside this method
        trims the cache, and when every other slot is already pinned
        the trim would evict the *new* key before the caller could
        protect it.
        """
        pid = command._prep_id
        key = (pid, self._encoding_of(command)) + session.scaler.key
        if pin:
            self.pin(key)
        entry = self._cache.get(key)
        if entry is None:
            shared = self.shared_cache
            entry = shared.get(command, session.scaler.key) \
                if shared is not None else None
            if entry is not None:
                # A peer plane already paid the CPU for this exact
                # (content, viewport) pair; adopt its entry locally.
                self._store(key, entry)
                self.stats.cache_hits += 1
            else:
                entry, cost = self._prepare(command, session.scaler)
                self._store(key, entry)
                self.stats.cache_misses += 1
                # Attribute the miss to the session that triggered
                # it; per-session cpu_time sums to the server total.
                session.stats["cpu_time"] += cost
                if shared is not None:
                    shared.put(command, session.scaler.key, entry)
        else:
            self._cache.move_to_end(key)
            self.stats.cache_hits += 1
        return key, entry

    def submit_batch(self, commands: Iterable[Command],
                     sessions: Iterable) -> None:
        """Admit one pipeline drain of commands at once.

        Same semantics as calling :meth:`submit` per command — the
        fan-out, cache keys and ordering are identical — but fresh RAW
        blocks of the same shape headed for PNG encoding are filtered
        in one fused numpy pass (:func:`repro.protocol.compression.
        png_compress_batch`) and their payloads pre-materialised, so
        the per-command prepare step finds the bytes already cached.
        Byte-for-byte identical to the per-command path.
        """
        sessions = list(sessions)
        admitted = [self._admit_encoding(c) for c in commands]
        groups: Dict[Tuple, List[RawCommand]] = {}
        for cmd in admitted:
            if (isinstance(cmd, RawCommand)
                    and cmd.encoding is Encoding.PNG
                    and cmd._payload is None
                    and getattr(cmd, "_prep_id", None) is None):
                groups.setdefault(cmd.pixels.shape, []).append(cmd)
        for members in groups.values():
            if len(members) < 2:
                continue
            payloads = compression.png_compress_batch(
                [m.pixels for m in members])
            for member, payload in zip(members, payloads):
                member._payload = payload
        for cmd in admitted:
            self.submit(cmd, sessions)

    def _prepare(self, command: Command,
                 scaler) -> Tuple[List[PreparedCommand], float]:
        self.scale_stats.commands_in += 1
        scaled = scaler.scale_command(command, read_back=self.read_back)
        self.scale_stats.commands_out += len(scaled)
        out: List[PreparedCommand] = []
        total_cost = 0.0
        for cmd in scaled:
            cpu = self.cost_model.cost(cmd)
            start = max(self.loop.now, self._cpu_free_at)
            self._cpu_free_at = start + cpu
            total_cost += cpu
            self.stats.commands_in += 1
            self.stats.commands_out += 1
            self.stats.cpu_seconds += cpu
            if isinstance(cmd, (RawCommand, CompositeCommand)):
                # Materialise the compressed payload now: this is the
                # Prepare/Compress stage's real work, done once and then
                # shared by every clone (hence byte-identical frames).
                self.stats.bytes_out += len(cmd._encoded_payload())
            else:
                self.stats.bytes_out += cmd.wire_size()
            out.append(PreparedCommand(cmd, self._cpu_free_at))
        return out, total_cost

    def _store(self, key: Tuple, entry: List[PreparedCommand]) -> None:
        self._cache[key] = entry
        self._trim()

    def _trim(self) -> None:
        """Evict LRU entries past the bound, skipping pinned keys.

        A pinned entry is referenced by a broadcast relay queue that
        has not yet drained it to its subscriber; evicting it would
        force a re-prepare (or, for an adaptive re-encode, silently
        change bytes a peer subscriber already received from the same
        class).  The cache may therefore transiently exceed
        ``cache_entries`` by at most the number of pinned keys.
        """
        excess = len(self._cache) - self.cache_entries
        if excess > 0:
            for key in list(self._cache):
                if excess <= 0:
                    break
                if key in self._pins:
                    continue
                del self._cache[key]
                excess -= 1
        sanitizer.check_prepare_pins(self)

    # -- broadcast pins ------------------------------------------------------

    def pin(self, key: Tuple) -> None:
        """Hold *key* against eviction (one reference; refcounted)."""
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: Tuple) -> None:
        """Release one reference on *key*; trims once it is unpinned."""
        count = self._pins.get(key, 0) - 1
        if count > 0:
            self._pins[key] = count
        else:
            self._pins.pop(key, None)
            self._trim()

    def pinned_entries(self) -> int:
        return len(self._pins)

    # -- diagnostics ---------------------------------------------------------

    def cache_size(self) -> int:
        return len(self._cache)


class FrameStage:
    """Stage 5 — per-session framing and (optional) RC4 encryption.

    Framing and encryption are deliberately split: :meth:`frame`
    produces *plaintext* framed bytes and :meth:`encrypt` is applied by
    the session only at write time.  The flush path may frame a
    command head and then discover it does not fit — with encryption
    inside ``frame`` that consumed RC4 keystream for bytes that were
    never sent, silently desynchronising the client's cipher.  Keeping
    frames plain until the moment they hit the socket also lets the
    resilience plane journal sent frames and re-encrypt them under a
    fresh key after a reconnect.  RC4 is size-preserving, so all flush
    size arithmetic is unaffected by the split.
    """

    name = "frame"

    def __init__(self, cipher=None):
        self.cipher = cipher
        self.stats = StageStats()

    def frame(self, msg) -> bytes:
        """Frame *msg* as plaintext wire bytes (no keystream consumed)."""
        data = wire.encode_message(msg)
        self.stats.commands_in += 1
        self.stats.commands_out += 1
        self.stats.bytes_out += len(data)
        return data

    def encrypt(self, data: bytes) -> bytes:
        """Apply the session cipher to bytes actually being written."""
        if self.cipher is None:
            return data
        return self.cipher.process(data)

    def rekey(self, cipher) -> None:
        """Replace the cipher (a reconnect restarts both keystreams)."""
        self.cipher = cipher
