"""THINC core: translation layer, command queues, delivery, scaling."""

from .auth import (AccountDatabase, AuthError, Authenticator,
                   SessionRegistry)
from .client import ClientCostModel, THINCClient
from .miniclient import MiniClient
from .command_queue import CommandQueue
from .delivery import ClientBuffer, FlushResult
from .fanout import BroadcastPlane, FanoutConfig, TileWall
from .governor import (AdmissionDenied, Budget, Governor, GovernorStats,
                       ServerBudget)
from .pipeline import PreparePlane, StageStats, STAGE_NAMES
from .resize import DisplayScaler, resample, scale_rect
from .scheduler import FIFOScheduler, SRSFScheduler
from .server import ServerCostModel, THINCServer, THINCSession
from .session_unit import FrozenSession, SessionUnit
from .translation import THINCDriver

__all__ = [
    "AccountDatabase",
    "Authenticator",
    "AuthError",
    "SessionRegistry",
    "MiniClient",
    "ServerCostModel",
    "AdmissionDenied",
    "Budget",
    "ServerBudget",
    "Governor",
    "GovernorStats",
    "CommandQueue",
    "ClientBuffer",
    "FlushResult",
    "BroadcastPlane",
    "FanoutConfig",
    "TileWall",
    "SRSFScheduler",
    "FIFOScheduler",
    "PreparePlane",
    "StageStats",
    "STAGE_NAMES",
    "THINCDriver",
    "THINCServer",
    "THINCSession",
    "SessionUnit",
    "FrozenSession",
    "THINCClient",
    "ClientCostModel",
    "DisplayScaler",
    "resample",
    "scale_rect",
]
