"""Per-client update delivery: push buffer + non-blocking flush.

THINC pushes updates to the client as they are generated (Section 5),
but a blind push would block the single-threaded window server whenever
the network backed up.  The delivery layer therefore:

* buffers commands in a :class:`~repro.core.command_queue.CommandQueue`,
  whose eviction semantics automatically discard content that was
  overwritten before it could be sent;
* flushes the buffer in SRSF order through a non-blocking writer,
  breaking large commands into smaller pieces *at flush time* (never in
  advance, so the system adapts to current conditions) and stopping at
  the first sign of back-pressure; and
* tracks recent input-event locations, marking updates that land near
  them as real-time so interactive feedback preempts bulk output.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Tuple

from ..protocol import wire
from ..protocol.commands import Command, CopyCommand
from ..region import Rect
from .command_queue import CommandQueue
from .scheduler import SRSFScheduler

__all__ = ["ClientBuffer", "FlushResult", "REALTIME_RADIUS",
           "REALTIME_WINDOW"]

# Frame header bytes added around a command by the wire format, taken
# from the framing struct itself so the two cannot drift apart.
_FRAME_OVERHEAD = wire.FRAME_OVERHEAD

# A command is real-time when it overlaps a square of this half-width
# around an input event received within the last REALTIME_WINDOW seconds.
REALTIME_RADIUS = 48
REALTIME_WINDOW = 1.0


class Writer(Protocol):
    """The non-blocking socket interface the flush stage writes into."""

    def writable_bytes(self) -> int: ...

    def write(self, data: bytes) -> None: ...


class FlushResult:
    """Outcome of one flush period."""

    def __init__(self) -> None:
        self.bytes_written = 0
        self.commands_sent = 0
        self.commands_split = 0
        self.blocked = False

    def __repr__(self) -> str:
        state = "blocked" if self.blocked else "drained"
        return (f"FlushResult({self.commands_sent} cmds, "
                f"{self.bytes_written} B, {state})")


class ClientBuffer:
    """The per-client command buffer with SRSF scheduling."""

    def __init__(self, scheduler: Optional[SRSFScheduler] = None,
                 merge: bool = True,
                 frame: Callable[[Command], bytes] = None):
        self.queue = CommandQueue(merge=merge)
        self.scheduler = scheduler or SRSFScheduler()
        # How a command becomes wire bytes (framing + encryption applied
        # by the session); defaults to the bare command encoding.
        self._frame = frame or (lambda cmd: cmd.encode())
        self._recent_inputs: List[Tuple[float, int, int]] = []
        self.stats = {"realtime_marked": 0, "floors_set": 0,
                      "commands_in": 0, "commands_out": 0,
                      "bytes_out": 0, "commands_split": 0}

    # -- input tracking ------------------------------------------------------

    def note_input(self, x: int, y: int, time: float) -> None:
        """Record an input event location for real-time marking."""
        self._recent_inputs.append((time, x, y))
        # Keep the list short; old events expire out of the window.
        cutoff = time - REALTIME_WINDOW
        self._recent_inputs = [(t, a, b) for (t, a, b)
                               in self._recent_inputs if t >= cutoff]

    def _realtime_region_hit(self, rect: Rect, now: float) -> bool:
        for t, x, y in self._recent_inputs:
            if now - t > REALTIME_WINDOW:
                continue
            zone = Rect(x - REALTIME_RADIUS, y - REALTIME_RADIUS,
                        2 * REALTIME_RADIUS, 2 * REALTIME_RADIUS)
            if zone.overlaps(rect):
                return True
        return False

    # -- buffering -----------------------------------------------------------

    def add(self, command: Command, now: float = 0.0) -> None:
        """Buffer a command, computing its dependency floor (Section 5)."""
        self.stats["commands_in"] += 1
        stored = self.queue.add(command)
        if stored is not command:
            # Merged into its predecessor.  The widened output rect can
            # overlap earlier commands the original did not, so the
            # merged command's floor must be re-derived.
            floor = self._dependency_floor(stored)
            if floor > stored.sched_floor:
                stored.sched_floor = floor
                stored.realtime = False  # dependants may not jump queues
                self.stats["floors_set"] += 1
            return
        floor = self._dependency_floor(command)
        if floor >= 0:
            command.sched_floor = floor
            self.stats["floors_set"] += 1
        elif self._realtime_region_hit(command.dest, now):
            # Only dependency-free commands may jump the queues.
            command.realtime = True
            self.stats["realtime_marked"] += 1

    def _dependency_floor(self, command: Command) -> int:
        """Highest queue of any earlier buffered command that must be
        delivered before *command*; -1 when there are none.

        An earlier command is a dependency when its output overlaps the
        newcomer (eviction keeps such survivors only when they must be
        drawn first: COMPLETE/TRANSPARENT overlaps, or producers pinned
        by a buffered COPY's source), when the newcomer is a COPY that
        reads pixels the earlier command produces, or when the earlier
        command is a COPY that reads pixels the newcomer will overwrite.
        """
        floor = -1
        src = command.src_rect if isinstance(command, CopyCommand) else None
        for other in self.queue:
            if other is command or other.seq >= command.seq:
                continue
            depends = other.dest.overlaps(command.dest)
            if not depends and src is not None:
                depends = other.dest.overlaps(src)
            if not depends:
                other_src = getattr(other, "src_rect", None)
                depends = (other_src is not None
                           and other_src.overlaps(command.dest))
            if depends:
                floor = max(floor, self.scheduler.effective_bucket(other))
        return floor

    # -- flushing ------------------------------------------------------------

    def flush(self, writer: Writer) -> FlushResult:
        """One flush period: commit commands until the writer would block.

        Follows the paper's two-stage handler: whole commands are
        committed while they fit; the first command that does not fit is
        split so its head fills the remaining room, the remainder is
        reformatted in place, and flushing stops.
        """
        result = FlushResult()
        for cmd in self.scheduler.order(self.queue.commands):
            avail = writer.writable_bytes()
            # Cheap size check first: framing (and possibly compressing)
            # a command that cannot fit would be wasted work every
            # flush period.
            if cmd.wire_size() + _FRAME_OVERHEAD <= avail:
                data = self._frame(cmd)
                if len(data) <= avail:
                    writer.write(data)
                    self.queue.remove(cmd)
                    result.bytes_written += len(data)
                    result.commands_sent += 1
                    self.stats["commands_out"] += 1
                    self.stats["bytes_out"] += len(data)
                    continue
            # Would block: try to break off a head that fits.  The head
            # is sized from the command's average bytes-per-row, so an
            # unlucky (denser) region can overshoot — shrink the budget
            # and retry rather than stalling the whole flush pipeline.
            budget = max(avail - 16, 0)
            for _ in range(4):
                head, rest = cmd.split(budget)
                if rest is None:
                    break  # unsplittable: wait for more room
                head_data = self._frame(head)
                if len(head_data) <= avail:
                    writer.write(head_data)
                    self.queue.replace(cmd, rest)
                    result.bytes_written += len(head_data)
                    result.commands_split += 1
                    self.stats["commands_split"] += 1
                    self.stats["bytes_out"] += len(head_data)
                    break
                budget //= 2
            result.blocked = True
            break
        return result

    def pending_commands(self) -> int:
        return len(self.queue)

    def pending_bytes(self) -> int:
        return self.queue.total_wire_size()
