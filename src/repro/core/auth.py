"""Authentication and session sharing (paper Section 7).

The THINC prototype authenticates through PAM: a user must hold a valid
account on the server and own the session they connect to.  For
collaborative screen sharing, the session owner may set a *session
password* that peers present to join the shared session.

This module reproduces that model with a PAM-like pluggable stack: an
account database, an authenticator chain, session ownership checks and
shared-session passwords.  Secrets are salted and hashed; nothing here
is meant to protect real systems — it reproduces the paper's access
model so the multi-client collaboration path is complete.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AccountDatabase", "Authenticator", "SessionRegistry",
           "SessionRecord", "AuthError", "AuthResult"]


class AuthError(Exception):
    """Raised when authentication or authorisation fails."""


def _hash_secret(secret: str, salt: bytes) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", secret.encode("utf-8"), salt,
                               iterations=1000)


@dataclass(frozen=True)
class AuthResult:
    """The outcome of a successful authentication."""

    user: str
    session_id: str
    role: str  # "owner" | "peer"


class AccountDatabase:
    """Server-side user accounts (the PAM account/auth backend)."""

    def __init__(self) -> None:
        self._users: Dict[str, tuple] = {}

    def add_user(self, name: str, password: str) -> None:
        if not name:
            raise ValueError("user name must be non-empty")
        salt = os.urandom(16)
        self._users[name] = (salt, _hash_secret(password, salt))

    def remove_user(self, name: str) -> None:
        self._users.pop(name, None)

    def verify(self, name: str, password: str) -> bool:
        entry = self._users.get(name)
        if entry is None:
            return False
        salt, digest = entry
        return hmac.compare_digest(digest, _hash_secret(password, salt))

    def __contains__(self, name: str) -> bool:
        return name in self._users


@dataclass
class SessionRecord:
    """One display session: an owner and optional sharing state."""

    session_id: str
    owner: str
    shared: bool = False
    _share_salt: Optional[bytes] = None
    _share_digest: Optional[bytes] = None
    connected: List[str] = field(default_factory=list)

    def enable_sharing(self, password: str) -> None:
        """The host user opens the session to peers (Section 7)."""
        if not password:
            raise ValueError("a session password is required for sharing")
        self._share_salt = os.urandom(16)
        self._share_digest = _hash_secret(password, self._share_salt)
        self.shared = True

    def disable_sharing(self) -> None:
        self.shared = False
        self._share_salt = None
        self._share_digest = None

    def verify_share_password(self, password: str) -> bool:
        if not self.shared or self._share_digest is None:
            return False
        return hmac.compare_digest(
            self._share_digest,
            _hash_secret(password, self._share_salt))


class SessionRegistry:
    """Sessions on one server, keyed by id."""

    def __init__(self) -> None:
        self._sessions: Dict[str, SessionRecord] = {}

    def create(self, session_id: str, owner: str) -> SessionRecord:
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already exists")
        record = SessionRecord(session_id, owner)
        self._sessions[session_id] = record
        return record

    def get(self, session_id: str) -> Optional[SessionRecord]:
        return self._sessions.get(session_id)

    def destroy(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)


class Authenticator:
    """The server's connection gatekeeper.

    The model of Section 7: the connecting user must have a valid
    account and be the owner of the session — unless the session is
    shared, in which case a correct session password admits the user as
    a collaboration peer.
    """

    def __init__(self, accounts: AccountDatabase,
                 sessions: SessionRegistry):
        self.accounts = accounts
        self.sessions = sessions
        self.attempts: List[tuple] = []

    def authenticate(self, user: str, password: str, session_id: str,
                     share_password: Optional[str] = None) -> AuthResult:
        """Validate a connection request; raises AuthError on failure."""
        self.attempts.append((user, session_id))
        if not self.accounts.verify(user, password):
            raise AuthError(f"invalid credentials for {user!r}")
        record = self.sessions.get(session_id)
        if record is None:
            raise AuthError(f"no such session {session_id!r}")
        if record.owner == user:
            record.connected.append(user)
            return AuthResult(user, session_id, "owner")
        if record.shared and share_password is not None \
                and record.verify_share_password(share_password):
            record.connected.append(user)
            return AuthResult(user, session_id, "peer")
        raise AuthError(
            f"{user!r} is not the owner of session {session_id!r} "
            "and no valid session password was presented")
