"""Per-session resource governance and server-wide admission control.

THINC's server-push design concentrates all state server-side: each
session owns a command queue, control/audio queues, and (when the
resilience plane is on) a replay journal.  Left unbounded, a single
hostile or broken client — one that never drains its buffer, streams
garbage uplink, or floods input events — can balloon or wedge the whole
single-threaded server.  The governor bounds every one of those
reservoirs with a per-session :class:`Budget` enforced lazily at the
existing chokepoints (``submit``/``enqueue_prepared`` →
``_add_to_buffer``, ``queue_control``, ``queue_audio``,
``_on_client_data``), so there are no timers and the simulation stays
deterministic.

Responses are graduated, mildest first:

* **degrade** — past the queue soft watermark the session sheds audio
  (the existing degraded-mode path); past the hard cap the queue is
  *coalesced*: dropped wholesale and replaced by a row-banded
  full-screen RAW refresh, which is cheaper than the backlog by the
  time the cap is hit (the same replay-vs-snapshot economics the
  resilience plane uses for resync).
* **throttle** — uplink messages pass through a token bucket; messages
  beyond the refill rate are dropped (input is best-effort by nature).
* **evict** — protocol abuse (wire decode failures past the error
  budget on a resilient session, or the *first* failure on a plain
  one), sustained uplink flooding, a re-ballooning queue right after a
  coalesce, or an unshrinkable control backlog quarantine the session:
  a typed :class:`~repro.protocol.wire.AttachDeniedMessage` is written
  down the pipe and the session is detached from the server.  A
  quarantined session never crashes or stalls the loop.

Server-wide, :class:`ServerBudget` gates ``attach_client``: past the
global session count or buffered-byte budget the attach is refused
with the same typed denial on the wire plus an :class:`AdmissionDenied`
raised to the caller.  Aggregate counters surface through
:class:`GovernorStats`, merged into ``server.stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..protocol import wire

__all__ = ["Budget", "ServerBudget", "GovernorStats", "SessionMeter",
           "Governor", "AdmissionDenied"]


class AdmissionDenied(RuntimeError):
    """``attach_client`` refused by the governor's admission control.

    The typed wire denial has already been written to the connection
    when this is raised; the exception carries the same reason code so
    in-process callers need not parse their own stream.
    """

    def __init__(self, reason: int, retry_after: float):
        super().__init__(f"attach denied (reason {reason}, "
                         f"retry after {retry_after}s)")
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class Budget:
    """Per-session resource bounds.

    Defaults are generous for honest traffic — an honest session under
    the reference workloads stays an order of magnitude below every
    line — while still bounding what a hostile client can pin.
    Tests construct tighter budgets to exercise the ladder cheaply.
    """

    #: Soft watermark on buffered display-command bytes: past it the
    #: session enters degraded mode (audio shed, coalescing does the
    #: rest); it exits below half this value.
    degrade_queue_bytes: int = 8 << 20

    #: Hard cap on buffered display-command bytes: past it the queue is
    #: coalesced to a full-screen RAW refresh.
    max_queue_bytes: int = 32 << 20

    #: Absolute ceiling: a queue still past this (or re-ballooning
    #: within ``coalesce_cooldown``) evicts the session.
    evict_queue_bytes: int = 64 << 20

    #: Seconds after a coalesce during which hitting the hard cap again
    #: means coalescing is not working — evict instead of thrashing.
    coalesce_cooldown: float = 1.0

    #: Cap on framed audio bytes queued and not yet flushed; the oldest
    #: chunks are shed first (late audio is worthless).
    max_audio_backlog_bytes: int = 1 << 20

    #: Cap on framed control-message bytes queued and not yet flushed.
    #: Control cannot be shed safely (order-sensitive lifecycles), so
    #: exceeding it evicts.
    max_control_backlog_bytes: int = 4 << 20

    #: Cap on the resilience replay journal, overriding (when smaller)
    #: the plane's own snapshot-derived limit.
    max_journal_bytes: int = 16 << 20

    #: Uplink token bucket: sustained messages/second allowed, and the
    #: burst the bucket holds.  Messages beyond it are dropped.
    uplink_msgs_per_sec: float = 1000.0
    uplink_burst: int = 2000

    #: Total throttled-away uplink messages after which the flood is
    #: adjudged hostile and the session is evicted.
    max_uplink_dropped: int = 20_000

    #: Wire decode failures a *resilient* session may accumulate before
    #: quarantine (lossy links corrupt honest traffic; the resync
    #: machinery absorbs occasional garbage).  Plain sessions are
    #: quarantined on their first decode failure.
    max_uplink_errors: int = 256


@dataclass(frozen=True)
class ServerBudget:
    """Server-wide admission bounds."""

    #: Sessions the server will hold at once (attached or detached).
    max_sessions: int = 64

    #: Total display-command bytes buffered across all sessions past
    #: which new attaches are refused (existing sessions are governed
    #: by their own budgets).
    max_total_queue_bytes: int = 256 << 20

    #: Retry hint carried by admission denials.
    retry_after: float = 1.0


class GovernorStats:
    """Aggregate governance counters (StageStats pattern)."""

    __slots__ = ("admitted", "admission_denied", "quarantined", "evicted",
                 "degrade_entered", "degrade_exited", "coalesces",
                 "audio_shed", "uplink_throttled", "wire_errors",
                 "denials_written", "video_rungs_shed")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"GovernorStats({body})"


class SessionMeter:
    """Per-session governance state: token bucket, error tally, ladder
    position.  Byte gauges live on the session itself (maintained at
    the queue chokepoints); the meter holds only what the ladder
    needs to remember between checks."""

    __slots__ = ("tokens", "last_refill", "uplink_dropped", "wire_errors",
                 "degraded", "last_coalesce", "quarantined")

    def __init__(self, budget: Budget, now: float):
        self.tokens = float(budget.uplink_burst)
        self.last_refill = now
        self.uplink_dropped = 0
        self.wire_errors = 0
        self.degraded = False  # did *this governor* degrade the session
        self.last_coalesce: Optional[float] = None
        self.quarantined = False


class Governor:
    """Owner of per-session meters, the response ladder and admission."""

    def __init__(self, server, budget: Optional[Budget] = None,
                 server_budget: Optional[ServerBudget] = None):
        self.server = server
        self.loop = server.loop
        self.budget = budget or Budget()
        self.server_budget = server_budget or ServerBudget()
        self.stats = GovernorStats()

    # -- session lifecycle ---------------------------------------------------

    def check_admission(self) -> Optional[int]:
        """The denial reason a fresh attach would receive, or None.

        Non-raising form for callers with their own denial wire format
        (the resilience plane answers with a ReconnectDeniedMessage).
        """
        sb = self.server_budget
        sessions = self.server.sessions
        if len(sessions) >= sb.max_sessions:
            return wire.DENY_SERVER_FULL
        total = sum(s.buffer.pending_bytes() for s in sessions)
        if total > sb.max_total_queue_bytes:
            return wire.DENY_SERVER_FULL
        return None

    def admit(self, connection) -> None:
        """Admission control for a fresh attach.

        Writes a typed denial to *connection* and raises
        :class:`AdmissionDenied` when the server is past its global
        budget; returns silently otherwise.
        """
        reason = self.check_admission()
        if reason is not None:
            self._deny(connection, reason)
        self.stats.admitted += 1

    def _deny(self, connection, reason: int) -> None:
        retry = self.server_budget.retry_after
        self._write_denial(connection, reason, retry)
        self.stats.admission_denied += 1
        raise AdmissionDenied(reason, retry)

    def _write_denial(self, connection, reason: int,
                      retry_after: float) -> None:
        if connection is None or connection.closed:
            return
        data = wire.encode_message(
            wire.AttachDeniedMessage(reason, retry_after))
        if connection.down.writable_bytes() >= len(data):
            connection.down.write(data)
            self.stats.denials_written += 1

    def register(self, session) -> SessionMeter:
        """Hang a fresh meter on *session*.

        The meter lives on the session unit itself (part of its state
        surface) rather than in a governor-side map, so a unit carries
        its whole live half with it and the governor holds no
        per-session storage of its own.
        """
        meter = SessionMeter(self.budget, self.loop.now)
        session.meter = meter
        return meter

    def forget(self, session) -> None:
        session.meter = None

    def meter(self, session) -> SessionMeter:
        m = getattr(session, "meter", None)
        if m is None:
            m = self.register(session)
        return m

    # -- uplink chokepoint ---------------------------------------------------

    def allow_uplink(self, session) -> bool:
        """Token-bucket gate for one parsed uplink message.

        Returns False when the message should be dropped; a sustained
        flood past ``max_uplink_dropped`` evicts the sender.
        """
        meter = self.meter(session)
        if meter.quarantined:
            return False
        b = self.budget
        now = self.loop.now
        meter.tokens = min(
            float(b.uplink_burst),
            meter.tokens + (now - meter.last_refill) * b.uplink_msgs_per_sec)
        meter.last_refill = now
        if meter.tokens >= 1.0:
            meter.tokens -= 1.0
            return True
        meter.uplink_dropped += 1
        self.stats.uplink_throttled += 1
        if meter.uplink_dropped > b.max_uplink_dropped:
            self.quarantine(session, wire.DENY_SESSION_BUDGET,
                            evicted=True)
        return False

    def on_wire_error(self, session, exc: Exception) -> None:
        """A decode failure on *session*'s uplink stream.

        Plain sessions are quarantined immediately: without a
        resilience plane there is no resync story, and garbage framing
        means every subsequent byte is suspect.  Resilient sessions get
        a fresh parser (heartbeats repeat; corruption on a lossy link
        is expected) until the error budget runs out.
        """
        meter = self.meter(session)
        meter.wire_errors += 1
        self.stats.wire_errors += 1
        resilient = self.server.resilience is not None and session.sequenced
        if resilient and meter.wire_errors <= self.budget.max_uplink_errors:
            session.reset_parser()
            return
        self.quarantine(session, wire.DENY_QUARANTINED)

    # -- outgoing-reservoir chokepoints --------------------------------------

    def after_display_add(self, session) -> None:
        """Queue-bytes ladder, run after every buffered display add."""
        meter = self.meter(session)
        if meter.quarantined:
            return
        if session.detached and self.server.resilience is not None:
            # A detached-but-guarded session belongs to the resilience
            # plane: its tick drops the queue (keeping the session
            # resurrectable) once pending crosses the same budget line.
            # Coalescing or evicting here would destroy a session the
            # plane still intends to resync.
            return
        b = self.budget
        pending = session.buffer.pending_bytes()
        now = self.loop.now
        if pending > b.max_queue_bytes:
            recently = (meter.last_coalesce is not None
                        and now - meter.last_coalesce < b.coalesce_cooldown)
            if pending > b.evict_queue_bytes or recently:
                self.quarantine(session, wire.DENY_SESSION_BUDGET,
                                evicted=True)
                return
            self._coalesce(session, meter, now)
            return
        if pending > b.degrade_queue_bytes:
            qos = getattr(self.server, "qos", None)
            if qos is not None and not meter.degraded \
                    and session.qos_rung < qos.MAX_RUNG:
                # QoS-class-aware shed order: video rungs are spent
                # before the degrade stage (which sheds audio) may
                # engage.  While the ladder has headroom the session
                # is never degraded — a rate-limited step just waits
                # for the next poll interval.
                if qos.shed_video(session):
                    self.stats.video_rungs_shed += 1
                return
            if not meter.degraded:
                meter.degraded = True
                session.degraded = True
                self.stats.degrade_entered += 1
        elif meter.degraded and pending < b.degrade_queue_bytes // 2:
            meter.degraded = False
            session.degraded = False
            self.stats.degrade_exited += 1

    def _coalesce(self, session, meter: SessionMeter, now: float) -> None:
        """Replace a runaway queue with a full-screen RAW refresh.

        By the time the hard cap is hit the backlog costs more than
        repainting the screen outright — the same economics that make
        the resilience plane prefer a snapshot over a long replay.
        The refresh is row-banded so it can drain through a congested
        pipe's flush budget.
        """
        meter.last_coalesce = now
        session.buffer.queue.clear()
        self.stats.coalesces += 1
        self.server._submit_refresh(session, chunk_rows=64)

    def after_audio_add(self, session) -> None:
        """Shed the oldest audio past the backlog cap (late audio is
        worthless; bytes are better spent on display)."""
        b = self.budget
        while session.audio_backlog_bytes > b.max_audio_backlog_bytes \
                and session._audio:
            session.drop_oldest_audio()
            self.stats.audio_shed += 1

    def after_control_add(self, session) -> None:
        """Control messages cannot be shed (order-sensitive stream and
        video lifecycles ride them); a session that cannot drain them
        is evicted before the backlog becomes the server's problem."""
        if session.control_backlog_bytes > \
                self.budget.max_control_backlog_bytes:
            self.quarantine(session, wire.DENY_SESSION_BUDGET,
                            evicted=True)

    # -- the terminal rung ---------------------------------------------------

    def quarantine(self, session, reason: int,
                   evicted: bool = False) -> None:
        """Detach *session* and refuse its future traffic.

        Never raises: quarantining happens inside data callbacks where
        an escaping exception would kill the event loop — the exact
        failure mode this module exists to prevent.
        """
        meter = self.meter(session)
        if meter.quarantined:
            return
        meter.quarantined = True
        session.quarantined = True
        self.stats.quarantined += 1
        if evicted:
            self.stats.evicted += 1
        # The denial rides the session's own framing path (CHECKED
        # wrapper, RC4 keystream) so an attached client parses it like
        # any other message instead of seeing stream garbage.
        conn = session.connection
        if conn is not None and not conn.closed:
            data = session._frame(wire.AttachDeniedMessage(
                reason, self.server_budget.retry_after))
            if session._writer.writable_bytes() >= len(data):
                session._writer.write(data)
                self.stats.denials_written += 1
        session.detach()
        if self.server.resilience is not None:
            self.server.resilience.drop_guard(session)
        if session in self.server.sessions:
            self.server.detach_client(session)
